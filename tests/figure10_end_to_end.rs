//! End-to-end integration: the paper's Figure 10 KernelC source compiled
//! by `isrf-lang`, scheduled by `isrf-kernel`, and executed on the
//! `isrf-sim` machine against `isrf-mem`'s memory system.

use std::sync::Arc;

use isrf::core::config::{ConfigName, MachineConfig};
use isrf::kernel::sched::{schedule, SchedParams};
use isrf::mem::AddrPattern;
use isrf::sim::{Machine, StreamProgram};

const FIGURE_10: &str = r#"
kernel lookup(
    istream<int> in,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b, c;
  while (!eos(in)) {
    in >> a;
    LUT[a] >> b;
    c = a + b;
    out << c;
  }
}
"#;

#[test]
fn figure_10_compiles_and_runs() {
    let kernel = Arc::new(isrf::lang::parse_kernel(FIGURE_10).expect("parses"));
    let cfg = MachineConfig::preset(ConfigName::Isrf4);
    let sched = schedule(&kernel, &SchedParams::from_machine(&cfg)).expect("schedules");
    let mut m = Machine::new(cfg).expect("machine builds");

    // Table entry e = 3e + 7, replicated per lane; inputs cycle 0..256.
    let lanes = 8u32;
    for e in 0..256u32 {
        for l in 0..lanes {
            m.mem_mut().memory_mut().write(e * lanes + l, 3 * e + 7);
        }
    }
    let n = 256u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(0x1_0000 + i, (i * 11) % 256);
    }

    let lut = m.alloc_stream(1, 256 * lanes);
    let input = m.alloc_stream(1, n);
    let output = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l1 = p.load(AddrPattern::contiguous(0, 256 * lanes), lut, false, &[]);
    let l2 = p.load(AddrPattern::contiguous(0x1_0000, n), input, false, &[]);
    let k = p.kernel(
        Arc::clone(&kernel),
        sched,
        vec![input, lut, output],
        (n / lanes) as u64,
        &[l1, l2],
    );
    p.store(output, AddrPattern::contiguous(0x2_0000, n), false, &[k]);
    let stats = m.run(&p);

    for i in 0..n {
        let a = (i * 11) % 256;
        assert_eq!(
            m.mem().memory().read(0x2_0000 + i),
            a + 3 * a + 7,
            "element {i}"
        );
    }
    assert_eq!(stats.srf.inlane_words, n as u64, "one lookup per element");
    assert!(stats.cycles > 0);
}

#[test]
fn figure_10_needs_an_indexed_srf() {
    let kernel = Arc::new(isrf::lang::parse_kernel(FIGURE_10).expect("parses"));
    // Scheduling is machine-independent...
    let base_cfg = MachineConfig::preset(ConfigName::Base);
    let sched = schedule(&kernel, &SchedParams::from_machine(&base_cfg)).expect("schedules");
    // ...but binding an indexed stream on a sequential-only SRF panics
    // with a clear message when the kernel is dispatched.
    let mut m = Machine::new(base_cfg).unwrap();
    let lut = m.alloc_stream(1, 256 * 8);
    let input = m.alloc_stream(1, 64);
    let output = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(kernel, sched, vec![input, lut, output], 8, &[]);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run(&p)));
    assert!(r.is_err(), "indexed kernels must not run on Base");
}
