//! End-to-end tests of the tracing subsystem: Chrome-trace export on a
//! real simulation (golden file + structural checks), and a property test
//! that the event-stream audit reconstructs the machine's Figure-12 cycle
//! breakdown on randomly generated programs.
//!
//! Regenerate the golden file after an intentional exporter or simulator
//! change with `UPDATE_GOLDEN=1 cargo test --test trace`.

use std::sync::Arc;

use isrf::core::config::{ConfigName, MachineConfig};
use isrf::kernel::ir::{Kernel, KernelBuilder, StreamKind, ValueId};
use isrf::kernel::sched::{schedule, SchedParams};
use isrf::mem::AddrPattern;
use isrf::sim::{Machine, StreamProgram};
use isrf::trace::{chrome, json, CycleAttr, TraceEvent, Tracer};
use proptest::prelude::*;

fn copy_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("copy16");
    let i = b.stream("in", StreamKind::SeqIn);
    let o = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(i);
    b.seq_write(o, x);
    Arc::new(b.build().unwrap())
}

/// Run a 16-element copy through load → kernel → store on `cfg` under a
/// recording tracer; returns the events and the machine.
fn traced_copy(cfg: ConfigName) -> (Vec<(u64, TraceEvent)>, Machine) {
    let mcfg = MachineConfig::preset(cfg);
    let k = copy_kernel();
    let s = schedule(&k, &SchedParams::from_machine(&mcfg)).unwrap();
    let mut m = Machine::new(mcfg).unwrap();
    m.set_tracer(Tracer::recording(1 << 14));
    let n = 16u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(i, i * 3 + 1);
    }
    let a = m.alloc_stream(1, n);
    let b = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, n), a, false, &[]);
    let kk = p.kernel(k, s, vec![a, b], (n / 8) as u64, &[l]);
    p.store(b, AddrPattern::contiguous(0x1000, n), false, &[kk]);
    m.run(&p);
    let events = m
        .tracer()
        .recorder()
        .expect("recording")
        .ring()
        .iter()
        .cloned()
        .collect();
    (events, m)
}

/// The exported Chrome trace of a fixed small kernel is byte-identical to
/// the checked-in golden file — the exporter and the simulation are both
/// fully deterministic.
#[test]
fn chrome_export_matches_golden_file() {
    let (events, _m) = traced_copy(ConfigName::Base);
    let got = chrome::export(&events);
    json::validate(&got).expect("exporter emits valid JSON");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/copy16_base.trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(got, want, "trace output drifted from the golden file");
}

/// Structural invariants of the exported trace: timestamps sorted, one
/// kernel span, transfer spans on the mem process, metadata present.
#[test]
fn chrome_export_is_ordered_and_complete() {
    let (events, _m) = traced_copy(ConfigName::Base);
    let out = chrome::export(&events);
    let ts: Vec<i64> = out
        .lines()
        .filter_map(|l| {
            let i = l.find("\"ts\":")?;
            let rest = &l[i + 5..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        })
        .collect();
    assert!(!ts.is_empty());
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts monotone");
    assert_eq!(
        out.matches("\"name\":\"copy16\"").count(),
        1,
        "exactly one kernel span"
    );
    // One load and one store transfer span on the mem process.
    assert_eq!(out.matches("\"load 16w").count(), 1);
    assert_eq!(out.matches("\"store 16w").count(), 1);
    assert!(out.contains("\"process_name\""), "metadata emitted");
    // No unattributed filler: every Cycle event landed in some span.
    let total_attr: u64 = events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Cycle(_)))
        .count() as u64;
    assert!(total_attr > 0);
}

// ---- Audit property test on random programs ----

#[derive(Debug, Clone)]
enum Node {
    Input,
    Op(u8, usize, usize),
}

fn build_kernel(nodes: &[Node]) -> Kernel {
    let mut b = KernelBuilder::new("random");
    let input = b.stream("in", StreamKind::SeqIn);
    let output = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(input);
    let mut ids: Vec<ValueId> = Vec::with_capacity(nodes.len());
    for n in nodes {
        let id = match *n {
            Node::Input => x,
            Node::Op(code, i, j) => {
                let (a, c) = (ids[i], ids[j]);
                match code % 7 {
                    0 => b.add(a, c),
                    1 => b.sub(a, c),
                    2 => b.mul(a, c),
                    3 => b.and(a, c),
                    4 => b.or(a, c),
                    5 => b.xor(a, c),
                    _ => b.shr(a, c),
                }
            }
        };
        ids.push(id);
    }
    b.seq_write(output, *ids.last().expect("nonempty"));
    b.build().expect("generated kernel is valid")
}

fn node_dag() -> impl Strategy<Value = Vec<Node>> {
    prop::collection::vec(
        (
            any::<u8>(),
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
        ),
        1..16,
    )
    .prop_map(|ops| {
        let mut nodes = vec![Node::Input];
        for (code, i, j) in ops {
            let n = nodes.len();
            nodes.push(Node::Op(code, i.index(n), j.index(n)));
        }
        nodes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any generated program, on both a sequential-only and an indexed
    /// configuration, the audit reconstructed purely from trace events
    /// matches the machine's reported breakdown component for component —
    /// and the per-attribution cycle counts are internally consistent.
    #[test]
    fn audit_reconstructs_breakdown_on_random_programs(
        nodes in node_dag(),
        words in (1u32..8).prop_map(|k| k * 8),
    ) {
        let kernel = Arc::new(build_kernel(&nodes));
        for cfg in [ConfigName::Base, ConfigName::Isrf4] {
            let mcfg = MachineConfig::preset(cfg);
            let sched = schedule(&kernel, &SchedParams::from_machine(&mcfg)).unwrap();
            let mut m = Machine::new(mcfg).unwrap();
            m.set_tracer(Tracer::recording(1 << 16));
            let ib = m.alloc_stream(1, words);
            let ob = m.alloc_stream(1, words);
            let mut p = StreamProgram::new();
            let l = p.load(AddrPattern::contiguous(0, words), ib, false, &[]);
            let kk = p.kernel(Arc::clone(&kernel), sched, vec![ib, ob], (words / 8) as u64, &[l]);
            p.store(ob, AddrPattern::contiguous(0x1_0000, words), false, &[kk]);
            let stats = m.run(&p);
            let rec = m.take_tracer().into_recorder().unwrap();
            let mismatches = rec.audit().verify(&stats.breakdown);
            prop_assert!(mismatches.is_empty(), "config {}: {:?}", cfg, mismatches);
            // The recorder's fixed-slot counters agree with the audit's
            // per-attribution tallies (two independent accumulations).
            for attr in CycleAttr::ALL {
                prop_assert_eq!(
                    rec.counters().cycle_attr[attr.index()],
                    rec.audit().attr_cycles(attr),
                    "attr {:?}", attr
                );
            }
        }
    }
}
