//! Property tests spanning the whole stack: randomly generated arithmetic
//! kernels are compiled, scheduled and executed on the simulator, and
//! their outputs must match a direct host-side evaluation — on every
//! machine configuration, for any schedule the modulo scheduler picks.

use std::sync::Arc;

use isrf::core::config::{ConfigName, MachineConfig};
use isrf::kernel::ir::{Kernel, KernelBuilder, StreamKind, ValueId};
use isrf::kernel::sched::{schedule, SchedParams};
use isrf::mem::AddrPattern;
use isrf::sim::{Machine, StreamProgram};
use proptest::prelude::*;

/// A tiny arithmetic-expression DAG we can both emit as IR and evaluate
/// on the host.
#[derive(Debug, Clone)]
enum Node {
    Input,
    Op(u8, usize, usize),
}

fn eval(nodes: &[Node], x: u32) -> u32 {
    let mut vals: Vec<u32> = Vec::with_capacity(nodes.len());
    for n in nodes {
        let v = match *n {
            Node::Input => x,
            Node::Op(code, a, b) => {
                let (a, b) = (vals[a], vals[b]);
                match code % 7 {
                    0 => (a as i32).wrapping_add(b as i32) as u32,
                    1 => (a as i32).wrapping_sub(b as i32) as u32,
                    2 => (a as i32).wrapping_mul(b as i32) as u32,
                    3 => a & b,
                    4 => a | b,
                    5 => a ^ b,
                    _ => a.wrapping_shr(b & 31),
                }
            }
        };
        vals.push(v);
    }
    *vals.last().expect("nonempty")
}

fn build_kernel(nodes: &[Node]) -> Kernel {
    let mut b = KernelBuilder::new("random");
    let input = b.stream("in", StreamKind::SeqIn);
    let output = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(input);
    let mut ids: Vec<ValueId> = Vec::with_capacity(nodes.len());
    for n in nodes {
        let id = match *n {
            Node::Input => x,
            Node::Op(code, i, j) => {
                let (a, c) = (ids[i], ids[j]);
                match code % 7 {
                    0 => b.add(a, c),
                    1 => b.sub(a, c),
                    2 => b.mul(a, c),
                    3 => b.and(a, c),
                    4 => b.or(a, c),
                    5 => b.xor(a, c),
                    _ => b.shr(a, c),
                }
            }
        };
        ids.push(id);
    }
    b.seq_write(output, *ids.last().expect("nonempty"));
    b.build().expect("generated kernel is valid")
}

fn node_dag() -> impl Strategy<Value = Vec<Node>> {
    // First node is the input; each later node references earlier ones.
    prop::collection::vec(
        (
            any::<u8>(),
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
        ),
        1..24,
    )
    .prop_map(|ops| {
        let mut nodes = vec![Node::Input];
        for (code, i, j) in ops {
            let n = nodes.len();
            nodes.push(Node::Op(code, i.index(n), j.index(n)));
        }
        nodes
    })
}

fn run_on(cfg: ConfigName, kernel: &Arc<Kernel>, inputs: &[u32]) -> Vec<u32> {
    let mcfg = MachineConfig::preset(cfg);
    let sched = schedule(kernel, &SchedParams::from_machine(&mcfg)).expect("schedules");
    let mut m = Machine::new(mcfg).expect("machine builds");
    let n = inputs.len() as u32;
    m.mem_mut().memory_mut().write_block(0, inputs);
    let ib = m.alloc_stream(1, n);
    let ob = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, n), ib, false, &[]);
    let k = p.kernel(
        Arc::clone(kernel),
        sched,
        vec![ib, ob],
        (n / 8) as u64,
        &[l],
    );
    p.store(ob, AddrPattern::contiguous(0x1_0000, n), false, &[k]);
    m.run(&p);
    (0..n)
        .map(|i| m.mem().memory().read(0x1_0000 + i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the scheduler does — any II, any software-pipeline depth —
    /// the functional result equals direct evaluation, on every config.
    #[test]
    fn random_kernels_compute_correctly(
        nodes in node_dag(),
        inputs in prop::collection::vec(any::<u32>(), 8..=64),
    ) {
        // Pad to a lane multiple so every lane sees the same iteration count.
        let mut inputs = inputs;
        while !inputs.len().is_multiple_of(8) {
            inputs.push(0);
        }
        let expect: Vec<u32> = inputs.iter().map(|&x| eval(&nodes, x)).collect();
        let kernel = Arc::new(build_kernel(&nodes));
        for cfg in [ConfigName::Base, ConfigName::Isrf4] {
            let got = run_on(cfg, &kernel, &inputs);
            prop_assert_eq!(&got, &expect, "config {}", cfg);
        }
    }
}
