//! Tier-1 differential suite: every application on every machine
//! configuration, checked word-for-word against the timing-free reference
//! executor, plus sweep-level invariants (determinism across reruns,
//! parallel/serial identity, Isrf1-vs-Isrf4 functional equivalence).
//!
//! Memory in this simulator moves functionally at request time — the cache
//! and DRAM models only shape timing and traffic accounting — so the final
//! memory image of each app must be identical on all four configurations,
//! and identical to what the ISA-semantics interpreter produces.

use isrf_apps::common::Prepared;
use isrf_apps::{bfs, fft2d, filter, igraph, rijndael, sort, spmv, stencil};
use isrf_check::{first_divergence, run_differential, run_parallel, run_serial, DiffOutcome};
use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_sim::ExecEngine;

const APPS: [&str; 8] = [
    "fft2d", "rijndael", "sort", "filter", "igraph", "spmv", "stencil", "bfs",
];
const CONFIGS: [ConfigName; 4] = [
    ConfigName::Base,
    ConfigName::Isrf1,
    ConfigName::Isrf4,
    ConfigName::Cache,
];

/// Build a ready-to-run machine+program for one sweep point, with the same
/// shrunk parameters the bench harness uses for its Small profile.
fn prepare(app: &str, cfg: ConfigName) -> Prepared {
    match app {
        "fft2d" => fft2d::prepare(
            cfg,
            &fft2d::Fft2dParams {
                reps: 1,
                ..Default::default()
            },
        ),
        "rijndael" => rijndael::prepare(
            cfg,
            &rijndael::RijndaelParams {
                chains_per_lane: 2,
                waves: 2,
                strips: 2,
                ..Default::default()
            },
        ),
        "sort" => sort::prepare(
            cfg,
            &sort::SortParams {
                keys_per_lane: 64,
                ..Default::default()
            },
        ),
        "filter" => filter::prepare(
            cfg,
            &filter::FilterParams {
                rows: 32,
                ..Default::default()
            },
        ),
        "igraph" => {
            let mut ds = igraph::dataset("IG_SML");
            ds.nodes /= 4;
            igraph::prepare(cfg, &ds)
        }
        "spmv" => spmv::prepare(
            cfg,
            &spmv::SpmvParams {
                rows: 256,
                strip_rows: 32,
                ..Default::default()
            },
        ),
        "stencil" => stencil::prepare(
            cfg,
            &stencil::StencilParams {
                rows: 64,
                ..Default::default()
            },
        ),
        "bfs" => bfs::prepare(
            cfg,
            &bfs::BfsParams {
                nodes: 512,
                strip_nodes: 64,
                ..Default::default()
            },
        ),
        other => panic!("unknown app {other}"),
    }
}

/// On a differential failure, narrow the blame: run the point under both
/// execution engines in lockstep and bisect snapshots for the first cycle
/// where they disagree (DESIGN.md §12). A reported cycle means an engine
/// bug with an exact location; engines agreeing means the timing model
/// itself disagrees with the reference semantics.
fn bisect_engines(app: &str, cfg: ConfigName) -> String {
    let mut tape = prepare(app, cfg);
    tape.machine.set_engine(ExecEngine::Tape);
    let mut interp = prepare(app, cfg);
    interp.machine.set_engine(ExecEngine::Interp);
    match first_divergence(
        &mut tape.machine,
        &mut interp.machine,
        &tape.program,
        256,
        None,
    ) {
        Ok(Some(d)) => format!("tape-vs-interpreter bisection:\n{d}"),
        Ok(None) => "tape-vs-interpreter bisection: engines agree through completion; \
                     the divergence is against the reference semantics"
            .into(),
        Err(e) => format!("tape-vs-interpreter bisection did not restore cleanly: {e:?}"),
    }
}

fn diff_point(app: &str, cfg: ConfigName) -> DiffOutcome {
    let mut pr = prepare(app, cfg);
    run_differential(&mut pr.machine, &pr.program, &pr.outputs).unwrap_or_else(|failure| {
        let shown: Vec<String> = failure
            .errors
            .iter()
            .take(8)
            .map(|e| e.to_string())
            .collect();
        panic!(
            "{app} on {cfg:?} diverged from the reference executor \
             ({} mismatches):\n  {}\nlast trace events:\n{}\n{}",
            failure.errors.len(),
            shown.join("\n  "),
            failure.trace_tail.join("\n"),
            bisect_engines(app, cfg)
        )
    })
}

fn grid() -> Vec<(&'static str, ConfigName)> {
    APPS.iter()
        .flat_map(|&a| CONFIGS.iter().map(move |&c| (a, c)))
        .collect()
}

/// The acceptance gate: all 8 apps × 4 configs agree with the reference
/// on every word of memory and SRF, and on the indexed access counts.
/// Points run in parallel — the sweep harness drives its own test load.
#[test]
fn all_apps_all_configs_match_reference() {
    let points = grid();
    let outcomes = run_parallel(&points, |&(app, cfg)| (app, cfg, diff_point(app, cfg)));
    assert_eq!(outcomes.len(), points.len());
    for (app, cfg, out) in &outcomes {
        // Indexed configs must actually exercise indexed access on the
        // indexed apps (otherwise the count check is vacuous).
        if matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4) && *app != "fft2d" {
            assert!(
                out.counts.inlane_words + out.counts.crosslane_words > 0,
                "{app} on {cfg:?} performed no indexed accesses"
            );
        }
    }
}

/// Two fresh preparations of the same point produce bit-identical stats:
/// the whole pipeline (data generation, scheduling, simulation) is
/// deterministic.
#[test]
fn reruns_are_deterministic() {
    for app in APPS {
        for cfg in [ConfigName::Base, ConfigName::Isrf4] {
            let run = |_: &()| -> RunStats {
                let mut pr = prepare(app, cfg);
                pr.machine.run(&pr.program)
            };
            let a = run(&());
            let b = run(&());
            assert_eq!(a, b, "{app} on {cfg:?} not deterministic across reruns");
        }
    }
}

/// The parallel sweep driver returns exactly what a serial sweep returns,
/// in the same order, for the full app × config grid.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let points = grid();
    let run = |&(app, cfg): &(&str, ConfigName)| -> RunStats {
        let mut pr = prepare(app, cfg);
        pr.machine.run(&pr.program)
    };
    let par = run_parallel(&points, run);
    let ser = run_serial(&points, run);
    assert_eq!(par, ser, "parallel sweep diverged from serial sweep");
}

/// Isrf1 and Isrf4 run the *same* program (they differ only in indexed
/// sub-array parallelism, a pure timing feature), so final data, off-chip
/// traffic, and SRF traffic must be identical — only cycle counts differ.
#[test]
fn isrf1_and_isrf4_are_functionally_equivalent() {
    let pairs = run_parallel(&APPS, |&app| {
        let o1 = diff_point(app, ConfigName::Isrf1);
        let o4 = diff_point(app, ConfigName::Isrf4);
        (app, o1, o4)
    });
    for (app, o1, o4) in &pairs {
        assert_eq!(
            o1.stats.mem, o4.stats.mem,
            "{app}: Isrf1 vs Isrf4 off-chip traffic differs"
        );
        assert_eq!(
            o1.stats.srf, o4.stats.srf,
            "{app}: Isrf1 vs Isrf4 SRF traffic differs"
        );
        assert_eq!(
            o1.counts, o4.counts,
            "{app}: Isrf1 vs Isrf4 reference indexed counts differ"
        );
    }
}
