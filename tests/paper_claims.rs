//! Integration tests pinning the paper's headline claims (at reduced
//! workload sizes; EXPERIMENTS.md records the paper-size numbers).

use isrf::apps::{igraph, rijndael, sort};
use isrf::core::config::ConfigName;
use isrf::sram::{AreaModel, EnergyModel, SrfGeometry, SrfVariant};

/// Section 1: "indexed SRF access provides speedups of 1.03x to 4.1x and
/// memory bandwidth reductions of up to 95%".
#[test]
fn headline_speedups_and_traffic() {
    let params = rijndael::RijndaelParams {
        chains_per_lane: 2,
        waves: 2,
        strips: 2,
        ..Default::default()
    };
    let base = rijndael::run(ConfigName::Base, &params);
    let isrf = rijndael::run(ConfigName::Isrf4, &params);
    let speedup = isrf.speedup_over(&base);
    assert!(
        speedup > 3.0 && speedup < 8.0,
        "Rijndael speedup {speedup:.2} (paper: 4.11x)"
    );
    let cut = 1.0 - isrf.mem.normalized_to(&base.mem);
    assert!(cut > 0.85, "traffic cut {:.1}% (paper: ~95%)", cut * 100.0);
}

/// Section 5.3: ISRF4 outperforms the Cache configuration for all
/// benchmarks despite the cache's much higher area cost.
#[test]
fn isrf4_beats_cache_on_rijndael_and_sort() {
    let params = rijndael::RijndaelParams {
        chains_per_lane: 2,
        waves: 2,
        strips: 2,
        ..Default::default()
    };
    let cache = rijndael::run(ConfigName::Cache, &params);
    let isrf = rijndael::run(ConfigName::Isrf4, &params);
    assert!(isrf.cycles < cache.cycles, "Rijndael: ISRF4 beats Cache");

    let sp = sort::SortParams {
        keys_per_lane: 64,
        ..Default::default()
    };
    let cache = sort::run(ConfigName::Cache, &sp);
    let isrf = sort::run(ConfigName::Isrf4, &sp);
    assert!(isrf.cycles < cache.cycles, "Sort: ISRF4 beats Cache");
    // "The cache does not provide the conditional and complex SRF accesses
    // ... and consequently does not provide any speedup for these
    // benchmarks": Cache == Base for Sort.
    let base = sort::run(ConfigName::Base, &sp);
    assert_eq!(cache.cycles, base.cycles, "Cache gives Sort nothing");
}

/// Section 4.6: 11%/18%/22% SRF area overheads = 1.5%-3% of the die.
#[test]
fn area_overheads_in_paper_bands() {
    let model = AreaModel::default();
    let geom = SrfGeometry::paper_default();
    let o1 = model.overhead_vs_sequential(&geom, SrfVariant::Inlane1);
    let o4 = model.overhead_vs_sequential(&geom, SrfVariant::Inlane4);
    let ox = model.overhead_vs_sequential(&geom, SrfVariant::CrossLane);
    assert!((0.09..=0.13).contains(&o1));
    assert!((0.16..=0.20).contains(&o4));
    assert!((0.20..=0.24).contains(&ox));
    assert!(o1 < o4 && o4 < ox);
    let die = model.die_overhead(&geom, SrfVariant::CrossLane);
    assert!((0.015..=0.033).contains(&die));
}

/// Section 4.5: ~0.1 nJ per indexed access, an order of magnitude below
/// the ~5 nJ DRAM access — the energy argument for trading DRAM traffic
/// for SRF traffic.
#[test]
fn energy_ordering() {
    let m = EnergyModel::default();
    let g = SrfGeometry::paper_default();
    assert!(m.indexed_word_nj(&g) < 0.15);
    assert!(m.dram_access_nj() / m.indexed_word_nj(&g) > 10.0);
    assert!(m.indexed_over_seq(&g) > 2.0, "indexed costs ~4x sequential");
}

/// Table 4 / Section 5.3: eliminating replication roughly doubles the IG
/// strip size in the same SRF budget, and all ISRF accesses are
/// cross-lane.
#[test]
fn ig_strips_and_crosslane() {
    for ds in &igraph::DATASETS {
        assert!(ds.isrf_strip_nodes >= 2 * ds.base_strip_nodes);
    }
    let mut ds = igraph::dataset("IG_SML");
    ds.nodes = 1152;
    let s = igraph::run(ConfigName::Isrf4, &ds);
    assert!(s.srf.crosslane_words > 0);
    assert_eq!(s.srf.inlane_words, 0);
}
