//! Golden Chrome-trace test for the smallest 5-point stencil pass on the
//! indexed configuration: the exporter output is byte-identical to the
//! checked-in golden file, the span structure reflects the halo-block
//! load / kernel / strided-store pipeline, and the Figure-12 cycle
//! attribution reconstructed from the event stream matches the machine's
//! reported breakdown.
//!
//! Regenerate the golden file after an intentional exporter or simulator
//! change with `UPDATE_GOLDEN=1 cargo test --test trace_stencil`.

use isrf::core::config::ConfigName;
use isrf::core::stats::RunStats;
use isrf::trace::{chrome, json, Recorder, Tracer};
use isrf_apps::stencil::{self, StencilParams, COLS, STRIP_ROWS};

/// One 5-point strip (32×64 grid) on ISRF4 under a recording tracer.
fn traced_stencil() -> (Recorder, RunStats) {
    let params = StencilParams {
        rows: STRIP_ROWS,
        ..StencilParams::default()
    };
    let mut pr = stencil::prepare_pass(ConfigName::Isrf4, &params, 5);
    pr.machine.set_tracer(Tracer::recording(1 << 18));
    let stats = pr.machine.run(&pr.program);
    let rec = pr
        .machine
        .take_tracer()
        .into_recorder()
        .expect("recording tracer");
    (rec, stats)
}

fn export(rec: &Recorder) -> String {
    let events: Vec<_> = rec.ring().iter().cloned().collect();
    chrome::export(&events)
}

#[test]
fn stencil5_chrome_export_matches_golden_file() {
    let (rec, _stats) = traced_stencil();
    let got = export(&rec);
    json::validate(&got).expect("exporter emits valid JSON");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/stencil5_isrf4.trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(got, want, "trace output drifted from the golden file");
}

#[test]
fn stencil5_trace_structure_and_audit() {
    let (rec, stats) = traced_stencil();
    let out = export(&rec);

    // Timestamps are monotone.
    let ts: Vec<i64> = out
        .lines()
        .filter_map(|l| {
            let i = l.find("\"ts\":")?;
            let rest = &l[i + 5..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        })
        .collect();
    assert!(!ts.is_empty());
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts monotone");

    // One strip = one kernel span, one halo-block load (8 lane blocks of
    // 6 rows × 64 cols), one strip store (32 rows × 64 cols).
    assert_eq!(
        out.matches("\"name\":\"stencil5_isrf\"").count(),
        1,
        "exactly one kernel span"
    );
    assert_eq!(out.matches("\"load 3072w").count(), 1);
    let store_words = STRIP_ROWS * COLS;
    assert_eq!(out.matches(&format!("\"store {store_words}w")).count(), 1);
    assert!(out.contains("\"process_name\""), "metadata emitted");

    // The event-stream audit reconstructs the machine's Figure-12 cycle
    // breakdown exactly.
    let mismatches = rec.audit().verify(&stats.breakdown);
    assert!(mismatches.is_empty(), "audit mismatches: {mismatches:?}");
}
