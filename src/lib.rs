//! Indexed stream register files — a complete Rust reproduction of
//! *"Stream Register Files with Indexed Access"* (HPCA 2004).
//!
//! This meta-crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — machine configurations and statistics,
//! * [`sram`] — the SRAM area/energy model (Section 4.6),
//! * [`mem`] — DRAM, vector cache and the stream memory controller,
//! * [`kernel`] — the kernel IR and modulo scheduler,
//! * [`sim`] — the cycle-level stream-processor simulator,
//! * [`trace`] — cycle-attributed instrumentation, metrics and Chrome
//!   trace export,
//! * [`apps`] — the paper's benchmarks and microbenchmarks,
//! * [`lang`] — the KernelC-subset front-end (Section 4.7).
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isrf_apps as apps;
pub use isrf_core as core;
pub use isrf_kernel as kernel;
pub use isrf_lang as lang;
pub use isrf_mem as mem;
pub use isrf_sim as sim;
pub use isrf_sram as sram;
pub use isrf_trace as trace;
