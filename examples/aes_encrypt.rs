//! Encrypt data with real AES-128 (CBC) on all four machine
//! configurations and compare: the table lookups that hammer off-chip
//! memory on the sequential-SRF baseline become cheap in-lane indexed SRF
//! accesses (the paper's headline 4.1x speedup, ~95% traffic reduction).
//!
//! ```sh
//! cargo run --release --example aes_encrypt
//! ```

use isrf::apps::rijndael::{run, RijndaelParams};
use isrf::core::config::ConfigName;

fn main() {
    let params = RijndaelParams::default();
    println!(
        "AES-128 CBC, {} blocks ({} independent streams), FIPS-197 key",
        params.total_blocks(),
        8 * params.chains_per_lane
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "config", "cycles", "speedup", "DRAM bytes", "MB/s@1GHz"
    );
    let base = run(ConfigName::Base, &params);
    for cfg in ConfigName::ALL {
        let s = if cfg == ConfigName::Base {
            base
        } else {
            run(cfg, &params)
        };
        let bytes_in = params.total_blocks() as f64 * 16.0;
        let rate = bytes_in / s.cycles as f64 * 1e9 / 1e6;
        println!(
            "{:<8} {:>10} {:>9.2}x {:>12} {:>10.0}",
            cfg.to_string(),
            s.cycles,
            s.speedup_over(&base),
            s.mem.total(),
            rate
        );
    }
    println!("(every run is verified block-for-block against a FIPS-validated reference)");
}
