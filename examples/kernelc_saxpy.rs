//! Compile and run a floating-point KernelC kernel: `y = a*x + y` with a
//! per-cluster running maximum kept in a loop-carried accumulator.
//!
//! ```sh
//! cargo run --release --example kernelc_saxpy
//! ```

use std::sync::Arc;

use isrf::core::config::{ConfigName, MachineConfig};
use isrf::core::word::{as_f32, from_f32};
use isrf::kernel::sched::{schedule, SchedParams};
use isrf::mem::AddrPattern;
use isrf::sim::{Machine, StreamProgram};

const SAXPY: &str = r#"
kernel saxpy(
    istream<float> xs,
    istream<float> ys,
    ostream<float> out,
    ostream<float> peak) {
  float x, y, r, m;
  while (!eos(xs)) {
    xs >> x;
    ys >> y;
    r = 2.5 * x + y;
    m = max(m, r);     // m is read before assignment: loop-carried
    out << r;
    peak << m;
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Arc::new(isrf::lang::parse_kernel(SAXPY)?);
    let cfg = MachineConfig::preset(ConfigName::Base);
    let sched = schedule(&kernel, &SchedParams::from_machine(&cfg))?;
    println!(
        "compiled `{}`: {} ops, II = {}",
        kernel.name,
        kernel.ops.len(),
        sched.ii
    );

    let mut m = Machine::new(cfg)?;
    let n = 256u32;
    for i in 0..n {
        m.mem_mut()
            .memory_mut()
            .write(i, from_f32(i as f32 * 0.125));
        m.mem_mut().memory_mut().write(0x1000 + i, from_f32(1.0));
    }
    let xs = m.alloc_stream(1, n);
    let ys = m.alloc_stream(1, n);
    let out = m.alloc_stream(1, n);
    let peak = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l1 = p.load(AddrPattern::contiguous(0, n), xs, false, &[]);
    let l2 = p.load(AddrPattern::contiguous(0x1000, n), ys, false, &[]);
    let k = p.kernel(
        Arc::clone(&kernel),
        sched,
        vec![xs, ys, out, peak],
        (n / 8) as u64,
        &[l1, l2],
    );
    p.store(out, AddrPattern::contiguous(0x2000, n), false, &[k]);
    p.store(peak, AddrPattern::contiguous(0x3000, n), false, &[k]);
    let stats = m.run(&p);

    for i in 0..n {
        let expect = 2.5 * (i as f32 * 0.125) + 1.0;
        let got = as_f32(m.mem().memory().read(0x2000 + i));
        assert_eq!(got, expect, "element {i}");
    }
    // The last record of each lane carries that lane's running maximum =
    // its largest input, i.e. the lane's final element's result.
    let last = as_f32(m.mem().memory().read(0x3000 + n - 1));
    assert_eq!(last, 2.5 * ((n - 1) as f32 * 0.125) + 1.0);
    println!("all {n} results exact; {} cycles", stats.cycles);
    Ok(())
}
