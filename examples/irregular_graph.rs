//! Sweep the four Table 4 irregular-graph datasets: the baseline gathers
//! replicated neighbor records from memory; the indexed SRF keeps one
//! condensed copy per strip and reaches it with cross-lane indexed reads,
//! roughly doubling the strip size in the same SRF budget.
//!
//! ```sh
//! cargo run --release --example irregular_graph
//! ```

use isrf::apps::igraph::{run, DATASETS};
use isrf::core::config::ConfigName;

fn main() {
    println!(
        "{:<8} {:>7} {:>7} {:>11} {:>11} {:>9} {:>13}",
        "dataset", "FP/nbr", "degree", "Base cyc", "ISRF4 cyc", "speedup", "traffic ratio"
    );
    for ds in &DATASETS {
        let base = run(ConfigName::Base, ds);
        let isrf = run(ConfigName::Isrf4, ds);
        println!(
            "{:<8} {:>7} {:>7} {:>11} {:>11} {:>8.2}x {:>13.3}",
            ds.name,
            ds.fp_ops,
            ds.degree,
            base.cycles,
            isrf.cycles,
            isrf.speedup_over(&base),
            isrf.mem.normalized_to(&base.mem)
        );
    }
    println!("(node updates are verified against a host-side sweep)");
}
