//! Quickstart: compile the paper's Figure 10 table-lookup kernel from
//! KernelC source, run it on the simulated indexed-SRF machine, and check
//! the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use isrf::core::config::{ConfigName, MachineConfig};
use isrf::kernel::sched::{schedule, SchedParams};
use isrf::mem::AddrPattern;
use isrf::sim::{Machine, StreamProgram};

const FIGURE_10: &str = r#"
kernel lookup(
    istream<int> in,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b, c;
  while (!eos(in)) {
    in >> a;
    LUT[a] >> b;
    c = a + b;       // foo(a, b)
    out << c;
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the KernelC source to the kernel IR and schedule it.
    let kernel = Arc::new(isrf::lang::parse_kernel(FIGURE_10)?);
    let cfg = MachineConfig::preset(ConfigName::Isrf4);
    let sched = schedule(&kernel, &SchedParams::from_machine(&cfg))?;
    println!(
        "compiled `{}`: {} ops, II = {} cycles, {} pipeline stages",
        kernel.name,
        kernel.ops.len(),
        sched.ii,
        sched.stages()
    );

    // 2. Build the machine and lay out data in off-chip memory: a
    //    256-entry table (replicated per lane in the SRF) and 512 inputs.
    let mut m = Machine::new(cfg)?;
    let lanes = 8u32;
    for e in 0..256u32 {
        for lane in 0..lanes {
            m.mem_mut().memory_mut().write(e * lanes + lane, 1000 * e);
        }
    }
    let n = 512u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(0x1_0000 + i, (i * 7) % 256);
    }

    // 3. Allocate SRF streams and run: load table + inputs, run the
    //    kernel, store the outputs.
    let lut = m.alloc_stream(1, 256 * lanes);
    let input = m.alloc_stream(1, n);
    let output = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let table_pattern = AddrPattern::Indexed(
        (0..256 * lanes)
            .map(|r| r / lanes * lanes + r % lanes)
            .collect(),
    );
    let l1 = p.load(table_pattern, lut, false, &[]);
    let l2 = p.load(AddrPattern::contiguous(0x1_0000, n), input, false, &[]);
    let k = p.kernel(
        Arc::clone(&kernel),
        sched,
        vec![input, lut, output],
        (n / lanes) as u64,
        &[l1, l2],
    );
    p.store(output, AddrPattern::contiguous(0x2_0000, n), false, &[k]);
    let stats = m.run(&p);

    // 4. Check and report.
    for i in 0..n {
        let a = (i * 7) % 256;
        let expect = a + 1000 * a;
        let got = m.mem().memory().read(0x2_0000 + i);
        assert_eq!(got, expect, "element {i}");
    }
    println!("all {n} lookups correct");
    println!(
        "{} cycles [{}]; {} in-lane indexed SRF accesses",
        stats.cycles, stats.breakdown, stats.srf.inlane_words
    );
    Ok(())
}
