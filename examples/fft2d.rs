//! Run the 64x64 2D FFT on all configurations: the baseline rotates the
//! array through off-chip memory between dimensions (Figure 3a), the
//! indexed SRF transforms the second dimension in place with in-lane
//! indexed accesses (Figure 3b), and the cache captures the reorder but
//! still executes it.
//!
//! ```sh
//! cargo run --release --example fft2d
//! ```

use isrf::apps::fft2d::{run, Fft2dParams};
use isrf::core::config::ConfigName;

fn main() {
    let params = Fft2dParams::default();
    println!("64x64 complex 2D FFT, {} frames", params.reps);
    println!(
        "{:<8} {:>10} {:>9} {:>12} {:>13}",
        "config", "cycles", "speedup", "DRAM bytes", "idx SRF words"
    );
    let base = run(ConfigName::Base, &params);
    for cfg in ConfigName::ALL {
        let s = if cfg == ConfigName::Base {
            base
        } else {
            run(cfg, &params)
        };
        println!(
            "{:<8} {:>10} {:>8.2}x {:>12} {:>13}",
            cfg.to_string(),
            s.cycles,
            s.speedup_over(&base),
            s.mem.total(),
            s.srf.inlane_words
        );
    }
    println!("(outputs are verified against a naive double-precision DFT)");
}
