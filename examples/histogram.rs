//! Read-write data structures in the SRF (the paper's Section 7 future
//! work): every cluster histograms its key stream into bank-resident bins
//! using an in-lane indexed read-modify-write per key.
//!
//! ```sh
//! cargo run --release --example histogram
//! ```

use isrf::apps::histogram::{run, run_with_keys, HistogramParams};
use isrf::core::config::ConfigName;

fn main() {
    let params = HistogramParams::default();
    println!(
        "in-SRF histogram: {} keys per cluster into {} bank-resident bins",
        params.keys_per_lane, params.buckets
    );
    let stats = run(ConfigName::Isrf4, &params);
    println!(
        "ISRF4: {} cycles, {} indexed reads + writes, all counts exact",
        stats.cycles, stats.srf.inlane_words
    );

    // Violate the software hazard discipline on purpose: every iteration
    // updates the same bin, inside the address-FIFO + latency window.
    let keys = vec![0u32; (params.keys_per_lane * 8) as usize];
    let (_, lanes) = run_with_keys(ConfigName::Isrf4, &params, &keys);
    println!(
        "hazard demo: {} back-to-back updates of one bin landed as {} \
         (read-write structures need the interlocks the paper leaves to \
         future work)",
        params.keys_per_lane, lanes[0][0]
    );
}
