#!/usr/bin/env bash
# Full CI gate: build, test, formatting, lints. Run from the repo root.
#
#   ./ci.sh           tier-1 gate only
#   ./ci.sh --check   tier-1 gate, then the perf basket in regression-check
#                     mode: fails if simulator throughput drops >25% below
#                     the committed results/BENCH_perf.json baseline (see
#                     EXPERIMENTS.md, "Performance"). The fresh measurement
#                     is written to results/BENCH_perf.current.json as the
#                     run's trajectory artifact; the committed baseline is
#                     never overwritten.
#   ./ci.sh --miri    tier-1 gate, then `cargo miri test` on the pure
#                     foundation crates (opt-in: miri is slow and needs the
#                     nightly component; the gate fails if it is missing).
set -euo pipefail
cd "$(dirname "$0")"

perf_check=0
miri=0
for arg in "$@"; do
  case "$arg" in
    --check) perf_check=1 ;;
    --miri) miri=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
# Our crates only: --workspace would also pull in the vendored stand-ins,
# whose docs we do not police.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p isrf -p isrf-core -p isrf-trace -p isrf-sram -p isrf-mem \
  -p isrf-kernel -p isrf-sim -p isrf-verify -p isrf-apps -p isrf-lang \
  -p isrf-check -p isrf-serve -p isrf-bench

echo "==> static verification (all apps x all configs)"
# Every shipped benchmark program must pass the isrf-verify hazard
# analyzer on every paper configuration, plus the analyzer's own negative
# corpus (run above as part of the workspace tests, repeated here so a
# filtered test run cannot skip it).
./target/release/verify all all
cargo test -q -p isrf-verify

echo "==> analyzer report drift check (golden reports)"
# The full analyzer report — diagnostics, warnings, per-kernel pressure
# and the static cycle floor — for all 8 apps x 4 configs on both sizing
# profiles must match the committed goldens byte-for-byte. Regenerate
# with `verify all all [--paper] --report <file>` when a change is
# intentional.
./target/release/verify all all --check results/VERIFY_report.json
./target/release/verify all all --paper --check results/VERIFY_report_paper.json

echo "==> static cycle floor vs simulation (both engines, both profiles)"
# The model's whole-program cycle lower bound must be sound (floor <=
# simulated cycles under Tape AND Interp) and not uselessly loose
# (floor >= MIN_FLOOR_PCT of simulated; committed in the verify bin) on
# every app x config point.
./target/release/verify all all --cycles
./target/release/verify all all --paper --cycles

echo "==> trace smoke test"
# One app on one config: the audit must pass (exit 0) and the emitted
# Chrome trace must parse as JSON. Prefer an external JSON parser when one
# exists; otherwise the trace binary's built-in validator is the gate —
# either way an invalid trace FAILS the build.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/trace sort isrf4 --out-dir "$smoke_dir"
smoke_json="$smoke_dir/sort_isrf4.trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$smoke_json"
elif command -v node >/dev/null 2>&1; then
  node -e "JSON.parse(require('fs').readFileSync(process.argv[1]))" "$smoke_json"
else
  echo "no python3/node; using the built-in validator"
  ./target/release/trace --validate "$smoke_json"
fi

echo "==> engine differential (tape vs interpreter)"
# The compiled-tape engine must be unobservable next to the graph-walking
# interpreter: identical stats, word-for-word identical trace streams, and
# identical output memory on a conditional-stream point (sort ISRF4), an
# indexed-landing point (filter Base), a cross-lane gather point
# (spmv ISRF4), an in-lane halo-reuse point (stencil ISRF4), and an
# irregular-frontier replication point (bfs Base).
./target/release/engines

echo "==> serve smoke test"
# Spawn the batch server on an ephemeral port with a tiny queue, submit
# sort/ISRF4 and filter/Base, poll to completion and diff the served
# results word-for-word against direct one-shot runs, exercise a 429
# (queue bound of 2), the memoized resubmission path, and a clean
# POST /shutdown drain.
./target/release/loadtest smoke --bin target/release/isrf-serve

echo "==> snapshot/resume differential + bisector negative test"
# Pausing sort/ISRF4 halfway, serializing the machine, restoring into a
# fresh one and resuming must be byte-identical to an uninterrupted run
# under both engines; and the first-divergence bisector must localize a
# deliberately injected single-word SRF corruption to its exact cycle.
./target/release/snapshot
./target/release/snapshot negative

if [[ "$miri" == 1 ]]; then
  echo "==> cargo miri test (foundation crates)"
  cargo miri test -q -p isrf-core -p isrf-sram
fi

if [[ "$perf_check" == 1 ]]; then
  echo "==> perf basket (--check against committed baseline)"
  ./target/release/perf --check results/BENCH_perf.json \
    --out results/BENCH_perf.current.json --runs 5
fi

echo "CI OK"
