#!/usr/bin/env bash
# Full CI gate: build, test, formatting, lints. Run from the repo root.
#
#   ./ci.sh           tier-1 gate only
#   ./ci.sh --check   tier-1 gate, then the perf basket in regression-check
#                     mode: fails if simulator throughput drops >15% below
#                     the committed results/BENCH_perf.json baseline (see
#                     EXPERIMENTS.md, "Performance"). The fresh measurement
#                     is written to results/BENCH_perf.current.json as the
#                     run's trajectory artifact; the committed baseline is
#                     never overwritten.
set -euo pipefail
cd "$(dirname "$0")"

perf_check=0
if [[ "${1:-}" == "--check" ]]; then
  perf_check=1
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
# Our crates only: --workspace would also pull in the vendored stand-ins,
# whose docs we do not police.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p isrf -p isrf-core -p isrf-trace -p isrf-sram -p isrf-mem \
  -p isrf-kernel -p isrf-sim -p isrf-apps -p isrf-lang -p isrf-check \
  -p isrf-bench

echo "==> trace smoke test"
# One app on one config: the audit must pass (exit 0) and the emitted
# Chrome trace must parse as JSON.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/trace sort isrf4 --out-dir "$smoke_dir"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$smoke_dir/sort_isrf4.trace.json" 2>/dev/null \
  || node -e "JSON.parse(require('fs').readFileSync(process.argv[1]))" \
    "$smoke_dir/sort_isrf4.trace.json" 2>/dev/null \
  || { echo "no python3/node for JSON check; relying on built-in validator"; }

if [[ "$perf_check" == 1 ]]; then
  echo "==> perf basket (--check against committed baseline)"
  ./target/release/perf --check results/BENCH_perf.json \
    --out results/BENCH_perf.current.json --runs 3
fi

echo "CI OK"
