//! SRF area model (Section 4.6).
//!
//! The model counts the structures visible in Figures 6 and 7 and sizes
//! each with a 0.13 µm technology constant:
//!
//! * **Sequential SRF** (Figure 6): bitcell arrays, local wordline drivers,
//!   sense amplifiers/precharge/write drivers, a 2:1 column mux for the
//!   128-bit block access, and a *single* row decoder shared by all banks.
//! * **ISRF1** adds a dedicated row decoder per bank plus the address
//!   distribution bus that feeds them.
//! * **ISRF4** (Figure 7) further adds independent predecode + row decode
//!   per *sub-array*, the extra 8:1 column-mux path for one-word accesses,
//!   and per-sub-array address busses.
//! * **Cross-lane** adds the index network: a fully connected crossbar for
//!   addresses plus an SRF-side network port per bank.
//!
//! Because variants share all common structures, the overhead ratios are
//! determined by what is counted, not by the absolute calibration of the
//! constants.

use std::fmt;

use crate::geometry::{SrfGeometry, SrfVariant};

/// 0.13 µm technology constants, all in µm² per unit counted.
///
/// Values follow published 0.13 µm SRAM data (bitcell ≈ 2.4 µm²) and
/// Cacti-3-era peripheral sizings. They can be swept; the Section 4.6
/// overhead *ratios* are robust to proportional rescaling of the
/// peripheral constants.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// 6T SRAM bitcell area.
    pub bitcell: f64,
    /// Local wordline driver, per row per sub-array.
    pub wl_driver_per_row: f64,
    /// Sense amp + precharge + write driver, per column.
    pub sense_per_col: f64,
    /// One column-mux level (pass transistor pair), per column.
    pub colmux_per_col_per_level: f64,
    /// Row decode NAND + wordline driver, per wordline.
    pub rowdec_per_wordline: f64,
    /// Fixed predecoder block (shared logic per decoder instance).
    pub predecoder: f64,
    /// Address bus routed across the bank array, per bit per bank reached.
    pub addr_bus_per_bit_per_bank: f64,
    /// Intra-bank address bus to one sub-array, per bit per sub-array.
    pub addr_bus_per_bit_per_subarray: f64,
    /// One crossbar crosspoint, per bit.
    pub crossbar_crosspoint_per_bit: f64,
    /// SRF-side network port (mux/demux + buffering), per bank.
    pub network_port_per_bank: f64,
    /// Fraction of total die occupied by the SRF in a typical stream
    /// processor (from the Imagine VLSI statistics the paper cites \[13\]).
    pub srf_fraction_of_die: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            bitcell: 2.43,
            wl_driver_per_row: 25.0,
            sense_per_col: 12.0,
            colmux_per_col_per_level: 3.0,
            rowdec_per_wordline: 55.0,
            predecoder: 1800.0,
            addr_bus_per_bit_per_bank: 900.0,
            addr_bus_per_bit_per_subarray: 250.0,
            crossbar_crosspoint_per_bit: 35.0,
            network_port_per_bank: 8000.0,
            srf_fraction_of_die: 0.135,
        }
    }
}

/// Itemized SRF area, in µm².
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaBreakdown {
    /// Bitcell arrays.
    pub bitcells: f64,
    /// Local wordline drivers.
    pub wl_drivers: f64,
    /// Sense amplifiers, precharge and write drivers.
    pub sense: f64,
    /// Column multiplexers (sequential 2:1 path plus, on indexed variants,
    /// the additional single-word mux levels).
    pub col_mux: f64,
    /// Row decoders and their wordline drivers.
    pub decoders: f64,
    /// Predecoder blocks.
    pub predecoders: f64,
    /// Address distribution busses.
    pub addr_bus: f64,
    /// Cross-lane index network (crossbar + SRF-side ports).
    pub index_network: f64,
}

impl AreaBreakdown {
    /// Total area in µm².
    pub fn total(&self) -> f64 {
        self.bitcells
            + self.wl_drivers
            + self.sense
            + self.col_mux
            + self.decoders
            + self.predecoders
            + self.addr_bus
            + self.index_network
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total() / 1.0e6
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} mm² (cells {:.3}, periph {:.3}, decode {:.3}, bus {:.3}, net {:.3})",
            self.total_mm2(),
            self.bitcells / 1e6,
            (self.wl_drivers + self.sense + self.col_mux) / 1e6,
            (self.decoders + self.predecoders) / 1e6,
            self.addr_bus / 1e6,
            self.index_network / 1e6,
        )
    }
}

/// The area model: technology constants applied to an [`SrfGeometry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AreaModel {
    /// Technology constants used for sizing.
    pub tech: TechParams,
}

impl AreaModel {
    /// Build a model with explicit technology constants.
    pub fn new(tech: TechParams) -> Self {
        AreaModel { tech }
    }

    /// Itemized area of `variant` for the given geometry.
    pub fn breakdown(&self, geom: &SrfGeometry, variant: SrfVariant) -> AreaBreakdown {
        let t = &self.tech;
        let subarrays = (geom.banks * geom.subarrays_per_bank) as f64;
        let rows = geom.rows as f64;
        let cols = geom.cols as f64;
        // Sequential 2:1 column mux is always present; indexed variants add
        // the extra levels needed to select a single word from the row
        // (8:1 total on the paper geometry).
        let seq_mux_levels = (geom.seq_mux_degree() as f64).log2().max(1.0);
        let idx_extra_levels = ((geom.indexed_mux_degree() as f64).log2()
            - (geom.seq_mux_degree() as f64).log2())
        .max(0.0);

        let mut a = AreaBreakdown {
            bitcells: subarrays * rows * cols * t.bitcell,
            wl_drivers: subarrays * rows * t.wl_driver_per_row,
            sense: subarrays * cols * t.sense_per_col,
            col_mux: subarrays * cols * seq_mux_levels * t.colmux_per_col_per_level,
            ..AreaBreakdown::default()
        };

        // One decoder instance covers `wordlines` global wordlines; the
        // shared sequential decoder must span every row of every sub-array
        // in a bank (global wordlines + sub-array select).
        let bank_wordlines = (geom.subarrays_per_bank * geom.rows) as f64;
        let decoder = |wordlines: f64| wordlines * t.rowdec_per_wordline + t.predecoder;
        let addr_bits = geom.bank_addr_bits() as f64 + 4.0; // + control

        match variant {
            SrfVariant::Sequential => {
                // Single decoder shared across all banks (Figure 6).
                a.decoders = bank_wordlines * t.rowdec_per_wordline;
                a.predecoders = t.predecoder;
            }
            SrfVariant::Inlane1 => {
                // Dedicated decoder per bank + bank address distribution.
                a.decoders = geom.banks as f64 * bank_wordlines * t.rowdec_per_wordline;
                a.predecoders = geom.banks as f64 * t.predecoder;
                a.addr_bus = addr_bits * geom.banks as f64 * t.addr_bus_per_bit_per_bank;
            }
            SrfVariant::Inlane4 | SrfVariant::CrossLane => {
                // Independent predecode + row decode per sub-array
                // (Figure 7), extra single-word column-mux path, and
                // intra-bank address busses to each sub-array.
                let per_bank_decode = geom.subarrays_per_bank as f64 * decoder(rows);
                a.decoders = geom.banks as f64
                    * geom.subarrays_per_bank as f64
                    * rows
                    * t.rowdec_per_wordline;
                a.predecoders =
                    geom.banks as f64 * (per_bank_decode - a.decoders / geom.banks as f64);
                a.col_mux += subarrays * cols * idx_extra_levels * t.colmux_per_col_per_level;
                a.addr_bus = addr_bits * geom.banks as f64 * t.addr_bus_per_bit_per_bank
                    + addr_bits
                        * geom.banks as f64
                        * (geom.subarrays_per_bank as f64 - 1.0)
                        * t.addr_bus_per_bit_per_subarray;
                if variant == SrfVariant::CrossLane {
                    let n = geom.banks as f64;
                    a.index_network = n * n * addr_bits * t.crossbar_crosspoint_per_bit
                        + n * t.network_port_per_bank;
                }
            }
        }
        a
    }

    /// Total area of `variant` in µm².
    pub fn srf_area_um2(&self, geom: &SrfGeometry, variant: SrfVariant) -> f64 {
        self.breakdown(geom, variant).total()
    }

    /// Fractional area overhead of `variant` relative to the sequential SRF
    /// of identical capacity (the Section 4.6 headline numbers).
    pub fn overhead_vs_sequential(&self, geom: &SrfGeometry, variant: SrfVariant) -> f64 {
        let base = self.srf_area_um2(geom, SrfVariant::Sequential);
        self.srf_area_um2(geom, variant) / base - 1.0
    }

    /// Fractional *die* area overhead of `variant`, assuming the SRF
    /// occupies [`TechParams::srf_fraction_of_die`] of the chip.
    pub fn die_overhead(&self, geom: &SrfGeometry, variant: SrfVariant) -> f64 {
        self.overhead_vs_sequential(geom, variant) * self.tech.srf_fraction_of_die
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (AreaModel, SrfGeometry) {
        (AreaModel::default(), SrfGeometry::paper_default())
    }

    #[test]
    fn sequential_area_is_dominated_by_bitcells() {
        let (m, g) = model();
        let b = m.breakdown(&g, SrfVariant::Sequential);
        assert!(b.bitcells / b.total() > 0.9);
        // 128 KB of 2.43 µm² cells is ~2.5 mm²; periphery brings it to ~2.8.
        assert!(b.total_mm2() > 2.5 && b.total_mm2() < 3.2, "{}", b);
    }

    #[test]
    fn isrf1_overhead_matches_paper() {
        let (m, g) = model();
        let o = m.overhead_vs_sequential(&g, SrfVariant::Inlane1);
        assert!(
            (0.09..=0.13).contains(&o),
            "ISRF1 overhead {o:.3} vs paper 0.11"
        );
    }

    #[test]
    fn isrf4_overhead_matches_paper() {
        let (m, g) = model();
        let o = m.overhead_vs_sequential(&g, SrfVariant::Inlane4);
        assert!(
            (0.16..=0.20).contains(&o),
            "ISRF4 overhead {o:.3} vs paper 0.18"
        );
    }

    #[test]
    fn crosslane_overhead_matches_paper() {
        let (m, g) = model();
        let o = m.overhead_vs_sequential(&g, SrfVariant::CrossLane);
        assert!(
            (0.20..=0.24).contains(&o),
            "cross-lane overhead {o:.3} vs paper 0.22"
        );
    }

    #[test]
    fn overheads_are_monotone_in_capability() {
        let (m, g) = model();
        let mut prev = -1.0;
        for v in SrfVariant::ALL {
            let o = m.overhead_vs_sequential(&g, v);
            assert!(o > prev, "{v:?} overhead {o} not > {prev}");
            prev = o;
        }
    }

    #[test]
    fn die_overhead_is_one_point_five_to_three_percent() {
        let (m, g) = model();
        let lo = m.die_overhead(&g, SrfVariant::Inlane1);
        let hi = m.die_overhead(&g, SrfVariant::CrossLane);
        assert!(lo > 0.012 && lo < 0.02, "die overhead {lo:.4}");
        assert!(hi > 0.025 && hi < 0.033, "die overhead {hi:.4}");
    }

    #[test]
    fn ratios_robust_to_peripheral_rescale() {
        // Scale every peripheral constant by 1.3x; the ISRF4 overhead must
        // stay in a sane band because the same structures scale together.
        let mut t = TechParams::default();
        for f in [
            &mut t.wl_driver_per_row,
            &mut t.sense_per_col,
            &mut t.colmux_per_col_per_level,
            &mut t.rowdec_per_wordline,
            &mut t.predecoder,
            &mut t.addr_bus_per_bit_per_bank,
            &mut t.addr_bus_per_bit_per_subarray,
            &mut t.crossbar_crosspoint_per_bit,
            &mut t.network_port_per_bank,
        ] {
            *f *= 1.3;
        }
        let m = AreaModel::new(t);
        let g = SrfGeometry::paper_default();
        let o = m.overhead_vs_sequential(&g, SrfVariant::Inlane4);
        assert!((0.12..=0.28).contains(&o), "rescaled overhead {o:.3}");
    }

    #[test]
    fn breakdown_display_is_nonempty() {
        let (m, g) = model();
        let s = m.breakdown(&g, SrfVariant::CrossLane).to_string();
        assert!(s.contains("mm²"));
    }
}
