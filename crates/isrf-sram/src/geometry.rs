//! Physical SRF geometry shared by the area and energy models.

use isrf_core::config::{MachineConfig, SrfConfig};

/// Which SRF design is being costed (Section 4.6's three design points plus
/// the sequential baseline).
///
/// The variants are cumulative in hardware structure:
/// `Sequential ⊂ Inlane1 ⊂ Inlane4 ⊂ CrossLane`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrfVariant {
    /// Conventional sequentially accessed SRF (Figure 6): one row decoder
    /// shared across all banks, hierarchical bitlines, 128-bit block access
    /// per bank.
    Sequential,
    /// ISRF1: a dedicated row decoder per bank so each lane may access a
    /// different row; one indexed word per cycle per lane.
    Inlane1,
    /// ISRF4 (Figure 7): adds per-sub-array predecode/row-decode, an 8:1
    /// column multiplexer per sub-array, and per-sub-array address busses,
    /// allowing up to `s` independent one-word accesses per bank per cycle.
    Inlane4,
    /// ISRF4 plus cross-lane access: a dedicated index network (fully
    /// connected crossbar) and SRF-side network ports (Figure 8(c)).
    CrossLane,
}

impl SrfVariant {
    /// All variants in increasing hardware order.
    pub const ALL: [SrfVariant; 4] = [
        SrfVariant::Sequential,
        SrfVariant::Inlane1,
        SrfVariant::Inlane4,
        SrfVariant::CrossLane,
    ];

    /// The variant matching a machine configuration's SRF capabilities.
    pub fn for_machine(m: &MachineConfig) -> SrfVariant {
        match &m.srf.indexed {
            None => SrfVariant::Sequential,
            Some(idx) => {
                if idx.crosslane {
                    SrfVariant::CrossLane
                } else if idx.inlane_words_per_cycle > 1 {
                    SrfVariant::Inlane4
                } else {
                    SrfVariant::Inlane1
                }
            }
        }
    }
}

/// Physical organization of the SRF SRAM (Figure 6/7).
///
/// The paper's 128 KB example: 8 banks of 16 KB, each split into 4
/// sub-arrays of 4 KB organized as 128 rows x 256 columns, with a 2:1
/// column mux for the 128-bit sequential block access and an additional 8:1
/// mux path for 32-bit indexed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrfGeometry {
    /// Number of banks (= lanes).
    pub banks: usize,
    /// Sub-arrays per bank (`s`).
    pub subarrays_per_bank: usize,
    /// Rows per sub-array.
    pub rows: usize,
    /// Columns (bitlines) per sub-array.
    pub cols: usize,
    /// Word width in bits.
    pub word_bits: usize,
    /// Words per sequential block access per bank (`m`).
    pub seq_access_words: usize,
}

impl SrfGeometry {
    /// The paper's 128 KB, 8-bank, 4-sub-array geometry.
    pub fn paper_default() -> Self {
        SrfGeometry {
            banks: 8,
            subarrays_per_bank: 4,
            rows: 128,
            cols: 256,
            word_bits: 32,
            seq_access_words: 4,
        }
    }

    /// Derive a geometry from an [`SrfConfig`], keeping sub-arrays near the
    /// paper's 2:1 column-mux aspect ratio.
    ///
    /// The sub-array is sized so that `rows * cols = capacity_bits /
    /// (banks * subarrays)` with `cols = 2 * seq_access_bits` when possible
    /// (matching the hierarchical-bitline floorplan of Figure 6).
    pub fn from_config(srf: &SrfConfig, lanes: usize) -> Self {
        let word_bits = 32usize;
        let bank_bits = srf.bank_words(lanes) * word_bits;
        let sub_bits = bank_bits / srf.subarrays;
        let seq_bits = srf.words_per_seq_access * word_bits;
        // Prefer twice the access width (2:1 column mux); fall back to a
        // square-ish array for tiny capacities.
        let mut cols = 2 * seq_bits;
        while cols > 1 && sub_bits / cols == 0 {
            cols /= 2;
        }
        let rows = (sub_bits / cols).max(1);
        SrfGeometry {
            banks: lanes,
            subarrays_per_bank: srf.subarrays,
            rows,
            cols,
            word_bits,
            seq_access_words: srf.words_per_seq_access,
        }
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.banks * self.subarrays_per_bank * self.rows * self.cols
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bits() / 8
    }

    /// Bits transferred by one sequential block access in one bank.
    pub fn seq_access_bits(&self) -> usize {
        self.seq_access_words * self.word_bits
    }

    /// Column-mux degree for indexed (single-word) access: how many columns
    /// share one output bit when reading a single word from a sub-array.
    pub fn indexed_mux_degree(&self) -> usize {
        (self.cols / self.word_bits).max(1)
    }

    /// Column-mux degree for the sequential block-access path.
    pub fn seq_mux_degree(&self) -> usize {
        (self.cols / self.seq_access_bits()).max(1)
    }

    /// Address bits needed to select a word within a bank.
    pub fn bank_addr_bits(&self) -> u32 {
        let words = (self.subarrays_per_bank * self.rows * self.cols / self.word_bits).max(2);
        (words as f64).log2().ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::{ConfigName, MachineConfig};

    #[test]
    fn paper_geometry_is_128kb() {
        let g = SrfGeometry::paper_default();
        assert_eq!(g.capacity_bytes(), 128 * 1024);
        assert_eq!(g.seq_access_bits(), 128);
        assert_eq!(g.indexed_mux_degree(), 8, "8:1 mux per Figure 7");
        assert_eq!(g.seq_mux_degree(), 2);
        assert_eq!(g.bank_addr_bits(), 12); // 4096 words per bank
    }

    #[test]
    fn from_config_matches_paper_default() {
        let m = MachineConfig::preset(ConfigName::Isrf4);
        let g = SrfGeometry::from_config(&m.srf, m.lanes);
        assert_eq!(g, SrfGeometry::paper_default());
    }

    #[test]
    fn from_config_small_capacity_does_not_panic() {
        let mut srf = isrf_core::config::SrfConfig::sequential();
        srf.capacity_bytes = 1024;
        let g = SrfGeometry::from_config(&srf, 8);
        assert!(g.rows >= 1 && g.cols >= 1);
        assert_eq!(g.capacity_bytes(), 1024);
    }

    #[test]
    fn variant_for_machine() {
        assert_eq!(
            SrfVariant::for_machine(&MachineConfig::preset(ConfigName::Base)),
            SrfVariant::Sequential
        );
        assert_eq!(
            SrfVariant::for_machine(&MachineConfig::preset(ConfigName::Cache)),
            SrfVariant::Sequential
        );
        // Both evaluation ISRF configs include cross-lane support.
        assert_eq!(
            SrfVariant::for_machine(&MachineConfig::preset(ConfigName::Isrf1)),
            SrfVariant::CrossLane
        );
        let mut m = MachineConfig::preset(ConfigName::Isrf4);
        m.srf.indexed.as_mut().unwrap().crosslane = false;
        assert_eq!(SrfVariant::for_machine(&m), SrfVariant::Inlane4);
        m.srf.indexed.as_mut().unwrap().inlane_words_per_cycle = 1;
        assert_eq!(SrfVariant::for_machine(&m), SrfVariant::Inlane1);
    }
}
