//! Cacti-style SRAM area and energy model for stream register files.
//!
//! Section 4.6 of the paper estimates the hardware cost of indexed SRF
//! access "using a modified version of the Cacti 3.0 models and custom
//! floorplans": 11% extra SRF area for ISRF1 (per-bank row decoders), 18%
//! for ISRF4 (adds per-sub-array predecoders, 8:1 column muxes and address
//! busses) and 22% with cross-lane indexing (adds the index network), which
//! corresponds to 1.5%–3% of the die of a typical stream processor. Indexed
//! single-word accesses cost roughly 4x the per-word energy of sequential
//! block accesses (~0.1 nJ), still an order of magnitude below the ~5 nJ of
//! an off-chip DRAM access.
//!
//! This crate rebuilds that model at the same level of abstraction: it
//! counts the physical structures each SRF variant adds (decoders,
//! predecoders, column muxes, address busses, crossbars) and sizes them
//! with 0.13 µm technology constants. The constants are documented in
//! [`TechParams`]; the *ratios* between variants — the paper's actual
//! claims — follow from structure counts, not from constant tuning.
//!
//! # Example
//!
//! ```
//! use isrf_sram::{AreaModel, SrfGeometry, SrfVariant};
//!
//! let geom = SrfGeometry::paper_default();
//! let model = AreaModel::default();
//! let overhead = model.overhead_vs_sequential(&geom, SrfVariant::Inlane4);
//! assert!(overhead > 0.10 && overhead < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod geometry;
pub mod timing;

pub use area::{AreaBreakdown, AreaModel, TechParams};
pub use energy::{EnergyModel, EnergyParams};
pub use geometry::{SrfGeometry, SrfVariant};
pub use timing::{DelayParams, TimingModel};
