//! SRF access energy model (Section 4.5/4.6).
//!
//! The paper reports that an indexed single-word access consumes roughly 4x
//! the per-word energy of a sequential block access — about 0.1 nJ at
//! 0.13 µm — because the full row is activated and column-multiplexed down
//! to one word instead of four. That is still an order of magnitude below
//! the ~5 nJ of an off-chip DRAM access, which is why trading DRAM traffic
//! for indexed SRF traffic wins.
//!
//! The model splits an access into row activation (wordline + bitline swing
//! across all columns of the sub-array), sensing, and output drive, and
//! amortizes the row energy over the words actually delivered.

use isrf_core::stats::RunStats;

use crate::geometry::SrfGeometry;

/// Energy constants, in nanojoules, for a 0.13 µm implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Energy to activate one sub-array row: wordline swing plus bitline
    /// precharge/discharge across all columns.
    pub row_activation_nj: f64,
    /// Sense amplifier energy per word sensed.
    pub sense_per_word_nj: f64,
    /// Output/global-bitline drive energy per word delivered.
    pub output_per_word_nj: f64,
    /// Extra energy per word crossing the inter-lane network (cross-lane
    /// accesses only).
    pub network_per_word_nj: f64,
    /// Energy of an off-chip DRAM access (per access, ~5 nJ in the paper).
    pub dram_access_nj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            row_activation_nj: 0.080,
            sense_per_word_nj: 0.006,
            output_per_word_nj: 0.008,
            network_per_word_nj: 0.020,
            dram_access_nj: 5.0,
        }
    }
}

/// The energy model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyModel {
    /// Energy constants.
    pub params: EnergyParams,
}

impl EnergyModel {
    /// Build a model with explicit constants.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// Energy per word of a sequential block access (`m` words share one
    /// row activation), in nJ.
    pub fn seq_word_nj(&self, geom: &SrfGeometry) -> f64 {
        let p = &self.params;
        p.row_activation_nj / geom.seq_access_words as f64
            + p.sense_per_word_nj
            + p.output_per_word_nj
    }

    /// Energy of one in-lane indexed single-word access, in nJ.
    pub fn indexed_word_nj(&self, _geom: &SrfGeometry) -> f64 {
        let p = &self.params;
        p.row_activation_nj + p.sense_per_word_nj + p.output_per_word_nj
    }

    /// Energy of one cross-lane indexed access (adds network transfer).
    pub fn crosslane_word_nj(&self, geom: &SrfGeometry) -> f64 {
        self.indexed_word_nj(geom) + self.params.network_per_word_nj
    }

    /// Energy of one off-chip DRAM access, in nJ.
    pub fn dram_access_nj(&self) -> f64 {
        self.params.dram_access_nj
    }

    /// Ratio of indexed to sequential per-word energy (the paper's "~4x").
    pub fn indexed_over_seq(&self, geom: &SrfGeometry) -> f64 {
        self.indexed_word_nj(geom) / self.seq_word_nj(geom)
    }

    /// Estimate the data-movement energy of a simulated run, in nJ:
    /// SRF traffic priced per access class plus one DRAM access per
    /// off-chip word. This is the paper's energy argument made
    /// quantitative — trading DRAM traffic for (4x costlier) indexed SRF
    /// traffic wins by an order of magnitude per access.
    pub fn run_energy_nj(&self, geom: &SrfGeometry, stats: &RunStats) -> f64 {
        let srf = stats.srf.seq_words as f64 * self.seq_word_nj(geom)
            + stats.srf.inlane_words as f64 * self.indexed_word_nj(geom)
            + stats.srf.crosslane_words as f64 * self.crosslane_word_nj(geom);
        let dram_words = (stats.mem.total() / 4) as f64;
        srf + dram_words * self.params.dram_access_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (EnergyModel, SrfGeometry) {
        (EnergyModel::default(), SrfGeometry::paper_default())
    }

    #[test]
    fn indexed_access_is_about_a_tenth_of_a_nanojoule() {
        let (m, g) = model();
        let e = m.indexed_word_nj(&g);
        assert!(
            (0.08..=0.12).contains(&e),
            "indexed access {e:.3} nJ vs paper ~0.1"
        );
    }

    #[test]
    fn indexed_is_roughly_four_times_sequential() {
        let (m, g) = model();
        let r = m.indexed_over_seq(&g);
        assert!((2.5..=4.5).contains(&r), "ratio {r:.2} vs paper ~4x");
    }

    #[test]
    fn dram_is_an_order_of_magnitude_above_indexed() {
        let (m, g) = model();
        assert!(m.dram_access_nj() / m.indexed_word_nj(&g) > 10.0);
    }

    #[test]
    fn crosslane_costs_more_than_inlane() {
        let (m, g) = model();
        assert!(m.crosslane_word_nj(&g) > m.indexed_word_nj(&g));
    }

    #[test]
    fn run_energy_prices_dram_dominantly() {
        let (m, g) = model();
        let mut isrf = RunStats::default();
        isrf.srf.inlane_words = 160; // Rijndael-style: lookups in the SRF
        isrf.mem.bytes_read = 64; // only the block itself moves off-chip
        let mut base = RunStats::default();
        base.mem.bytes_read = 64 + 160 * 4; // lookups go to DRAM instead
        let e_isrf = m.run_energy_nj(&g, &isrf);
        let e_base = m.run_energy_nj(&g, &base);
        assert!(
            e_base / e_isrf > 5.0,
            "DRAM-bound baseline burns much more: {e_base:.1} vs {e_isrf:.1} nJ"
        );
    }

    #[test]
    fn wider_seq_access_amortizes_row_energy() {
        let (m, mut g) = model();
        let narrow = m.seq_word_nj(&g);
        g.seq_access_words = 8;
        assert!(m.seq_word_nj(&g) < narrow);
    }
}
