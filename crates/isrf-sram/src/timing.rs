//! SRAM access-time model.
//!
//! Section 4 argues the indexed designs leave the *sequential* access path
//! untouched ("there is no adverse impact in terms of performance and
//! power for applications that do not require indexed SRF accesses"): the
//! 4-word block access still bypasses the extra 8:1 column mux. The
//! indexed path adds one mux stage and per-sub-array predecode, which is
//! why Table 3 gives indexed accesses one extra pipeline stage (4 cycles
//! in-lane vs. 3 sequential).
//!
//! This module sizes those paths with a simple Horowitz-style delay sum —
//! decode, wordline, bitline, sense, column mux, output — in 0.13 µm
//! constants, and checks the pipeline-stage arithmetic against Table 3.

use crate::geometry::{SrfGeometry, SrfVariant};

/// Delay constants in nanoseconds for a 0.13 µm process.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayParams {
    /// Predecode + row decode logic (fixed gate chain).
    pub decode_ns: f64,
    /// Wordline RC per row driven (scales with columns).
    pub wordline_per_col_ns: f64,
    /// Bitline discharge per row on the line (scales with rows).
    pub bitline_per_row_ns: f64,
    /// Sense amplifier resolution.
    pub sense_ns: f64,
    /// One column-mux level.
    pub colmux_level_ns: f64,
    /// Global bitline / output drive.
    pub output_ns: f64,
    /// Extra address distribution to a per-sub-array decoder (indexed
    /// variants route addresses further).
    pub addr_route_ns: f64,
}

impl Default for DelayParams {
    fn default() -> Self {
        DelayParams {
            decode_ns: 0.20,
            wordline_per_col_ns: 0.0009,
            bitline_per_row_ns: 0.0016,
            sense_ns: 0.15,
            colmux_level_ns: 0.06,
            output_ns: 0.12,
            addr_route_ns: 0.12,
        }
    }
}

/// The timing model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingModel {
    /// Delay constants.
    pub params: DelayParams,
}

impl TimingModel {
    /// Build a model with explicit constants.
    pub fn new(params: DelayParams) -> Self {
        TimingModel { params }
    }

    fn array_ns(&self, geom: &SrfGeometry) -> f64 {
        let p = &self.params;
        p.decode_ns
            + p.wordline_per_col_ns * geom.cols as f64
            + p.bitline_per_row_ns * geom.rows as f64
            + p.sense_ns
    }

    /// Access time of the wide sequential block path, in ns. Identical on
    /// every variant: the extra indexed structures are bypassed.
    pub fn sequential_access_ns(&self, geom: &SrfGeometry, _variant: SrfVariant) -> f64 {
        let p = &self.params;
        let seq_levels = (geom.seq_mux_degree() as f64).log2().max(1.0);
        self.array_ns(geom) + seq_levels * p.colmux_level_ns + p.output_ns
    }

    /// Access time of the single-word indexed path, in ns.
    ///
    /// # Panics
    ///
    /// Panics when called for [`SrfVariant::Sequential`], which has no
    /// indexed path.
    pub fn indexed_access_ns(&self, geom: &SrfGeometry, variant: SrfVariant) -> f64 {
        assert!(
            variant != SrfVariant::Sequential,
            "sequential SRFs have no indexed path"
        );
        let p = &self.params;
        let idx_levels = (geom.indexed_mux_degree() as f64).log2().max(1.0);
        self.array_ns(geom) + idx_levels * p.colmux_level_ns + p.output_ns + p.addr_route_ns
    }

    /// Pipeline stages at `clock_ghz` for each path (the Table 3 latency
    /// arithmetic: sequential 3 cycles, in-lane indexed 4).
    pub fn pipeline_stages(
        &self,
        geom: &SrfGeometry,
        variant: SrfVariant,
        clock_ghz: f64,
    ) -> (u32, u32) {
        let period = 1.0 / clock_ghz;
        // One stage each for address transport and data return, plus the
        // array access itself.
        let seq = (self.sequential_access_ns(geom, variant) / period).ceil() as u32 + 2;
        let idx = if variant == SrfVariant::Sequential {
            0
        } else {
            (self.indexed_access_ns(geom, variant) / period).ceil() as u32 + 2
        };
        (seq, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (TimingModel, SrfGeometry) {
        (TimingModel::default(), SrfGeometry::paper_default())
    }

    #[test]
    fn sequential_path_is_variant_independent() {
        let (m, g) = model();
        let base = m.sequential_access_ns(&g, SrfVariant::Sequential);
        for v in [
            SrfVariant::Inlane1,
            SrfVariant::Inlane4,
            SrfVariant::CrossLane,
        ] {
            assert_eq!(m.sequential_access_ns(&g, v), base);
        }
    }

    #[test]
    fn indexed_path_is_slower_but_same_array() {
        let (m, g) = model();
        let seq = m.sequential_access_ns(&g, SrfVariant::Inlane4);
        let idx = m.indexed_access_ns(&g, SrfVariant::Inlane4);
        assert!(idx > seq, "extra mux level + address routing");
        assert!(idx < 1.5 * seq, "but the array dominates");
    }

    #[test]
    fn table3_pipeline_stages() {
        let (m, g) = model();
        let (seq, idx) = m.pipeline_stages(&g, SrfVariant::Inlane4, 1.0);
        assert_eq!(seq, 3, "Table 3: sequential SRF latency 3 cycles");
        assert_eq!(idx, 4, "Table 3: in-lane indexed latency 4 cycles");
    }

    #[test]
    fn access_times_are_sub_nanosecond_at_130nm() {
        let (m, g) = model();
        let t = m.sequential_access_ns(&g, SrfVariant::Sequential);
        assert!(t > 0.4 && t < 1.0, "{t} ns");
    }

    #[test]
    #[should_panic(expected = "no indexed path")]
    fn sequential_variant_has_no_indexed_path() {
        let (m, g) = model();
        m.indexed_access_ns(&g, SrfVariant::Sequential);
    }
}
