//! Property tests for the memory system: traffic accounting, functional
//! gather/scatter consistency, and bandwidth bounds.

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_mem::{AddrPattern, MemorySystem};
use proptest::prelude::*;

fn finish(sys: &mut MemorySystem, id: isrf_mem::TransferId) -> u64 {
    let start = sys.now();
    while !sys.is_complete(id) {
        sys.tick();
        assert!(sys.now() - start < 1_000_000, "transfer stuck");
    }
    sys.now() - start
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Demand traffic counts exactly 4 bytes per word, reads round-trip
    /// memory contents, and serve time respects the bandwidth bound.
    #[test]
    fn gather_roundtrip_and_accounting(
        addrs in prop::collection::vec(0u32..100_000, 1..300),
        burst in 1u32..8,
    ) {
        let mut cfg = MachineConfig::preset(ConfigName::Base);
        cfg.dram.burst_words = burst;
        let mut sys = MemorySystem::new(&cfg);
        for (i, &a) in addrs.iter().enumerate() {
            sys.memory_mut().write(a, i as u32 ^ 0xABCD);
        }
        let (id, data) = sys.start_read(&AddrPattern::Indexed(addrs.clone()), false);
        // Functional: last write to each address wins.
        for (i, &a) in addrs.iter().enumerate() {
            let last = addrs.iter().rposition(|&x| x == a).unwrap();
            prop_assert_eq!(data[i], last as u32 ^ 0xABCD);
        }
        let cycles = finish(&mut sys, id);
        prop_assert_eq!(sys.traffic().bytes_read, addrs.len() as u64 * 4);
        // Bandwidth bound: at most ~2.285 demand words per cycle.
        let serve = cycles.saturating_sub(cfg.dram.latency_cycles as u64).max(1);
        prop_assert!(addrs.len() as f64 / serve as f64 <= 2.4);
    }

    /// Scatter then contiguous read-back returns what was written.
    #[test]
    fn scatter_then_readback(
        base in 0u32..1000,
        data in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut sys = MemorySystem::new(&cfg);
        let n = data.len() as u32;
        let addrs: Vec<u32> = (0..n).map(|i| base + i * 3).collect();
        let w = sys.start_write(&AddrPattern::Indexed(addrs.clone()), &data, false);
        finish(&mut sys, w);
        let (r, got) = sys.start_read(&AddrPattern::Indexed(addrs), false);
        prop_assert_eq!(got, data);
        finish(&mut sys, r);
        prop_assert_eq!(sys.traffic().bytes_written, n as u64 * 4);
    }

    /// Cached re-reads never increase DRAM read traffic beyond the
    /// footprint's worth of line fills, and cache hits are real.
    #[test]
    fn cache_traffic_bounded_by_footprint(
        words in 1u32..2000,
        passes in 2u32..4,
    ) {
        let cfg = MachineConfig::preset(ConfigName::Cache);
        let mut sys = MemorySystem::new(&cfg);
        for _ in 0..passes {
            let (id, _) = sys.start_read(&AddrPattern::contiguous(0, words), true);
            finish(&mut sys, id);
        }
        let line = cfg.cache.as_ref().unwrap().line_words as u64;
        let lines = (words as u64).div_ceil(line);
        prop_assert_eq!(sys.traffic().bytes_read, lines * line * 4);
        prop_assert!(sys.cache().unwrap().hits() > 0);
    }

    /// Transfer-slab lifecycle over a random batch of transfers:
    /// sequential raw ids, deterministic (completion-time, id) pop order,
    /// full drain at program end, and slot reuse only after retirement.
    #[test]
    fn slab_id_reuse_completion_order_and_drain(
        lens in prop::collection::vec(0u32..400, 1..24),
        pop_each_cycle in any::<bool>(),
    ) {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut sys = MemorySystem::new(&cfg);
        let mut live: Vec<isrf_mem::TransferId> = Vec::new();
        let mut popped: Vec<isrf_mem::TransferId> = Vec::new();
        let mut max_slot = 0usize;
        for (i, &len) in lens.iter().enumerate() {
            let (id, data) = sys.start_read(&AddrPattern::contiguous(i as u32 * 512, len), false);
            prop_assert_eq!(id.raw(), i as u64, "raw ids are sequential");
            prop_assert_eq!(data.len(), len as usize);
            // A live slot is never handed to two transfers at once.
            for l in &live {
                prop_assert_ne!(l.slot(), id.slot(), "slot reused while live");
            }
            live.push(id);
            max_slot = max_slot.max(id.slot());
            // Interleave some service so early transfers retire and donate
            // their slots to later ones.
            for _ in 0..150 {
                sys.tick();
                if pop_each_cycle {
                    while let Some(done) = sys.pop_ready() {
                        live.retain(|l| l != &done);
                        popped.push(done);
                    }
                }
            }
        }
        // Program end: run the channel dry and drain every completion.
        let mut guard = 0;
        while sys.busy() {
            sys.tick();
            guard += 1;
            prop_assert!(guard < 2_000_000, "memory system never went idle");
        }
        sys.tick(); // transfers completing exactly at the last busy cycle
        while let Some(done) = sys.pop_ready() {
            live.retain(|l| l != &done);
            popped.push(done);
        }
        prop_assert!(live.is_empty(), "drain left transfers unpopped: {live:?}");
        prop_assert_eq!(popped.len(), lens.len());
        prop_assert!(sys.pop_ready().is_none());
        prop_assert!(sys.next_completion_time().is_none());
        // Every popped id reads complete forever, even after slot reuse.
        for id in &popped {
            prop_assert!(sys.is_complete(*id));
        }
        // Slot reuse actually happened whenever transfers outnumbered the
        // peak number of concurrently live ones.
        prop_assert!(max_slot < lens.len());
    }

    /// Popping mid-flight never reorders completions: ids always come out
    /// sorted by the cycle their data became usable, ties by issue order.
    #[test]
    fn pop_order_is_completion_then_issue(
        lens in prop::collection::vec(0u32..120, 2..12),
    ) {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut sys = MemorySystem::new(&cfg);
        let ids: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| sys.start_read(&AddrPattern::contiguous(i as u32 * 256, len), false).0)
            .collect();
        let mut order: Vec<(u64, u64)> = Vec::new(); // (pop cycle, raw id)
        let mut guard = 0;
        while order.len() < ids.len() {
            sys.tick();
            while let Some(done) = sys.pop_ready() {
                order.push((sys.now(), done.raw()));
            }
            guard += 1;
            prop_assert!(guard < 1_000_000, "transfers stuck");
        }
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(&order, &sorted, "pops left (cycle, id) order");
    }
}
