//! Property tests for the memory system: traffic accounting, functional
//! gather/scatter consistency, and bandwidth bounds.

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_mem::{AddrPattern, MemorySystem};
use proptest::prelude::*;

fn finish(sys: &mut MemorySystem, id: isrf_mem::TransferId) -> u64 {
    let start = sys.now();
    while !sys.is_complete(id) {
        sys.tick();
        assert!(sys.now() - start < 1_000_000, "transfer stuck");
    }
    sys.now() - start
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Demand traffic counts exactly 4 bytes per word, reads round-trip
    /// memory contents, and serve time respects the bandwidth bound.
    #[test]
    fn gather_roundtrip_and_accounting(
        addrs in prop::collection::vec(0u32..100_000, 1..300),
        burst in 1u32..8,
    ) {
        let mut cfg = MachineConfig::preset(ConfigName::Base);
        cfg.dram.burst_words = burst;
        let mut sys = MemorySystem::new(&cfg);
        for (i, &a) in addrs.iter().enumerate() {
            sys.memory_mut().write(a, i as u32 ^ 0xABCD);
        }
        let (id, data) = sys.start_read(AddrPattern::Indexed(addrs.clone()), false);
        // Functional: last write to each address wins.
        for (i, &a) in addrs.iter().enumerate() {
            let last = addrs.iter().rposition(|&x| x == a).unwrap();
            prop_assert_eq!(data[i], last as u32 ^ 0xABCD);
        }
        let cycles = finish(&mut sys, id);
        prop_assert_eq!(sys.traffic().bytes_read, addrs.len() as u64 * 4);
        // Bandwidth bound: at most ~2.285 demand words per cycle.
        let serve = cycles.saturating_sub(cfg.dram.latency_cycles as u64).max(1);
        prop_assert!(addrs.len() as f64 / serve as f64 <= 2.4);
    }

    /// Scatter then contiguous read-back returns what was written.
    #[test]
    fn scatter_then_readback(
        base in 0u32..1000,
        data in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut sys = MemorySystem::new(&cfg);
        let n = data.len() as u32;
        let addrs: Vec<u32> = (0..n).map(|i| base + i * 3).collect();
        let w = sys.start_write(AddrPattern::Indexed(addrs.clone()), &data, false);
        finish(&mut sys, w);
        let (r, got) = sys.start_read(AddrPattern::Indexed(addrs), false);
        prop_assert_eq!(got, data);
        finish(&mut sys, r);
        prop_assert_eq!(sys.traffic().bytes_written, n as u64 * 4);
    }

    /// Cached re-reads never increase DRAM read traffic beyond the
    /// footprint's worth of line fills, and cache hits are real.
    #[test]
    fn cache_traffic_bounded_by_footprint(
        words in 1u32..2000,
        passes in 2u32..4,
    ) {
        let cfg = MachineConfig::preset(ConfigName::Cache);
        let mut sys = MemorySystem::new(&cfg);
        for _ in 0..passes {
            let (id, _) = sys.start_read(AddrPattern::contiguous(0, words), true);
            finish(&mut sys, id);
        }
        let line = cfg.cache.as_ref().unwrap().line_words as u64;
        let lines = (words as u64).div_ceil(line);
        prop_assert_eq!(sys.traffic().bytes_read, lines * line * 4);
        prop_assert!(sys.cache().unwrap().hits() > 0);
    }
}
