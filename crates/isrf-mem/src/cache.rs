//! The on-chip vector cache of the `Cache` configuration (Table 3).
//!
//! Organization: 128 KB, 4-way set associative, 4 independent banks,
//! 2-word (8-byte) lines, LRU replacement, write-allocate/write-back.
//! Short lines follow the vector-cache studies the paper cites (\[22, 23\]):
//! with little spatial locality in gathered streams, long lines waste
//! bandwidth.
//!
//! The cache is a *timing and traffic* model: data lives in
//! [`crate::memory::Memory`]; the cache tracks only tags, so a probe
//! reports hit/miss and any dirty eviction, which the memory system turns
//! into DRAM traffic.

use isrf_core::config::CacheConfig;
use isrf_core::snap::{Dec, Enc, SnapError};

/// Result of one word-granularity cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// The word was present (no DRAM fill needed).
    pub hit: bool,
    /// A dirty line was evicted (DRAM writeback needed).
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// Tag-only simulation of the banked, set-associative vector cache.
#[derive(Debug, Clone)]
pub struct VectorCache {
    line_words: usize,
    banks: usize,
    sets_per_bank: usize,
    ways: usize,
    /// `sets[bank][set][way]`.
    sets: Vec<Vec<Vec<Line>>>,
    use_counter: u64,
    hits: u64,
    misses: u64,
}

impl VectorCache {
    /// Build a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero-sized parameters (use
    /// [`isrf_core::MachineConfig::validate`] first).
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets_per_bank = cfg.sets_per_bank();
        assert!(sets_per_bank > 0, "cache must have at least one set");
        VectorCache {
            line_words: cfg.line_words,
            banks: cfg.banks,
            sets_per_bank,
            ways: cfg.associativity,
            sets: vec![vec![vec![Line::default(); cfg.associativity]; sets_per_bank]; cfg.banks],
            use_counter: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Words per line.
    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Set associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total probes observed so far (hits + misses).
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over all probes (0 if never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Which bank serves `word_addr` (line-interleaved across banks).
    pub fn bank_of(&self, word_addr: u32) -> usize {
        let line = word_addr as usize / self.line_words;
        line % self.banks
    }

    /// Probe (and update) the cache for a word access.
    ///
    /// On a miss the line is allocated (write-allocate for stores), evicting
    /// the LRU way; the result reports whether the victim was dirty.
    pub fn probe(&mut self, word_addr: u32, write: bool) -> ProbeResult {
        let line_addr = word_addr as usize / self.line_words;
        let bank = line_addr % self.banks;
        let set_idx = (line_addr / self.banks) % self.sets_per_bank;
        let tag = (line_addr / self.banks / self.sets_per_bank) as u32;
        self.use_counter += 1;
        let counter = self.use_counter;
        let set = &mut self.sets[bank][set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = counter;
            line.dirty |= write;
            self.hits += 1;
            return ProbeResult {
                hit: true,
                writeback: false,
            };
        }

        // Miss: evict LRU (invalid lines have lru 0 and win).
        self.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache sets are non-empty");
        let writeback = victim.valid && victim.dirty;
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: counter,
        };
        ProbeResult {
            hit: false,
            writeback,
        }
    }

    /// Serialize the dynamic cache state (tags, LRU stamps, statistics).
    /// Geometry is not written: the decoder's cache must already be built
    /// from the same configuration.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.u64(self.use_counter);
        e.u64(self.hits);
        e.u64(self.misses);
        e.usize(self.banks);
        e.usize(self.sets_per_bank);
        e.usize(self.ways);
        for bank in &self.sets {
            for set in bank {
                for line in set {
                    e.u32(line.tag);
                    e.bool(line.valid);
                    e.bool(line.dirty);
                    e.u64(line.lru);
                }
            }
        }
    }

    /// Overwrite the dynamic cache state from [`VectorCache::encode_state`]
    /// bytes. Fails with [`SnapError::Mismatch`] when the recorded geometry
    /// differs from this cache's.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        let use_counter = d.u64()?;
        let hits = d.u64()?;
        let misses = d.u64()?;
        let (banks, sets_per_bank, ways) = (d.usize()?, d.usize()?, d.usize()?);
        if (banks, sets_per_bank, ways) != (self.banks, self.sets_per_bank, self.ways) {
            return Err(SnapError::Mismatch(format!(
                "cache geometry {banks}x{sets_per_bank}x{ways} != \
                 {}x{}x{}",
                self.banks, self.sets_per_bank, self.ways
            )));
        }
        self.use_counter = use_counter;
        self.hits = hits;
        self.misses = misses;
        for bank in &mut self.sets {
            for set in bank {
                for line in set {
                    line.tag = d.u32()?;
                    line.valid = d.bool()?;
                    line.dirty = d.bool()?;
                    line.lru = d.u64()?;
                }
            }
        }
        Ok(())
    }

    /// Invalidate all contents and reset statistics.
    pub fn flush(&mut self) {
        for bank in &mut self.sets {
            for set in bank {
                for line in set {
                    *line = Line::default();
                }
            }
        }
        self.use_counter = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> VectorCache {
        // 4 banks * 2 sets * 2 ways * 2-word lines = 32 words.
        VectorCache::new(&CacheConfig {
            capacity_bytes: 32 * 4,
            associativity: 2,
            banks: 4,
            line_words: 2,
            peak_gbytes_per_sec: 16.0,
            hit_latency: 8,
        })
    }

    #[test]
    fn paper_cache_geometry() {
        let c = VectorCache::new(&CacheConfig::default());
        assert_eq!(c.sets_per_bank, 1024);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = small_cache();
        assert!(!c.probe(0, false).hit);
        assert!(c.probe(0, false).hit);
        assert!(c.probe(1, false).hit, "same 2-word line");
        assert!(!c.probe(2, false).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn line_interleaving_across_banks() {
        let c = small_cache();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(1), 0);
        assert_eq!(c.bank_of(2), 1);
        assert_eq!(c.bank_of(8), 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // All these map to bank 0, set 0: line addresses 0, 8, 16 (stride
        // banks*sets*line_words = 16 words).
        c.probe(0, false);
        c.probe(16, false);
        c.probe(0, false); // touch 0 again so 16 is LRU
        c.probe(32, false); // evicts 16
        assert!(c.probe(0, false).hit);
        assert!(!c.probe(16, false).hit, "16 was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.probe(0, true); // dirty
        c.probe(16, false);
        let r = c.probe(32, false); // evicts line 0 (LRU, dirty)
        assert!(!r.hit);
        assert!(r.writeback);
        // Clean eviction does not write back.
        let r = c.probe(48, false);
        assert!(!r.writeback);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache();
        c.probe(0, false);
        c.probe(0, true); // hit, now dirty
        c.probe(16, false);
        let r = c.probe(32, false); // evict line 0
        assert!(r.writeback);
    }

    #[test]
    fn flush_resets() {
        let mut c = small_cache();
        c.probe(0, true);
        c.flush();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.probe(0, false).hit);
        assert!(!c.probe(32, false).writeback, "dirty state cleared");
    }

    #[test]
    fn hit_rate() {
        let mut c = small_cache();
        assert_eq!(c.hit_rate(), 0.0);
        c.probe(0, false);
        c.probe(0, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
