//! The stream memory controller: whole-stream transfers under bandwidth
//! limits.
//!
//! Stream memory operations move entire streams between the SRF and
//! off-chip memory ("a single instruction loads or stores an entire
//! stream"). [`MemorySystem`] accepts such transfers, serves their words
//! cycle by cycle under the DRAM (and, on the `Cache` configuration, cache)
//! bandwidth budgets using leaky-bucket credits, and reports completion so
//! the stream-level program executor can overlap transfers with kernel
//! execution.
//!
//! Data moves functionally at request time (the stream-level executor
//! enforces stream dependences, so no transfer observes a racing one);
//! *timing* — and the off-chip-traffic accounting behind Figure 11 —
//! resolves over subsequent [`MemorySystem::tick`] calls.
//!
//! In-flight transfers live in a slab: a [`TransferId`] carries both a
//! stable sequential id (stamped into traces) and its slab slot, so the
//! machine model keeps O(1) side tables without hashing, and completions
//! drain through [`MemorySystem::pop_ready`] in deterministic
//! (completion-time, id) order instead of a per-cycle scan.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use isrf_core::config::MachineConfig;
use isrf_core::snap::{read_sections, write_sections, Dec, Enc, SnapError};
use isrf_core::stats::MemTraffic;
use isrf_core::word::WORD_BYTES;
use isrf_core::Word;

use isrf_trace::{TraceEvent, Tracer};

use crate::cache::VectorCache;
use crate::memory::Memory;

/// Handle for an in-flight or completed stream transfer.
///
/// Ids are handed out sequentially ([`TransferId::raw`] is the number
/// trace events carry); internally each id also pins the slab slot the
/// transfer occupies while live, which [`TransferId::slot`] exposes for
/// O(1) side tables. Slots are reused after [`MemorySystem::pop_ready`]
/// retires a transfer; a generation counter keeps stale ids harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId {
    raw: u64,
    slot: u32,
    gen: u32,
}

impl TransferId {
    /// The underlying sequential id, as stamped into trace events.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// The slab slot this transfer occupies while live. Stable from
    /// issue until [`MemorySystem::pop_ready`] returns the id; reused
    /// afterwards, so index side tables only for live transfers.
    pub fn slot(self) -> usize {
        self.slot as usize
    }
}

/// Address pattern of a stream memory operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrPattern {
    /// `words` consecutive words from `base`.
    Contiguous {
        /// First word address.
        base: u32,
        /// Number of words.
        words: u32,
    },
    /// `records` records of `record_words` words, record `i` starting at
    /// `base + i * stride_words`.
    Strided {
        /// First word address of record 0.
        base: u32,
        /// Words per record.
        record_words: u32,
        /// Word distance between record starts.
        stride_words: u32,
        /// Number of records.
        records: u32,
    },
    /// Arbitrary word addresses (gather/scatter).
    Indexed(
        /// Word address of each element, in stream order.
        Vec<u32>,
    ),
}

impl AddrPattern {
    /// Convenience constructor for [`AddrPattern::Contiguous`].
    pub fn contiguous(base: u32, words: u32) -> Self {
        AddrPattern::Contiguous { base, words }
    }

    /// Convenience constructor for [`AddrPattern::Strided`].
    pub fn strided(base: u32, record_words: u32, stride_words: u32, records: u32) -> Self {
        AddrPattern::Strided {
            base,
            record_words,
            stride_words,
            records,
        }
    }

    /// Number of words the pattern touches.
    pub fn len(&self) -> usize {
        match self {
            AddrPattern::Contiguous { words, .. } => *words as usize,
            AddrPattern::Strided {
                record_words,
                records,
                ..
            } => (*record_words as usize) * (*records as usize),
            AddrPattern::Indexed(addrs) => addrs.len(),
        }
    }

    /// True for a zero-length pattern.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th word address of the pattern, in stream order.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn addr_at(&self, i: usize) -> u32 {
        match self {
            AddrPattern::Contiguous { base, words } => {
                assert!(i < *words as usize);
                base + i as u32
            }
            AddrPattern::Strided {
                base,
                record_words,
                stride_words,
                records,
            } => {
                assert!(i < (*record_words as usize) * (*records as usize));
                let (r, w) = (i as u32 / record_words, i as u32 % record_words);
                base + r * stride_words + w
            }
            AddrPattern::Indexed(addrs) => addrs[i],
        }
    }

    /// Materialize the word addresses in stream order.
    pub fn to_addrs(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.addr_at(i)).collect()
    }
}

/// The timing-side view of a pattern: address generation without a
/// materialized `Vec<u32>` for the regular (contiguous/strided) shapes.
#[derive(Debug)]
enum PatternCursor {
    Contiguous {
        base: u32,
    },
    Strided {
        base: u32,
        record_words: u32,
        stride_words: u32,
    },
    Indexed(Vec<u32>),
}

impl PatternCursor {
    fn of(p: &AddrPattern) -> Self {
        match p {
            AddrPattern::Contiguous { base, .. } => PatternCursor::Contiguous { base: *base },
            AddrPattern::Strided {
                base,
                record_words,
                stride_words,
                ..
            } => PatternCursor::Strided {
                base: *base,
                record_words: *record_words,
                stride_words: *stride_words,
            },
            AddrPattern::Indexed(addrs) => PatternCursor::Indexed(addrs.clone()),
        }
    }

    fn at(&self, i: usize) -> u32 {
        match self {
            PatternCursor::Contiguous { base } => base + i as u32,
            PatternCursor::Strided {
                base,
                record_words,
                stride_words,
            } => {
                let (r, w) = (i as u32 / record_words, i as u32 % record_words);
                base + r * stride_words + w
            }
            PatternCursor::Indexed(addrs) => addrs[i],
        }
    }
}

#[derive(Debug)]
struct Inflight {
    id: TransferId,
    pattern: PatternCursor,
    len: usize,
    cursor: usize,
    write: bool,
    cacheable: bool,
    touched_dram: bool,
    /// DRAM burst most recently opened by this transfer (burst-aligned
    /// address / burst_words); words within it are bandwidth-free.
    last_burst: Option<u32>,
}

/// Lifecycle of a slab slot's current occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Words still being served by the channel.
    Serving,
    /// All words served; waiting out the access latency until
    /// `complete_at`.
    Latency {
        /// First cycle at which the data is usable.
        complete_at: u64,
    },
    /// Popped via [`MemorySystem::pop_ready`]; the slot is on the free
    /// list.
    Retired,
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    state: SlotState,
}

/// The stream memory system: functional memory + DRAM channel (+ optional
/// vector cache) + transfer scheduling.
#[derive(Debug)]
pub struct MemorySystem {
    now: u64,
    mem: Memory,
    dram_words_per_cycle: f64,
    dram_credit: f64,
    dram_latency: u64,
    burst_words: u32,
    cache: Option<VectorCache>,
    cache_words_per_cycle: f64,
    cache_credit: f64,
    cache_hit_latency: u64,
    inflight: VecDeque<Inflight>,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Transfers waiting out their latency (or already usable but not yet
    /// popped), ordered by (completion cycle, sequential id).
    ready: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
    next_id: u64,
    traffic: MemTraffic,
    served_last_tick: u64,
}

impl MemorySystem {
    /// Build the memory system for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let cache = cfg.cache.as_ref().map(VectorCache::new);
        MemorySystem {
            now: 0,
            mem: Memory::new(),
            dram_words_per_cycle: cfg.dram.words_per_cycle(cfg.clock_ghz),
            dram_credit: 0.0,
            dram_latency: cfg.dram.latency_cycles as u64,
            burst_words: cfg.dram.burst_words.max(1),
            cache_words_per_cycle: cfg
                .cache
                .as_ref()
                .map(|c| c.words_per_cycle(cfg.clock_ghz))
                .unwrap_or(0.0),
            cache_credit: 0.0,
            cache_hit_latency: cfg
                .cache
                .as_ref()
                .map(|c| c.hit_latency as u64)
                .unwrap_or(0),
            cache,
            inflight: VecDeque::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            ready: BinaryHeap::new(),
            next_id: 0,
            traffic: MemTraffic::default(),
            served_last_tick: 0,
        }
    }

    /// Current cycle count of this memory system's clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The functional memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the functional memory (for laying out benchmark
    /// data before a run).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Off-chip traffic accumulated so far.
    pub fn traffic(&self) -> MemTraffic {
        self.traffic
    }

    /// The vector cache, when configured.
    pub fn cache(&self) -> Option<&VectorCache> {
        self.cache.as_ref()
    }

    /// True while any transfer is still being served or waiting out its
    /// latency.
    pub fn busy(&self) -> bool {
        !self.inflight.is_empty() || self.ready.iter().any(|&Reverse((t, ..))| t > self.now)
    }

    fn alloc_id(&mut self) -> TransferId {
        let raw = self.next_id;
        self.next_id += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                entry.gen = entry.gen.wrapping_add(1);
                entry.state = SlotState::Serving;
                s
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Serving,
                });
                (self.slots.len() - 1) as u32
            }
        };
        TransferId {
            raw,
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    fn finish_serving(&mut self, id: TransferId, complete_at: u64) {
        self.slots[id.slot as usize].state = SlotState::Latency { complete_at };
        self.ready
            .push(Reverse((complete_at, id.raw, id.slot, id.gen)));
    }

    /// Begin a stream load. Data is returned immediately for functional
    /// use; the transfer is *timing*-complete only once
    /// [`MemorySystem::is_complete`] reports so.
    ///
    /// `cacheable` marks streams with temporal-locality potential; the
    /// paper's `Cache` configuration caches only those to avoid pollution.
    /// The flag is ignored when no cache is configured.
    pub fn start_read(
        &mut self,
        pattern: &AddrPattern,
        cacheable: bool,
    ) -> (TransferId, Vec<Word>) {
        let data = match pattern {
            AddrPattern::Contiguous { base, words } => self.mem.read_block(*base, *words as usize),
            AddrPattern::Indexed(addrs) => self.mem.gather(addrs),
            strided => {
                let n = strided.len();
                (0..n).map(|i| self.mem.read(strided.addr_at(i))).collect()
            }
        };
        let id = self.enqueue(pattern, false, cacheable);
        (id, data)
    }

    /// Begin a stream store of `data` following `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the pattern length.
    pub fn start_write(
        &mut self,
        pattern: &AddrPattern,
        data: &[Word],
        cacheable: bool,
    ) -> TransferId {
        assert_eq!(pattern.len(), data.len(), "store data length mismatch");
        match pattern {
            AddrPattern::Contiguous { base, .. } => self.mem.write_block(*base, data),
            AddrPattern::Indexed(addrs) => self.mem.scatter(addrs, data),
            strided => {
                for (i, &w) in data.iter().enumerate() {
                    self.mem.write(strided.addr_at(i), w);
                }
            }
        }
        self.enqueue(pattern, true, cacheable)
    }

    /// Begin a gather whose address list is handed over by value — the
    /// simulator's dynamic-index path builds the list afresh each issue,
    /// so moving it into the transfer avoids a second copy.
    pub fn start_gather(&mut self, addrs: Vec<u32>, cacheable: bool) -> (TransferId, Vec<Word>) {
        let data = self.mem.gather(&addrs);
        let len = addrs.len();
        let id = self.enqueue_cursor(PatternCursor::Indexed(addrs), len, false, cacheable);
        (id, data)
    }

    /// Begin a scatter of `data` to an address list handed over by value.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from `addrs.len()`.
    pub fn start_scatter(&mut self, addrs: Vec<u32>, data: &[Word], cacheable: bool) -> TransferId {
        assert_eq!(addrs.len(), data.len(), "scatter data length mismatch");
        self.mem.scatter(&addrs, data);
        let len = addrs.len();
        self.enqueue_cursor(PatternCursor::Indexed(addrs), len, true, cacheable)
    }

    fn enqueue(&mut self, pattern: &AddrPattern, write: bool, cacheable: bool) -> TransferId {
        self.enqueue_cursor(PatternCursor::of(pattern), pattern.len(), write, cacheable)
    }

    fn enqueue_cursor(
        &mut self,
        pattern: PatternCursor,
        len: usize,
        write: bool,
        cacheable: bool,
    ) -> TransferId {
        let id = self.alloc_id();
        if len == 0 {
            self.finish_serving(id, self.now);
            return id;
        }
        self.inflight.push_back(Inflight {
            id,
            pattern,
            len,
            cursor: 0,
            write,
            cacheable: cacheable && self.cache.is_some(),
            touched_dram: false,
            last_burst: None,
        });
        id
    }

    /// True once transfer `id`'s data is usable (all words served and the
    /// access latency has elapsed). Transfers retired via
    /// [`MemorySystem::pop_ready`] stay complete forever.
    pub fn is_complete(&self, id: TransferId) -> bool {
        let slot = &self.slots[id.slot as usize];
        if slot.gen != id.gen {
            // The slot moved on to a younger transfer: `id` was retired.
            return true;
        }
        match slot.state {
            SlotState::Serving => false,
            SlotState::Latency { complete_at } => self.now >= complete_at,
            SlotState::Retired => true,
        }
    }

    /// Pop the next transfer whose data became usable, retiring it and
    /// freeing its slab slot for reuse. Transfers drain in deterministic
    /// (completion cycle, issue id) order. Returns `None` when nothing
    /// (more) is ready this cycle.
    pub fn pop_ready(&mut self) -> Option<TransferId> {
        let &Reverse((complete_at, raw, slot, gen)) = self.ready.peek()?;
        if complete_at > self.now {
            return None;
        }
        self.ready.pop();
        let entry = &mut self.slots[slot as usize];
        debug_assert_eq!(entry.gen, gen, "ready heap out of sync with slab");
        entry.state = SlotState::Retired;
        self.free_slots.push(slot);
        Some(TransferId { raw, slot, gen })
    }

    /// The cycle at which the earliest outstanding (not yet popped)
    /// transfer completes, if any. Drives the machine's quiescence
    /// fast-forward.
    pub fn next_completion_time(&self) -> Option<u64> {
        self.ready.peek().map(|&Reverse((t, ..))| t)
    }

    /// Number of transfers still being served word-by-word.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// Words served by the most recent [`MemorySystem::tick`] (used by the
    /// machine model to account SRF-port occupancy of memory transfers).
    pub fn words_served_last_tick(&self) -> u64 {
        self.served_last_tick
    }

    /// Advance one cycle: replenish bandwidth credits and serve words of
    /// in-flight transfers round-robin.
    pub fn tick(&mut self) {
        self.tick_traced(&mut Tracer::Null);
    }

    /// Advance `cycles` cycles during which no transfer is being served
    /// (the quiescence fast-forward). Bit-identical to calling
    /// [`MemorySystem::tick`] `cycles` times while the channel is idle:
    /// credits saturate through the same per-cycle add-then-clamp.
    ///
    /// # Panics
    ///
    /// Debug-asserts that no transfer is in service.
    pub fn advance_idle(&mut self, cycles: u64) {
        debug_assert!(
            self.inflight.is_empty(),
            "advance_idle with transfers in service"
        );
        if cycles == 0 {
            return;
        }
        self.served_last_tick = 0;
        let dram_cap = (self.dram_words_per_cycle * 4.0).max(4.0);
        let cache_cap = (self.cache_words_per_cycle * 4.0).max(4.0);
        for _ in 0..cycles {
            self.dram_credit = (self.dram_credit + self.dram_words_per_cycle).min(dram_cap);
            if self.cache.is_some() {
                self.cache_credit = (self.cache_credit + self.cache_words_per_cycle).min(cache_cap);
            }
        }
        self.now += cycles;
    }

    /// [`MemorySystem::tick`], emitting transfer/cache events into
    /// `tracer`.
    pub fn tick_traced(&mut self, tracer: &mut Tracer) {
        self.now += 1;
        self.served_last_tick = 0;
        // Leaky-bucket credits: accumulate up to a small burst so that
        // fractional words/cycle average out, without unbounded bursts
        // after idle periods.
        let dram_cap = (self.dram_words_per_cycle * 4.0).max(4.0);
        self.dram_credit = (self.dram_credit + self.dram_words_per_cycle).min(dram_cap);
        if self.cache.is_some() {
            let cache_cap = (self.cache_words_per_cycle * 4.0).max(4.0);
            self.cache_credit = (self.cache_credit + self.cache_words_per_cycle).min(cache_cap);
        }

        // Serve as many words as credits allow, rotating across transfers.
        // The extra rotation makes the marginal (fractional-credit) word
        // alternate between transfers instead of always favoring the first.
        if self.inflight.len() > 1 {
            let t = self.inflight.pop_front().expect("len > 1");
            self.inflight.push_back(t);
        }
        'serve: loop {
            let mut progressed = false;
            for _ in 0..self.inflight.len() {
                let Some(mut t) = self.inflight.pop_front() else {
                    break 'serve;
                };
                if self.serve_one(&mut t, tracer) {
                    progressed = true;
                }
                if t.cursor >= t.len {
                    let latency = if t.touched_dram || !t.cacheable {
                        self.dram_latency
                    } else {
                        self.cache_hit_latency
                    };
                    self.finish_serving(t.id, self.now + latency);
                    tracer.emit(self.now, TraceEvent::TransferServed { id: t.id.raw() });
                } else {
                    self.inflight.push_back(t);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Serialize every piece of dynamic state — clock, credits, functional
    /// memory, cache contents, the in-flight transfer slab and the ready
    /// queue — as a section list (`sys`, `data`, and `cache` when
    /// configured). Rate and latency parameters are not written; they are
    /// rebuilt from the configuration by [`MemorySystem::new`].
    pub fn encode_state(&self) -> Vec<u8> {
        let mut sys = Enc::new();
        sys.u64(self.now);
        sys.f64(self.dram_credit);
        sys.f64(self.cache_credit);
        sys.u64(self.served_last_tick);
        sys.u64(self.next_id);
        self.traffic.encode_state(&mut sys);
        sys.usize(self.inflight.len());
        for t in &self.inflight {
            sys.u64(t.id.raw);
            sys.u32(t.id.slot);
            sys.u32(t.id.gen);
            match &t.pattern {
                PatternCursor::Contiguous { base } => {
                    sys.u8(0);
                    sys.u32(*base);
                }
                PatternCursor::Strided {
                    base,
                    record_words,
                    stride_words,
                } => {
                    sys.u8(1);
                    sys.u32(*base);
                    sys.u32(*record_words);
                    sys.u32(*stride_words);
                }
                PatternCursor::Indexed(addrs) => {
                    sys.u8(2);
                    sys.usize(addrs.len());
                    for &a in addrs {
                        sys.u32(a);
                    }
                }
            }
            sys.usize(t.len);
            sys.usize(t.cursor);
            sys.bool(t.write);
            sys.bool(t.cacheable);
            sys.bool(t.touched_dram);
            match t.last_burst {
                Some(b) => {
                    sys.bool(true);
                    sys.u32(b);
                }
                None => sys.bool(false),
            }
        }
        sys.usize(self.slots.len());
        for s in &self.slots {
            sys.u32(s.gen);
            match s.state {
                SlotState::Serving => sys.u8(0),
                SlotState::Latency { complete_at } => {
                    sys.u8(1);
                    sys.u64(complete_at);
                }
                SlotState::Retired => sys.u8(2),
            }
        }
        sys.usize(self.free_slots.len());
        for &s in &self.free_slots {
            sys.u32(s);
        }
        // The heap iterates in arbitrary order; sort for deterministic
        // bytes (the ordering is recovered by re-pushing on decode).
        let mut ready: Vec<(u64, u64, u32, u32)> = self.ready.iter().map(|&Reverse(t)| t).collect();
        ready.sort_unstable();
        sys.usize(ready.len());
        for (at, raw, slot, gen) in ready {
            sys.u64(at);
            sys.u64(raw);
            sys.u32(slot);
            sys.u32(gen);
        }

        let mut secs: Vec<(&str, Vec<u8>)> = vec![("sys", sys.into_bytes())];
        secs.push(("data", self.mem.encode_state()));
        if let Some(cache) = &self.cache {
            let mut ce = Enc::new();
            cache.encode_state(&mut ce);
            secs.push(("cache", ce.into_bytes()));
        }
        let mut e = Enc::new();
        write_sections(&mut e, &secs);
        e.into_bytes()
    }

    /// Overwrite this system's dynamic state from
    /// [`MemorySystem::encode_state`] bytes. `self` must have been built
    /// for the same machine configuration (in particular, cache presence
    /// and geometry must match).
    pub fn decode_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let secs = read_sections(bytes)?;
        let find = |name: &str| secs.iter().find(|s| s.name == name);
        let sys_sec = find("sys")
            .ok_or_else(|| SnapError::Mismatch("memory-system snapshot missing sys".into()))?;
        let data_sec = find("data")
            .ok_or_else(|| SnapError::Mismatch("memory-system snapshot missing data".into()))?;
        match (find("cache"), &mut self.cache) {
            (Some(sec), Some(cache)) => {
                let mut cd = Dec::new(&sec.bytes);
                cache.decode_state(&mut cd)?;
                cd.finish()?;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(SnapError::Mismatch(
                    "snapshot has a cache but this configuration does not".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(SnapError::Mismatch(
                    "this configuration has a cache but the snapshot does not".into(),
                ))
            }
        }
        self.mem.decode_state(&data_sec.bytes)?;

        let mut d = Dec::new(&sys_sec.bytes);
        self.now = d.u64()?;
        self.dram_credit = d.f64()?;
        self.cache_credit = d.f64()?;
        self.served_last_tick = d.u64()?;
        self.next_id = d.u64()?;
        self.traffic = MemTraffic::decode_state(&mut d)?;
        let n_inflight = d.usize()?;
        self.inflight.clear();
        for _ in 0..n_inflight {
            let id = TransferId {
                raw: d.u64()?,
                slot: d.u32()?,
                gen: d.u32()?,
            };
            let pattern = match d.u8()? {
                0 => PatternCursor::Contiguous { base: d.u32()? },
                1 => PatternCursor::Strided {
                    base: d.u32()?,
                    record_words: d.u32()?,
                    stride_words: d.u32()?,
                },
                2 => {
                    let n = d.usize()?;
                    let mut addrs = Vec::with_capacity(n);
                    for _ in 0..n {
                        addrs.push(d.u32()?);
                    }
                    PatternCursor::Indexed(addrs)
                }
                t => {
                    return Err(SnapError::Mismatch(format!("bad pattern-cursor tag {t}")));
                }
            };
            let len = d.usize()?;
            let cursor = d.usize()?;
            let write = d.bool()?;
            let cacheable = d.bool()?;
            let touched_dram = d.bool()?;
            let last_burst = if d.bool()? { Some(d.u32()?) } else { None };
            self.inflight.push_back(Inflight {
                id,
                pattern,
                len,
                cursor,
                write,
                cacheable,
                touched_dram,
                last_burst,
            });
        }
        let n_slots = d.usize()?;
        self.slots.clear();
        for _ in 0..n_slots {
            let gen = d.u32()?;
            let state = match d.u8()? {
                0 => SlotState::Serving,
                1 => SlotState::Latency {
                    complete_at: d.u64()?,
                },
                2 => SlotState::Retired,
                t => return Err(SnapError::Mismatch(format!("bad slot-state tag {t}"))),
            };
            self.slots.push(Slot { gen, state });
        }
        let n_free = d.usize()?;
        self.free_slots.clear();
        for _ in 0..n_free {
            self.free_slots.push(d.u32()?);
        }
        let n_ready = d.usize()?;
        self.ready.clear();
        for _ in 0..n_ready {
            let entry = (d.u64()?, d.u64()?, d.u32()?, d.u32()?);
            self.ready.push(Reverse(entry));
        }
        d.finish()
    }

    /// Try to serve the next word of `t`; returns whether a word was served.
    fn serve_one(&mut self, t: &mut Inflight, tracer: &mut Tracer) -> bool {
        if t.cursor >= t.len {
            return false;
        }
        let addr = t.pattern.at(t.cursor);
        if t.cacheable {
            // Gate on both budgets: a hit consumes only cache bandwidth,
            // but a miss charges DRAM for the fill, and the DRAM debt must
            // be paid down before further cacheable words are served.
            if self.cache_credit <= 0.0 || self.dram_credit <= 0.0 {
                return false;
            }
            // Charge the cache access; a miss additionally charges DRAM for
            // the line fill (and writeback). Credits may go briefly
            // negative, which preserves long-run bandwidth while avoiding a
            // probe-then-rollback dance on the stateful cache.
            self.cache_credit -= 1.0;
            let cache = self.cache.as_mut().expect("cacheable implies cache");
            let line_words = cache.line_words() as u64;
            let probe = cache.probe(addr, t.write);
            if tracer.enabled() {
                tracer.emit(
                    self.now,
                    TraceEvent::CacheProbe {
                        hit: probe.hit,
                        writeback: probe.writeback,
                    },
                );
            }
            if probe.hit {
                self.traffic.cache_hit_bytes += WORD_BYTES;
            } else {
                // A line fill is one DRAM transaction: it costs at least a
                // full burst of bandwidth even for a short line.
                let fill_cost = (self.burst_words as u64).max(line_words) as f64;
                t.touched_dram = true;
                self.dram_credit -= fill_cost;
                self.traffic.bytes_read += line_words * WORD_BYTES;
                if probe.writeback {
                    self.dram_credit -= fill_cost;
                    self.traffic.bytes_written += line_words * WORD_BYTES;
                }
            }
        } else {
            // Burst accounting: opening a new burst pays `burst_words` of
            // bandwidth; further words of the same burst ride along free.
            let burst = addr / self.burst_words;
            if t.last_burst == Some(burst) {
                // Same burst: no additional bandwidth.
            } else {
                if self.dram_credit <= 0.0 {
                    return false;
                }
                self.dram_credit -= self.burst_words as f64;
                t.last_burst = Some(burst);
            }
            t.touched_dram = true;
            if t.write {
                self.traffic.bytes_written += WORD_BYTES;
            } else {
                self.traffic.bytes_read += WORD_BYTES;
            }
        }
        t.cursor += 1;
        self.served_last_tick += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::ConfigName;

    fn base_system() -> MemorySystem {
        MemorySystem::new(&MachineConfig::preset(ConfigName::Base))
    }

    fn burst4_system() -> MemorySystem {
        let mut cfg = MachineConfig::preset(ConfigName::Base);
        cfg.dram.burst_words = 4;
        MemorySystem::new(&cfg)
    }

    fn cache_system() -> MemorySystem {
        MemorySystem::new(&MachineConfig::preset(ConfigName::Cache))
    }

    fn run_until_complete(sys: &mut MemorySystem, id: TransferId, max: u64) -> u64 {
        let start = sys.now();
        while !sys.is_complete(id) {
            sys.tick();
            assert!(
                sys.now() - start < max,
                "transfer did not complete in {max} cycles"
            );
        }
        sys.now() - start
    }

    #[test]
    fn pattern_lengths_and_addresses() {
        assert_eq!(AddrPattern::contiguous(10, 3).to_addrs(), [10, 11, 12]);
        assert_eq!(
            AddrPattern::strided(0, 2, 10, 3).to_addrs(),
            [0, 1, 10, 11, 20, 21]
        );
        let g = AddrPattern::Indexed(vec![5, 1, 5]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.addr_at(2), 5);
        assert!(AddrPattern::contiguous(0, 0).is_empty());
    }

    #[test]
    fn read_returns_data_immediately_and_times_later() {
        let mut sys = base_system();
        sys.memory_mut().write_block(100, &[7, 8, 9]);
        let (id, data) = sys.start_read(&AddrPattern::contiguous(100, 3), false);
        assert_eq!(data, [7, 8, 9]);
        assert!(!sys.is_complete(id));
        let cycles = run_until_complete(&mut sys, id, 1000);
        // 3 words at ~2.285 words/cycle, plus 100 cycles latency.
        assert!((100..110).contains(&cycles), "took {cycles}");
        assert_eq!(sys.traffic().bytes_read, 12);
    }

    #[test]
    fn bandwidth_limits_long_transfers() {
        let mut sys = base_system();
        let words = 8192u32;
        let (id, _) = sys.start_read(&AddrPattern::contiguous(0, words), false);
        let cycles = run_until_complete(&mut sys, id, 100_000);
        let ideal = words as f64 / 2.285;
        let serve = cycles as f64 - 100.0; // subtract latency
        assert!(
            (serve - ideal).abs() / ideal < 0.02,
            "served {words} words in {serve} cycles, ideal {ideal:.0}"
        );
    }

    #[test]
    fn concurrent_transfers_share_bandwidth_fairly() {
        let mut sys = base_system();
        let (a, _) = sys.start_read(&AddrPattern::contiguous(0, 2000), false);
        let (b, _) = sys.start_read(&AddrPattern::contiguous(10_000, 2000), false);
        let ca = run_until_complete(&mut sys, a, 100_000);
        // Both should finish at roughly the same time (round-robin).
        let cb_extra = run_until_complete(&mut sys, b, 100_000);
        assert!(cb_extra < 20, "b finished {cb_extra} cycles after a");
        let ideal = 4000.0 / 2.285;
        assert!((ca as f64 - 100.0 - ideal).abs() / ideal < 0.05);
    }

    #[test]
    fn write_updates_memory_and_counts_traffic() {
        let mut sys = base_system();
        let id = sys.start_write(&AddrPattern::contiguous(50, 2), &[1, 2], false);
        assert_eq!(sys.memory().read(51), 2);
        run_until_complete(&mut sys, id, 1000);
        assert_eq!(sys.traffic().bytes_written, 8);
    }

    #[test]
    fn gather_traffic_counts_every_word() {
        let mut sys = base_system();
        // Gathering the same address repeatedly still pays per-word DRAM
        // traffic (this is exactly the replication cost the ISRF removes).
        let (id, _) = sys.start_read(&AddrPattern::Indexed(vec![7; 64]), false);
        run_until_complete(&mut sys, id, 10_000);
        assert_eq!(sys.traffic().bytes_read, 64 * 4);
    }

    #[test]
    fn zero_length_transfer_completes_immediately() {
        let mut sys = base_system();
        let (id, data) = sys.start_read(&AddrPattern::contiguous(0, 0), false);
        assert!(data.is_empty());
        assert!(sys.is_complete(id));
        assert!(!sys.busy());
    }

    #[test]
    fn cache_hits_eliminate_dram_traffic() {
        let mut sys = cache_system();
        let (a, _) = sys.start_read(&AddrPattern::contiguous(0, 128), true);
        run_until_complete(&mut sys, a, 10_000);
        let after_first = sys.traffic();
        // 128 words / 2-word lines = 64 misses = 512 bytes read; the second
        // word of each line hits (256 bytes of hits).
        assert_eq!(after_first.bytes_read, 512);
        assert_eq!(after_first.cache_hit_bytes, 256);
        let (b, _) = sys.start_read(&AddrPattern::contiguous(0, 128), true);
        run_until_complete(&mut sys, b, 10_000);
        let after_second = sys.traffic();
        assert_eq!(after_second.bytes_read, 512, "second pass hits in cache");
        assert_eq!(after_second.cache_hit_bytes, 256 + 512);
    }

    #[test]
    fn cached_rereads_complete_faster_than_dram() {
        let mut sys = cache_system();
        let (a, _) = sys.start_read(&AddrPattern::contiguous(0, 512), true);
        let cold = run_until_complete(&mut sys, a, 100_000);
        let (b, _) = sys.start_read(&AddrPattern::contiguous(0, 512), true);
        let warm = run_until_complete(&mut sys, b, 100_000);
        assert!(
            warm * 2 < cold,
            "warm reread ({warm}) should be much faster than cold ({cold})"
        );
    }

    #[test]
    fn non_cacheable_streams_bypass_cache() {
        let mut sys = cache_system();
        let (a, _) = sys.start_read(&AddrPattern::contiguous(0, 64), false);
        run_until_complete(&mut sys, a, 10_000);
        assert_eq!(
            sys.cache().unwrap().hits() + sys.cache().unwrap().misses(),
            0
        );
        assert_eq!(sys.traffic().bytes_read, 256);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut sys = cache_system();
        // Write 128 KB + one extra line through the cache, then evict by
        // streaming a second 128 KB region: evictions of dirty lines must
        // produce write traffic.
        let words = 32 * 1024u32;
        let id = sys.start_write(
            &AddrPattern::contiguous(0, words),
            &vec![1; words as usize],
            true,
        );
        run_until_complete(&mut sys, id, 1_000_000);
        let (id2, _) = sys.start_read(&AddrPattern::contiguous(words, words), true);
        run_until_complete(&mut sys, id2, 1_000_000);
        // All dirty lines evicted: 128 KB written back.
        assert_eq!(sys.traffic().bytes_written, words as u64 * 4);
    }

    #[test]
    fn random_gathers_pay_burst_granularity() {
        let mut sys = burst4_system();
        // 512 random words, each in its own burst: 512 bursts x 4 words of
        // bandwidth = 2048 credits, ~4x slower than a contiguous load.
        let addrs: Vec<u32> = (0..512u32).map(|i| i * 16).collect();
        let (g, _) = sys.start_read(&AddrPattern::Indexed(addrs), false);
        let gather_cycles = run_until_complete(&mut sys, g, 100_000);
        let mut sys2 = burst4_system();
        let (c, _) = sys2.start_read(&AddrPattern::contiguous(0, 512), false);
        let seq_cycles = run_until_complete(&mut sys2, c, 100_000);
        let gather_serve = gather_cycles as f64 - 100.0;
        let seq_serve = seq_cycles as f64 - 100.0;
        assert!(
            gather_serve / seq_serve > 3.5 && gather_serve / seq_serve < 4.5,
            "gather {gather_serve} vs seq {seq_serve}"
        );
        // Demand traffic still counts words, not bursts (Figure 11 metric).
        assert_eq!(sys.traffic().bytes_read, 512 * 4);
    }

    #[test]
    fn strided_two_word_records_pay_half_burst_waste() {
        let mut sys = burst4_system();
        // 2-word records at stride 64: each record opens a fresh burst.
        let (g, _) = sys.start_read(&AddrPattern::strided(0, 2, 64, 256), false);
        let cycles = run_until_complete(&mut sys, g, 100_000);
        let serve = cycles as f64 - 100.0;
        let ideal = 512.0 / 2.285; // if bandwidth were perfectly used
        assert!(
            serve / ideal > 1.8 && serve / ideal < 2.2,
            "strided served in {serve}, ideal {ideal}"
        );
    }

    #[test]
    fn busy_reflects_latency_tail() {
        let mut sys = base_system();
        let (_, _) = sys.start_read(&AddrPattern::contiguous(0, 1), false);
        sys.tick(); // word served this cycle
        assert!(sys.busy(), "still waiting out DRAM latency");
        for _ in 0..200 {
            sys.tick();
        }
        assert!(!sys.busy());
    }

    #[test]
    fn pop_ready_drains_in_completion_order_and_reuses_slots() {
        let mut sys = base_system();
        // Short transfer completes before the long one despite issuing
        // second; pop order follows completion time, not issue order.
        let (long, _) = sys.start_read(&AddrPattern::contiguous(0, 2000), false);
        let (short, _) = sys.start_read(&AddrPattern::contiguous(8000, 2), false);
        let mut popped = Vec::new();
        for _ in 0..10_000 {
            sys.tick();
            while let Some(id) = sys.pop_ready() {
                popped.push(id);
            }
            if popped.len() == 2 {
                break;
            }
        }
        assert_eq!(popped, [short, long]);
        assert!(!sys.busy());
        // Both slots are free again: the next two transfers reuse them
        // (in reverse-free order) with fresh raw ids.
        let used: Vec<usize> = popped.iter().map(|id| id.slot()).collect();
        let (c, _) = sys.start_read(&AddrPattern::contiguous(0, 1), false);
        let (d, _) = sys.start_read(&AddrPattern::contiguous(0, 1), false);
        assert_eq!(c.raw(), 2);
        assert_eq!(d.raw(), 3);
        let mut reused: Vec<usize> = vec![c.slot(), d.slot()];
        reused.sort_unstable();
        let mut used_sorted = used.clone();
        used_sorted.sort_unstable();
        assert_eq!(reused, used_sorted, "slots are reused after retirement");
        // Stale ids from before the reuse still read as complete.
        assert!(sys.is_complete(popped[0]));
        assert!(sys.is_complete(popped[1]));
        assert!(!sys.is_complete(c));
    }

    #[test]
    fn snapshot_mid_transfer_resumes_identically() {
        for make in [base_system as fn() -> MemorySystem, cache_system] {
            let mut straight = make();
            straight.memory_mut().write_block(0, &[9; 600]);
            let (_, _) = straight.start_read(&AddrPattern::contiguous(0, 500), true);
            let _ = straight.start_write(&AddrPattern::strided(4096, 2, 8, 50), &[3; 100], false);
            for _ in 0..40 {
                straight.tick();
            }
            // Snapshot mid-service and restore into a fresh same-config
            // system; ticking both onward must stay byte-identical.
            let snap = straight.encode_state();
            let mut resumed = make();
            resumed.decode_state(&snap).unwrap();
            assert_eq!(resumed.encode_state(), snap, "re-encode is stable");
            for _ in 0..400 {
                straight.tick();
                resumed.tick();
                assert_eq!(
                    straight.pop_ready(),
                    resumed.pop_ready(),
                    "completion order diverged"
                );
            }
            assert_eq!(straight.encode_state(), resumed.encode_state());
            assert_eq!(straight.traffic(), resumed.traffic());
        }
    }

    #[test]
    fn snapshot_rejects_cache_mismatch() {
        let with_cache = cache_system().encode_state();
        let mut plain = base_system();
        let err = plain.decode_state(&with_cache).unwrap_err();
        assert!(matches!(err, SnapError::Mismatch(_)), "{err}");
    }

    #[test]
    fn advance_idle_matches_ticking_while_idle() {
        let mut a = base_system();
        let mut b = base_system();
        // Desynchronize the credit state from its cap first.
        let (ia, _) = a.start_read(&AddrPattern::contiguous(0, 37), false);
        let (ib, _) = b.start_read(&AddrPattern::contiguous(0, 37), false);
        while a.inflight_count() > 0 {
            a.tick();
            b.tick();
        }
        for _ in 0..23 {
            a.tick();
        }
        b.advance_idle(23);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.is_complete(ia), b.is_complete(ib));
        // Subsequent service timing is identical: credits advanced the
        // same way on both systems.
        let (na, _) = a.start_read(&AddrPattern::contiguous(0, 555), false);
        let (nb, _) = b.start_read(&AddrPattern::contiguous(0, 555), false);
        let ca = run_until_complete(&mut a, na, 10_000);
        let cb = run_until_complete(&mut b, nb, 10_000);
        assert_eq!(ca, cb);
    }
}
