//! The stream memory controller: whole-stream transfers under bandwidth
//! limits.
//!
//! Stream memory operations move entire streams between the SRF and
//! off-chip memory ("a single instruction loads or stores an entire
//! stream"). [`MemorySystem`] accepts such transfers, serves their words
//! cycle by cycle under the DRAM (and, on the `Cache` configuration, cache)
//! bandwidth budgets using leaky-bucket credits, and reports completion so
//! the stream-level program executor can overlap transfers with kernel
//! execution.
//!
//! Data moves functionally at request time (the stream-level executor
//! enforces stream dependences, so no transfer observes a racing one);
//! *timing* — and the off-chip-traffic accounting behind Figure 11 —
//! resolves over subsequent [`MemorySystem::tick`] calls.

use std::collections::HashMap;
use std::collections::VecDeque;

use isrf_core::config::MachineConfig;
use isrf_core::stats::MemTraffic;
use isrf_core::word::WORD_BYTES;
use isrf_core::Word;

use isrf_trace::{TraceEvent, Tracer};

use crate::cache::VectorCache;
use crate::memory::Memory;

/// Handle for an in-flight or completed stream transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(u64);

impl TransferId {
    /// The underlying id, as stamped into trace events.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Address pattern of a stream memory operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrPattern {
    /// `words` consecutive words from `base`.
    Contiguous {
        /// First word address.
        base: u32,
        /// Number of words.
        words: u32,
    },
    /// `records` records of `record_words` words, record `i` starting at
    /// `base + i * stride_words`.
    Strided {
        /// First word address of record 0.
        base: u32,
        /// Words per record.
        record_words: u32,
        /// Word distance between record starts.
        stride_words: u32,
        /// Number of records.
        records: u32,
    },
    /// Arbitrary word addresses (gather/scatter).
    Indexed(
        /// Word address of each element, in stream order.
        Vec<u32>,
    ),
}

impl AddrPattern {
    /// Convenience constructor for [`AddrPattern::Contiguous`].
    pub fn contiguous(base: u32, words: u32) -> Self {
        AddrPattern::Contiguous { base, words }
    }

    /// Convenience constructor for [`AddrPattern::Strided`].
    pub fn strided(base: u32, record_words: u32, stride_words: u32, records: u32) -> Self {
        AddrPattern::Strided {
            base,
            record_words,
            stride_words,
            records,
        }
    }

    /// Number of words the pattern touches.
    pub fn len(&self) -> usize {
        match self {
            AddrPattern::Contiguous { words, .. } => *words as usize,
            AddrPattern::Strided {
                record_words,
                records,
                ..
            } => (*record_words as usize) * (*records as usize),
            AddrPattern::Indexed(addrs) => addrs.len(),
        }
    }

    /// True for a zero-length pattern.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the word addresses in stream order.
    pub fn to_addrs(&self) -> Vec<u32> {
        match self {
            AddrPattern::Contiguous { base, words } => (0..*words).map(|i| base + i).collect(),
            AddrPattern::Strided {
                base,
                record_words,
                stride_words,
                records,
            } => {
                let mut v = Vec::with_capacity(self.len());
                for r in 0..*records {
                    let start = base + r * stride_words;
                    v.extend((0..*record_words).map(|w| start + w));
                }
                v
            }
            AddrPattern::Indexed(addrs) => addrs.clone(),
        }
    }
}

#[derive(Debug)]
struct Inflight {
    id: TransferId,
    addrs: Vec<u32>,
    cursor: usize,
    write: bool,
    cacheable: bool,
    touched_dram: bool,
    /// DRAM burst most recently opened by this transfer (burst-aligned
    /// address / burst_words); words within it are bandwidth-free.
    last_burst: Option<u32>,
}

/// The stream memory system: functional memory + DRAM channel (+ optional
/// vector cache) + transfer scheduling.
#[derive(Debug)]
pub struct MemorySystem {
    now: u64,
    mem: Memory,
    dram_words_per_cycle: f64,
    dram_credit: f64,
    dram_latency: u64,
    burst_words: u32,
    cache: Option<VectorCache>,
    cache_words_per_cycle: f64,
    cache_credit: f64,
    cache_hit_latency: u64,
    inflight: VecDeque<Inflight>,
    /// Transfer id -> cycle at which it is complete (data usable).
    completion: HashMap<TransferId, u64>,
    next_id: u64,
    traffic: MemTraffic,
    served_last_tick: u64,
}

impl MemorySystem {
    /// Build the memory system for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let cache = cfg.cache.as_ref().map(VectorCache::new);
        MemorySystem {
            now: 0,
            mem: Memory::new(),
            dram_words_per_cycle: cfg.dram.words_per_cycle(cfg.clock_ghz),
            dram_credit: 0.0,
            dram_latency: cfg.dram.latency_cycles as u64,
            burst_words: cfg.dram.burst_words.max(1),
            cache_words_per_cycle: cfg
                .cache
                .as_ref()
                .map(|c| c.words_per_cycle(cfg.clock_ghz))
                .unwrap_or(0.0),
            cache_credit: 0.0,
            cache_hit_latency: cfg
                .cache
                .as_ref()
                .map(|c| c.hit_latency as u64)
                .unwrap_or(0),
            cache,
            inflight: VecDeque::new(),
            completion: HashMap::new(),
            next_id: 0,
            traffic: MemTraffic::default(),
            served_last_tick: 0,
        }
    }

    /// Current cycle count of this memory system's clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The functional memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the functional memory (for laying out benchmark
    /// data before a run).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Off-chip traffic accumulated so far.
    pub fn traffic(&self) -> MemTraffic {
        self.traffic
    }

    /// The vector cache, when configured.
    pub fn cache(&self) -> Option<&VectorCache> {
        self.cache.as_ref()
    }

    /// True while any transfer is still being served or waiting out its
    /// latency.
    pub fn busy(&self) -> bool {
        !self.inflight.is_empty() || self.completion.values().any(|&t| t > self.now)
    }

    fn alloc_id(&mut self) -> TransferId {
        let id = TransferId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Begin a stream load. Data is returned immediately for functional
    /// use; the transfer is *timing*-complete only once
    /// [`MemorySystem::is_complete`] reports so.
    ///
    /// `cacheable` marks streams with temporal-locality potential; the
    /// paper's `Cache` configuration caches only those to avoid pollution.
    /// The flag is ignored when no cache is configured.
    pub fn start_read(&mut self, pattern: AddrPattern, cacheable: bool) -> (TransferId, Vec<Word>) {
        let addrs = pattern.to_addrs();
        let data = self.mem.gather(&addrs);
        let id = self.enqueue(addrs, false, cacheable);
        (id, data)
    }

    /// Begin a stream store of `data` following `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the pattern length.
    pub fn start_write(
        &mut self,
        pattern: AddrPattern,
        data: &[Word],
        cacheable: bool,
    ) -> TransferId {
        let addrs = pattern.to_addrs();
        assert_eq!(addrs.len(), data.len(), "store data length mismatch");
        self.mem.scatter(&addrs, data);
        self.enqueue(addrs, true, cacheable)
    }

    fn enqueue(&mut self, addrs: Vec<u32>, write: bool, cacheable: bool) -> TransferId {
        let id = self.alloc_id();
        if addrs.is_empty() {
            self.completion.insert(id, self.now);
            return id;
        }
        self.inflight.push_back(Inflight {
            id,
            addrs,
            cursor: 0,
            write,
            cacheable: cacheable && self.cache.is_some(),
            touched_dram: false,
            last_burst: None,
        });
        id
    }

    /// True once transfer `id`'s data is usable (all words served and the
    /// access latency has elapsed).
    pub fn is_complete(&self, id: TransferId) -> bool {
        self.completion.get(&id).is_some_and(|&t| self.now >= t)
    }

    /// Words served by the most recent [`MemorySystem::tick`] (used by the
    /// machine model to account SRF-port occupancy of memory transfers).
    pub fn words_served_last_tick(&self) -> u64 {
        self.served_last_tick
    }

    /// Advance one cycle: replenish bandwidth credits and serve words of
    /// in-flight transfers round-robin.
    pub fn tick(&mut self) {
        self.tick_traced(&mut Tracer::Null);
    }

    /// [`MemorySystem::tick`], emitting transfer/cache events into
    /// `tracer`.
    pub fn tick_traced(&mut self, tracer: &mut Tracer) {
        self.now += 1;
        self.served_last_tick = 0;
        // Leaky-bucket credits: accumulate up to a small burst so that
        // fractional words/cycle average out, without unbounded bursts
        // after idle periods.
        let dram_cap = (self.dram_words_per_cycle * 4.0).max(4.0);
        self.dram_credit = (self.dram_credit + self.dram_words_per_cycle).min(dram_cap);
        if self.cache.is_some() {
            let cache_cap = (self.cache_words_per_cycle * 4.0).max(4.0);
            self.cache_credit = (self.cache_credit + self.cache_words_per_cycle).min(cache_cap);
        }

        // Serve as many words as credits allow, rotating across transfers.
        // The extra rotation makes the marginal (fractional-credit) word
        // alternate between transfers instead of always favoring the first.
        if self.inflight.len() > 1 {
            let t = self.inflight.pop_front().expect("len > 1");
            self.inflight.push_back(t);
        }
        'serve: loop {
            let mut progressed = false;
            for _ in 0..self.inflight.len() {
                let Some(mut t) = self.inflight.pop_front() else {
                    break 'serve;
                };
                if self.serve_one(&mut t, tracer) {
                    progressed = true;
                }
                if t.cursor >= t.addrs.len() {
                    let latency = if t.touched_dram || !t.cacheable {
                        self.dram_latency
                    } else {
                        self.cache_hit_latency
                    };
                    self.completion.insert(t.id, self.now + latency);
                    tracer.emit(self.now, TraceEvent::TransferServed { id: t.id.raw() });
                } else {
                    self.inflight.push_back(t);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Try to serve the next word of `t`; returns whether a word was served.
    fn serve_one(&mut self, t: &mut Inflight, tracer: &mut Tracer) -> bool {
        if t.cursor >= t.addrs.len() {
            return false;
        }
        let addr = t.addrs[t.cursor];
        if t.cacheable {
            // Gate on both budgets: a hit consumes only cache bandwidth,
            // but a miss charges DRAM for the fill, and the DRAM debt must
            // be paid down before further cacheable words are served.
            if self.cache_credit <= 0.0 || self.dram_credit <= 0.0 {
                return false;
            }
            // Charge the cache access; a miss additionally charges DRAM for
            // the line fill (and writeback). Credits may go briefly
            // negative, which preserves long-run bandwidth while avoiding a
            // probe-then-rollback dance on the stateful cache.
            self.cache_credit -= 1.0;
            let cache = self.cache.as_mut().expect("cacheable implies cache");
            let line_words = cache.line_words() as u64;
            let probe = cache.probe(addr, t.write);
            if tracer.enabled() {
                tracer.emit(
                    self.now,
                    TraceEvent::CacheProbe {
                        hit: probe.hit,
                        writeback: probe.writeback,
                    },
                );
            }
            if probe.hit {
                self.traffic.cache_hit_bytes += WORD_BYTES;
            } else {
                // A line fill is one DRAM transaction: it costs at least a
                // full burst of bandwidth even for a short line.
                let fill_cost = (self.burst_words as u64).max(line_words) as f64;
                t.touched_dram = true;
                self.dram_credit -= fill_cost;
                self.traffic.bytes_read += line_words * WORD_BYTES;
                if probe.writeback {
                    self.dram_credit -= fill_cost;
                    self.traffic.bytes_written += line_words * WORD_BYTES;
                }
            }
        } else {
            // Burst accounting: opening a new burst pays `burst_words` of
            // bandwidth; further words of the same burst ride along free.
            let burst = addr / self.burst_words;
            if t.last_burst == Some(burst) {
                // Same burst: no additional bandwidth.
            } else {
                if self.dram_credit <= 0.0 {
                    return false;
                }
                self.dram_credit -= self.burst_words as f64;
                t.last_burst = Some(burst);
            }
            t.touched_dram = true;
            if t.write {
                self.traffic.bytes_written += WORD_BYTES;
            } else {
                self.traffic.bytes_read += WORD_BYTES;
            }
        }
        t.cursor += 1;
        self.served_last_tick += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::ConfigName;

    fn base_system() -> MemorySystem {
        MemorySystem::new(&MachineConfig::preset(ConfigName::Base))
    }

    fn burst4_system() -> MemorySystem {
        let mut cfg = MachineConfig::preset(ConfigName::Base);
        cfg.dram.burst_words = 4;
        MemorySystem::new(&cfg)
    }

    fn cache_system() -> MemorySystem {
        MemorySystem::new(&MachineConfig::preset(ConfigName::Cache))
    }

    fn run_until_complete(sys: &mut MemorySystem, id: TransferId, max: u64) -> u64 {
        let start = sys.now();
        while !sys.is_complete(id) {
            sys.tick();
            assert!(
                sys.now() - start < max,
                "transfer did not complete in {max} cycles"
            );
        }
        sys.now() - start
    }

    #[test]
    fn pattern_lengths_and_addresses() {
        assert_eq!(AddrPattern::contiguous(10, 3).to_addrs(), [10, 11, 12]);
        assert_eq!(
            AddrPattern::strided(0, 2, 10, 3).to_addrs(),
            [0, 1, 10, 11, 20, 21]
        );
        let g = AddrPattern::Indexed(vec![5, 1, 5]);
        assert_eq!(g.len(), 3);
        assert!(AddrPattern::contiguous(0, 0).is_empty());
    }

    #[test]
    fn read_returns_data_immediately_and_times_later() {
        let mut sys = base_system();
        sys.memory_mut().write_block(100, &[7, 8, 9]);
        let (id, data) = sys.start_read(AddrPattern::contiguous(100, 3), false);
        assert_eq!(data, [7, 8, 9]);
        assert!(!sys.is_complete(id));
        let cycles = run_until_complete(&mut sys, id, 1000);
        // 3 words at ~2.285 words/cycle, plus 100 cycles latency.
        assert!((100..110).contains(&cycles), "took {cycles}");
        assert_eq!(sys.traffic().bytes_read, 12);
    }

    #[test]
    fn bandwidth_limits_long_transfers() {
        let mut sys = base_system();
        let words = 8192u32;
        let (id, _) = sys.start_read(AddrPattern::contiguous(0, words), false);
        let cycles = run_until_complete(&mut sys, id, 100_000);
        let ideal = words as f64 / 2.285;
        let serve = cycles as f64 - 100.0; // subtract latency
        assert!(
            (serve - ideal).abs() / ideal < 0.02,
            "served {words} words in {serve} cycles, ideal {ideal:.0}"
        );
    }

    #[test]
    fn concurrent_transfers_share_bandwidth_fairly() {
        let mut sys = base_system();
        let (a, _) = sys.start_read(AddrPattern::contiguous(0, 2000), false);
        let (b, _) = sys.start_read(AddrPattern::contiguous(10_000, 2000), false);
        let ca = run_until_complete(&mut sys, a, 100_000);
        // Both should finish at roughly the same time (round-robin).
        let cb_extra = run_until_complete(&mut sys, b, 100_000);
        assert!(cb_extra < 20, "b finished {cb_extra} cycles after a");
        let ideal = 4000.0 / 2.285;
        assert!((ca as f64 - 100.0 - ideal).abs() / ideal < 0.05);
    }

    #[test]
    fn write_updates_memory_and_counts_traffic() {
        let mut sys = base_system();
        let id = sys.start_write(AddrPattern::contiguous(50, 2), &[1, 2], false);
        assert_eq!(sys.memory().read(51), 2);
        run_until_complete(&mut sys, id, 1000);
        assert_eq!(sys.traffic().bytes_written, 8);
    }

    #[test]
    fn gather_traffic_counts_every_word() {
        let mut sys = base_system();
        // Gathering the same address repeatedly still pays per-word DRAM
        // traffic (this is exactly the replication cost the ISRF removes).
        let (id, _) = sys.start_read(AddrPattern::Indexed(vec![7; 64]), false);
        run_until_complete(&mut sys, id, 10_000);
        assert_eq!(sys.traffic().bytes_read, 64 * 4);
    }

    #[test]
    fn zero_length_transfer_completes_immediately() {
        let mut sys = base_system();
        let (id, data) = sys.start_read(AddrPattern::contiguous(0, 0), false);
        assert!(data.is_empty());
        assert!(sys.is_complete(id));
        assert!(!sys.busy());
    }

    #[test]
    fn cache_hits_eliminate_dram_traffic() {
        let mut sys = cache_system();
        let (a, _) = sys.start_read(AddrPattern::contiguous(0, 128), true);
        run_until_complete(&mut sys, a, 10_000);
        let after_first = sys.traffic();
        // 128 words / 2-word lines = 64 misses = 512 bytes read; the second
        // word of each line hits (256 bytes of hits).
        assert_eq!(after_first.bytes_read, 512);
        assert_eq!(after_first.cache_hit_bytes, 256);
        let (b, _) = sys.start_read(AddrPattern::contiguous(0, 128), true);
        run_until_complete(&mut sys, b, 10_000);
        let after_second = sys.traffic();
        assert_eq!(after_second.bytes_read, 512, "second pass hits in cache");
        assert_eq!(after_second.cache_hit_bytes, 256 + 512);
    }

    #[test]
    fn cached_rereads_complete_faster_than_dram() {
        let mut sys = cache_system();
        let (a, _) = sys.start_read(AddrPattern::contiguous(0, 512), true);
        let cold = run_until_complete(&mut sys, a, 100_000);
        let (b, _) = sys.start_read(AddrPattern::contiguous(0, 512), true);
        let warm = run_until_complete(&mut sys, b, 100_000);
        assert!(
            warm * 2 < cold,
            "warm reread ({warm}) should be much faster than cold ({cold})"
        );
    }

    #[test]
    fn non_cacheable_streams_bypass_cache() {
        let mut sys = cache_system();
        let (a, _) = sys.start_read(AddrPattern::contiguous(0, 64), false);
        run_until_complete(&mut sys, a, 10_000);
        assert_eq!(
            sys.cache().unwrap().hits() + sys.cache().unwrap().misses(),
            0
        );
        assert_eq!(sys.traffic().bytes_read, 256);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut sys = cache_system();
        // Write 128 KB + one extra line through the cache, then evict by
        // streaming a second 128 KB region: evictions of dirty lines must
        // produce write traffic.
        let words = 32 * 1024u32;
        let id = sys.start_write(
            AddrPattern::contiguous(0, words),
            &vec![1; words as usize],
            true,
        );
        run_until_complete(&mut sys, id, 1_000_000);
        let (id2, _) = sys.start_read(AddrPattern::contiguous(words, words), true);
        run_until_complete(&mut sys, id2, 1_000_000);
        // All dirty lines evicted: 128 KB written back.
        assert_eq!(sys.traffic().bytes_written, words as u64 * 4);
    }

    #[test]
    fn random_gathers_pay_burst_granularity() {
        let mut sys = burst4_system();
        // 512 random words, each in its own burst: 512 bursts x 4 words of
        // bandwidth = 2048 credits, ~4x slower than a contiguous load.
        let addrs: Vec<u32> = (0..512u32).map(|i| i * 16).collect();
        let (g, _) = sys.start_read(AddrPattern::Indexed(addrs), false);
        let gather_cycles = run_until_complete(&mut sys, g, 100_000);
        let mut sys2 = burst4_system();
        let (c, _) = sys2.start_read(AddrPattern::contiguous(0, 512), false);
        let seq_cycles = run_until_complete(&mut sys2, c, 100_000);
        let gather_serve = gather_cycles as f64 - 100.0;
        let seq_serve = seq_cycles as f64 - 100.0;
        assert!(
            gather_serve / seq_serve > 3.5 && gather_serve / seq_serve < 4.5,
            "gather {gather_serve} vs seq {seq_serve}"
        );
        // Demand traffic still counts words, not bursts (Figure 11 metric).
        assert_eq!(sys.traffic().bytes_read, 512 * 4);
    }

    #[test]
    fn strided_two_word_records_pay_half_burst_waste() {
        let mut sys = burst4_system();
        // 2-word records at stride 64: each record opens a fresh burst.
        let (g, _) = sys.start_read(AddrPattern::strided(0, 2, 64, 256), false);
        let cycles = run_until_complete(&mut sys, g, 100_000);
        let serve = cycles as f64 - 100.0;
        let ideal = 512.0 / 2.285; // if bandwidth were perfectly used
        assert!(
            serve / ideal > 1.8 && serve / ideal < 2.2,
            "strided served in {serve}, ideal {ideal}"
        );
    }

    #[test]
    fn busy_reflects_latency_tail() {
        let mut sys = base_system();
        let (_, _) = sys.start_read(AddrPattern::contiguous(0, 1), false);
        sys.tick(); // word served this cycle
        assert!(sys.busy(), "still waiting out DRAM latency");
        for _ in 0..200 {
            sys.tick();
        }
        assert!(!sys.busy());
    }
}
