//! Memory substrate for the indexed-SRF stream processor.
//!
//! Stream processors tolerate long memory latencies by issuing stream-sized
//! transfers — sequential, strided, gather (indexed load) and scatter
//! (indexed store) — that overlap with kernel execution. This crate models
//! everything below the SRF:
//!
//! * [`memory::Memory`] — the functional, word-addressed off-chip store.
//! * [`cache::VectorCache`] — the on-chip cache of the paper's `Cache`
//!   configuration (128 KB, 4-way, 4 banks, 2-word lines, LRU), used as a
//!   timing/traffic filter in front of DRAM.
//! * [`system::MemorySystem`] — the stream memory controller: accepts
//!   whole-stream transfer requests, serves them word-by-word under DRAM
//!   and cache bandwidth limits, and accounts off-chip traffic
//!   (Figure 11's metric).
//!
//! # Example
//!
//! ```
//! use isrf_core::config::{ConfigName, MachineConfig};
//! use isrf_mem::{AddrPattern, MemorySystem};
//!
//! let m = MachineConfig::preset(ConfigName::Base);
//! let mut mem = MemorySystem::new(&m);
//! mem.memory_mut().write_block(0, &[1, 2, 3, 4]);
//! let (id, data) = mem.start_read(&AddrPattern::contiguous(0, 4), false);
//! assert_eq!(data, [1, 2, 3, 4]);
//! while !mem.is_complete(id) {
//!     mem.tick();
//! }
//! assert_eq!(mem.traffic().bytes_read, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod memory;
pub mod system;

pub use cache::VectorCache;
pub use memory::Memory;
pub use system::{AddrPattern, MemorySystem, TransferId};
