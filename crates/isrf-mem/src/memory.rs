//! Functional off-chip memory: a flat, word-addressed store.
//!
//! Timing is modelled separately by [`crate::system::MemorySystem`]; this
//! type only holds data. Addresses are word addresses (not bytes), matching
//! the 32-bit word machine.

use isrf_core::Word;

/// A flat, word-addressed functional memory.
///
/// Memory grows on demand up to a fixed maximum so benchmarks can lay out
/// data without preallocating an address-space-sized vector.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    words: Vec<Word>,
}

impl Memory {
    /// Maximum supported word address (64 M words = 256 MB), a guard
    /// against runaway addresses from buggy kernels.
    pub const MAX_WORDS: usize = 64 << 20;

    /// Create an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of words currently backed (high-water mark of writes).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn ensure(&mut self, addr: u32) {
        let addr = addr as usize;
        assert!(
            addr < Self::MAX_WORDS,
            "word address {addr:#x} out of range"
        );
        if addr >= self.words.len() {
            self.words.resize(addr + 1, 0);
        }
    }

    /// Read the word at `addr` (unwritten locations read as zero).
    #[inline]
    pub fn read(&self, addr: u32) -> Word {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Write `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds [`Memory::MAX_WORDS`].
    #[inline]
    pub fn write(&mut self, addr: u32, value: Word) {
        self.ensure(addr);
        self.words[addr as usize] = value;
    }

    /// Read `data.len()` consecutive words starting at `base`.
    pub fn read_block_into(&self, base: u32, data: &mut [Word]) {
        for (i, d) in data.iter_mut().enumerate() {
            *d = self.read(base + i as u32);
        }
    }

    /// Read `count` consecutive words starting at `base`.
    pub fn read_block(&self, base: u32, count: usize) -> Vec<Word> {
        let mut v = vec![0; count];
        self.read_block_into(base, &mut v);
        v
    }

    /// Write a block of consecutive words starting at `base`.
    pub fn write_block(&mut self, base: u32, data: &[Word]) {
        if let Some(last) = data.len().checked_sub(1) {
            self.ensure(base + last as u32);
            let b = base as usize;
            self.words[b..b + data.len()].copy_from_slice(data);
        }
    }

    /// Gather the words at the given addresses, in order.
    pub fn gather(&self, addrs: &[u32]) -> Vec<Word> {
        addrs.iter().map(|&a| self.read(a)).collect()
    }

    /// Scatter `data[i]` to `addrs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn scatter(&mut self, addrs: &[u32], data: &[Word]) {
        assert_eq!(addrs.len(), data.len(), "scatter length mismatch");
        for (&a, &d) in addrs.iter().zip(data) {
            self.write(a, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(12345), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write(10, 42);
        assert_eq!(m.read(10), 42);
        assert_eq!(m.read(9), 0);
        assert_eq!(m.len(), 11);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = Memory::new();
        m.write_block(100, &[1, 2, 3]);
        assert_eq!(m.read_block(99, 5), [0, 1, 2, 3, 0]);
    }

    #[test]
    fn empty_block_write_is_noop() {
        let mut m = Memory::new();
        m.write_block(5, &[]);
        assert!(m.is_empty());
    }

    #[test]
    fn gather_scatter() {
        let mut m = Memory::new();
        m.scatter(&[5, 1, 9], &[50, 10, 90]);
        assert_eq!(m.gather(&[9, 5, 1, 0]), [90, 50, 10, 0]);
    }

    #[test]
    #[should_panic(expected = "scatter length mismatch")]
    fn scatter_length_mismatch_panics() {
        let mut m = Memory::new();
        m.scatter(&[1, 2], &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut m = Memory::new();
        m.write(u32::MAX, 1);
    }
}
