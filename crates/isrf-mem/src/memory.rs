//! Functional off-chip memory: a flat, word-addressed store.
//!
//! Timing is modelled separately by [`crate::system::MemorySystem`]; this
//! type only holds data. Addresses are word addresses (not bytes), matching
//! the 32-bit word machine.

use isrf_core::Word;

/// Words per lazily-allocated chunk (256 KB). Benchmarks place their
/// regions at well-separated bases across a large address space; chunking
/// keeps the cost of touching a high address proportional to the data
/// actually written instead of the span below it.
const CHUNK_WORDS: usize = 1 << 16;

/// A flat, word-addressed functional memory.
///
/// Backed by demand-allocated fixed-size chunks: unwritten regions (and
/// the gaps between benchmark data regions) cost nothing, reads of
/// unbacked locations return zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    chunks: Vec<Option<Box<[Word]>>>,
    /// High-water mark: one past the highest address ever written.
    len: usize,
}

impl Memory {
    /// Maximum supported word address (64 M words = 256 MB), a guard
    /// against runaway addresses from buggy kernels.
    pub const MAX_WORDS: usize = 64 << 20;

    /// Create an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of words currently backed (high-water mark of writes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk holding `addr`, allocated (zeroed) on first touch.
    fn chunk_mut(&mut self, addr: usize) -> &mut [Word] {
        assert!(
            addr < Self::MAX_WORDS,
            "word address {addr:#x} out of range"
        );
        let c = addr / CHUNK_WORDS;
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        self.chunks[c].get_or_insert_with(|| vec![0; CHUNK_WORDS].into_boxed_slice())
    }

    /// Read the word at `addr` (unwritten locations read as zero).
    #[inline]
    pub fn read(&self, addr: u32) -> Word {
        let a = addr as usize;
        match self.chunks.get(a / CHUNK_WORDS) {
            Some(Some(chunk)) => chunk[a % CHUNK_WORDS],
            _ => 0,
        }
    }

    /// Write `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds [`Memory::MAX_WORDS`].
    #[inline]
    pub fn write(&mut self, addr: u32, value: Word) {
        let a = addr as usize;
        self.chunk_mut(a)[a % CHUNK_WORDS] = value;
        self.len = self.len.max(a + 1);
    }

    /// Read `data.len()` consecutive words starting at `base`.
    pub fn read_block_into(&self, base: u32, data: &mut [Word]) {
        for (i, d) in data.iter_mut().enumerate() {
            *d = self.read(base + i as u32);
        }
    }

    /// Read `count` consecutive words starting at `base`.
    pub fn read_block(&self, base: u32, count: usize) -> Vec<Word> {
        let mut v = vec![0; count];
        self.read_block_into(base, &mut v);
        v
    }

    /// Write a block of consecutive words starting at `base`.
    pub fn write_block(&mut self, base: u32, data: &[Word]) {
        let mut src = data;
        let mut a = base as usize;
        while !src.is_empty() {
            let off = a % CHUNK_WORDS;
            let n = src.len().min(CHUNK_WORDS - off);
            self.chunk_mut(a)[off..off + n].copy_from_slice(&src[..n]);
            src = &src[n..];
            a += n;
        }
        self.len = self.len.max(base as usize + data.len());
    }

    /// Gather the words at the given addresses, in order.
    pub fn gather(&self, addrs: &[u32]) -> Vec<Word> {
        addrs.iter().map(|&a| self.read(a)).collect()
    }

    /// Scatter `data[i]` to `addrs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn scatter(&mut self, addrs: &[u32], data: &[Word]) {
        assert_eq!(addrs.len(), data.len(), "scatter length mismatch");
        for (&a, &d) in addrs.iter().zip(data) {
            self.write(a, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(12345), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write(10, 42);
        assert_eq!(m.read(10), 42);
        assert_eq!(m.read(9), 0);
        assert_eq!(m.len(), 11);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = Memory::new();
        m.write_block(100, &[1, 2, 3]);
        assert_eq!(m.read_block(100, 3), vec![1, 2, 3]);
        assert_eq!(m.read_block(99, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn block_crosses_chunk_boundary() {
        let mut m = Memory::new();
        let base = (CHUNK_WORDS - 2) as u32;
        m.write_block(base, &[7, 8, 9, 10]);
        assert_eq!(m.read_block(base, 4), vec![7, 8, 9, 10]);
        assert_eq!(m.len(), CHUNK_WORDS + 2);
        // Per-word reads resolve the same data across the boundary.
        assert_eq!(m.read(base + 3), 10);
    }

    #[test]
    fn sparse_writes_do_not_back_the_gap() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write((Memory::MAX_WORDS - 1) as u32, 2);
        assert_eq!(m.len(), Memory::MAX_WORDS);
        assert_eq!(m.read(Memory::MAX_WORDS as u32 / 2), 0);
        // Only two chunks are actually allocated.
        let backed = m.chunks.iter().filter(|c| c.is_some()).count();
        assert_eq!(backed, 2);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut m = Memory::new();
        let addrs = [5u32, 1000, 70000, 5];
        m.scatter(&addrs, &[10, 20, 30, 40]);
        // Later scatter entries win on duplicate addresses.
        assert_eq!(m.gather(&addrs), vec![40, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut m = Memory::new();
        m.write(Memory::MAX_WORDS as u32, 1);
    }

    #[test]
    #[should_panic(expected = "scatter length mismatch")]
    fn scatter_length_mismatch_panics() {
        let mut m = Memory::new();
        m.scatter(&[1, 2], &[3]);
    }
}
