//! Functional off-chip memory: a flat, word-addressed store.
//!
//! Timing is modelled separately by [`crate::system::MemorySystem`]; this
//! type only holds data. Addresses are word addresses (not bytes), matching
//! the 32-bit word machine.

use isrf_core::snap::{read_sections, write_sections, Dec, Enc, SnapError};
use isrf_core::Word;

/// Words per lazily-allocated chunk (256 KB). Benchmarks place their
/// regions at well-separated bases across a large address space; chunking
/// keeps the cost of touching a high address proportional to the data
/// actually written instead of the span below it.
const CHUNK_WORDS: usize = 1 << 16;

/// A flat, word-addressed functional memory.
///
/// Backed by demand-allocated fixed-size chunks: unwritten regions (and
/// the gaps between benchmark data regions) cost nothing, reads of
/// unbacked locations return zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    chunks: Vec<Option<Box<[Word]>>>,
    /// High-water mark: one past the highest address ever written.
    len: usize,
}

impl Memory {
    /// Maximum supported word address (64 M words = 256 MB), a guard
    /// against runaway addresses from buggy kernels.
    pub const MAX_WORDS: usize = 64 << 20;

    /// Create an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of words currently backed (high-water mark of writes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk holding `addr`, allocated (zeroed) on first touch.
    fn chunk_mut(&mut self, addr: usize) -> &mut [Word] {
        assert!(
            addr < Self::MAX_WORDS,
            "word address {addr:#x} out of range"
        );
        let c = addr / CHUNK_WORDS;
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        self.chunks[c].get_or_insert_with(|| vec![0; CHUNK_WORDS].into_boxed_slice())
    }

    /// Read the word at `addr` (unwritten locations read as zero).
    #[inline]
    pub fn read(&self, addr: u32) -> Word {
        let a = addr as usize;
        match self.chunks.get(a / CHUNK_WORDS) {
            Some(Some(chunk)) => chunk[a % CHUNK_WORDS],
            _ => 0,
        }
    }

    /// Write `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds [`Memory::MAX_WORDS`].
    #[inline]
    pub fn write(&mut self, addr: u32, value: Word) {
        let a = addr as usize;
        self.chunk_mut(a)[a % CHUNK_WORDS] = value;
        self.len = self.len.max(a + 1);
    }

    /// Read `data.len()` consecutive words starting at `base`.
    pub fn read_block_into(&self, base: u32, data: &mut [Word]) {
        for (i, d) in data.iter_mut().enumerate() {
            *d = self.read(base + i as u32);
        }
    }

    /// Read `count` consecutive words starting at `base`.
    pub fn read_block(&self, base: u32, count: usize) -> Vec<Word> {
        let mut v = vec![0; count];
        self.read_block_into(base, &mut v);
        v
    }

    /// Write a block of consecutive words starting at `base`.
    pub fn write_block(&mut self, base: u32, data: &[Word]) {
        let mut src = data;
        let mut a = base as usize;
        while !src.is_empty() {
            let off = a % CHUNK_WORDS;
            let n = src.len().min(CHUNK_WORDS - off);
            self.chunk_mut(a)[off..off + n].copy_from_slice(&src[..n]);
            src = &src[n..];
            a += n;
        }
        self.len = self.len.max(base as usize + data.len());
    }

    /// Number of chunks currently backed by storage (the touched set —
    /// sparse gaps between written regions allocate nothing).
    pub fn touched_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    /// Serialize the memory image sparsely: only touched chunks are
    /// written, each as its own `c<index>` section after a `meta` section
    /// carrying the high-water mark and touched-chunk count.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut secs: Vec<(String, Vec<u8>)> = Vec::new();
        let mut meta = Enc::new();
        meta.usize(self.len);
        meta.usize(self.touched_chunks());
        secs.push(("meta".into(), meta.into_bytes()));
        for (i, chunk) in self.chunks.iter().enumerate() {
            if let Some(chunk) = chunk {
                let mut ce = Enc::new();
                for &w in chunk.iter() {
                    ce.u32(w);
                }
                secs.push((format!("c{i}"), ce.into_bytes()));
            }
        }
        let mut e = Enc::new();
        write_sections(&mut e, &secs);
        e.into_bytes()
    }

    /// Replace this memory's contents with a snapshot produced by
    /// [`Memory::encode_state`]. Untouched chunks stay unallocated.
    pub fn decode_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let secs = read_sections(bytes)?;
        let Some(meta) = secs.first().filter(|s| s.name == "meta") else {
            return Err(SnapError::Mismatch("memory snapshot missing meta".into()));
        };
        let mut md = Dec::new(&meta.bytes);
        let len = md.usize()?;
        let touched = md.usize()?;
        md.finish()?;
        if touched != secs.len() - 1 {
            return Err(SnapError::Mismatch(format!(
                "memory snapshot claims {touched} chunks but carries {}",
                secs.len() - 1
            )));
        }
        let mut fresh = Memory {
            chunks: Vec::new(),
            len,
        };
        for sec in &secs[1..] {
            let idx: usize = sec
                .name
                .strip_prefix('c')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    SnapError::Mismatch(format!("bad memory chunk section {:?}", sec.name))
                })?;
            let mut cd = Dec::new(&sec.bytes);
            let mut chunk = vec![0; CHUNK_WORDS].into_boxed_slice();
            for w in chunk.iter_mut() {
                *w = cd.u32()?;
            }
            cd.finish()?;
            if idx >= fresh.chunks.len() {
                fresh.chunks.resize_with(idx + 1, || None);
            }
            fresh.chunks[idx] = Some(chunk);
        }
        *self = fresh;
        Ok(())
    }

    /// Gather the words at the given addresses, in order.
    pub fn gather(&self, addrs: &[u32]) -> Vec<Word> {
        addrs.iter().map(|&a| self.read(a)).collect()
    }

    /// Scatter `data[i]` to `addrs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn scatter(&mut self, addrs: &[u32], data: &[Word]) {
        assert_eq!(addrs.len(), data.len(), "scatter length mismatch");
        for (&a, &d) in addrs.iter().zip(data) {
            self.write(a, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(12345), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write(10, 42);
        assert_eq!(m.read(10), 42);
        assert_eq!(m.read(9), 0);
        assert_eq!(m.len(), 11);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = Memory::new();
        m.write_block(100, &[1, 2, 3]);
        assert_eq!(m.read_block(100, 3), vec![1, 2, 3]);
        assert_eq!(m.read_block(99, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn block_crosses_chunk_boundary() {
        let mut m = Memory::new();
        let base = (CHUNK_WORDS - 2) as u32;
        m.write_block(base, &[7, 8, 9, 10]);
        assert_eq!(m.read_block(base, 4), vec![7, 8, 9, 10]);
        assert_eq!(m.len(), CHUNK_WORDS + 2);
        // Per-word reads resolve the same data across the boundary.
        assert_eq!(m.read(base + 3), 10);
    }

    #[test]
    fn sparse_writes_do_not_back_the_gap() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write((Memory::MAX_WORDS - 1) as u32, 2);
        assert_eq!(m.len(), Memory::MAX_WORDS);
        assert_eq!(m.read(Memory::MAX_WORDS as u32 / 2), 0);
        // Only two chunks are actually allocated.
        let backed = m.chunks.iter().filter(|c| c.is_some()).count();
        assert_eq!(backed, 2);
    }

    #[test]
    fn reads_straddling_chunk_boundaries_resolve_per_chunk() {
        let mut m = Memory::new();
        // Back only the chunk *below* the boundary; the straddling read
        // must mix real data with zeros from the unbacked side.
        let base = (CHUNK_WORDS - 2) as u32;
        m.write(base, 5);
        m.write(base + 1, 6);
        assert_eq!(m.read_block(base, 4), vec![5, 6, 0, 0]);
        assert_eq!(m.touched_chunks(), 1);
        // Now back only the chunk above and read across again.
        m.write(base + 2, 7);
        assert_eq!(m.read_block(base, 4), vec![5, 6, 7, 0]);
        assert_eq!(m.touched_chunks(), 2);
    }

    #[test]
    fn snapshot_round_trips_sparse_high_base_region() {
        let mut m = Memory::new();
        let high = (Memory::MAX_WORDS - CHUNK_WORDS) as u32;
        m.write_block(high, &[11, 22, 33]);
        m.write(3, 44);
        let bytes = m.encode_state();
        let mut back = Memory::new();
        back.decode_state(&bytes).unwrap();
        assert_eq!(back.len(), m.len());
        assert_eq!(back.read(3), 44);
        assert_eq!(back.read_block(high, 3), vec![11, 22, 33]);
        assert_eq!(back.read(high / 2), 0, "gap stays zero");
        // The gap stays unallocated after restore, too.
        assert_eq!(back.touched_chunks(), 2);
        // Re-serializing the restored image is byte-identical.
        assert_eq!(back.encode_state(), bytes);
    }

    #[test]
    fn snapshot_chunk_count_matches_touched_set() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write((3 * CHUNK_WORDS + 17) as u32, 2);
        m.write((9 * CHUNK_WORDS) as u32, 3);
        assert_eq!(m.touched_chunks(), 3);
        let secs = read_sections(&m.encode_state()).unwrap();
        // One meta section plus exactly one section per touched chunk.
        assert_eq!(secs.len(), 1 + m.touched_chunks());
        let names: Vec<&str> = secs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["meta", "c0", "c3", "c9"]);
        let mut md = Dec::new(&secs[0].bytes);
        assert_eq!(md.usize().unwrap(), m.len());
        assert_eq!(md.usize().unwrap(), 3);
    }

    #[test]
    fn snapshot_of_empty_memory_round_trips() {
        let m = Memory::new();
        let bytes = m.encode_state();
        let mut back = Memory::new();
        back.write(5, 9); // stale contents must be discarded
        back.decode_state(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.read(5), 0);
        assert_eq!(back.touched_chunks(), 0);
    }

    #[test]
    fn corrupt_memory_snapshot_is_rejected() {
        let mut m = Memory::new();
        m.write(1, 2);
        let bytes = m.encode_state();
        assert!(m.decode_state(&bytes[..bytes.len() - 1]).is_err());
        assert!(m.decode_state(&[0u8; 4]).is_err());
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut m = Memory::new();
        let addrs = [5u32, 1000, 70000, 5];
        m.scatter(&addrs, &[10, 20, 30, 40]);
        // Later scatter entries win on duplicate addresses.
        assert_eq!(m.gather(&addrs), vec![40, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut m = Memory::new();
        m.write(Memory::MAX_WORDS as u32, 1);
    }

    #[test]
    #[should_panic(expected = "scatter length mismatch")]
    fn scatter_length_mismatch_panics() {
        let mut m = Memory::new();
        m.scatter(&[1, 2], &[3]);
    }
}
