//! Machine configuration.
//!
//! [`MachineConfig`] describes a complete stream processor in the style of
//! the Imagine/Merrimac machines: `N` lanes, each pairing an SRF bank with a
//! compute cluster, a stream memory system backed by off-chip DRAM, and
//! (for the `Cache` configuration) an on-chip vector cache between the SRF
//! and DRAM.
//!
//! [`MachineConfig::preset`] builds the four evaluation configurations from
//! Table 2/Table 3 of the paper:
//!
//! | Config | SRF          | Indexing                     | Backing store |
//! |--------|--------------|------------------------------|---------------|
//! | Base   | sequential   | none                         | DRAM          |
//! | ISRF1  | indexed      | 1 word/cycle/lane in-lane    | DRAM          |
//! | ISRF4  | indexed      | 4 words/cycle/lane in-lane   | DRAM          |
//! | Cache  | sequential   | none                         | cache + DRAM  |
//!
//! All parameters are plain public fields so experiments can sweep them (the
//! parameter studies of Section 5.4 vary sub-array counts, FIFO sizes,
//! network ports and address/data separations).

use std::fmt;

use crate::word::WORD_BYTES;

/// The four machine configurations evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigName {
    /// Sequential SRF backed by off-chip DRAM.
    Base,
    /// Indexed SRF, one indexed word per cycle per lane (no sub-banking).
    Isrf1,
    /// Indexed SRF, up to four indexed words per cycle per lane.
    Isrf4,
    /// Sequential SRF backed by an on-chip cache and off-chip DRAM.
    Cache,
}

impl ConfigName {
    /// All four configurations, in the order the paper's figures present
    /// them.
    pub const ALL: [ConfigName; 4] = [
        ConfigName::Base,
        ConfigName::Isrf1,
        ConfigName::Isrf4,
        ConfigName::Cache,
    ];
}

impl fmt::Display for ConfigName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConfigName::Base => "Base",
            ConfigName::Isrf1 => "ISRF1",
            ConfigName::Isrf4 => "ISRF4",
            ConfigName::Cache => "Cache",
        };
        f.write_str(s)
    }
}

/// Error returned when a [`MachineConfig`] is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Functional-unit and local-storage description of one compute cluster.
///
/// All four paper configurations use identical clusters: four fully
/// pipelined units supporting integer and floating-point add and multiply,
/// plus a single unpipelined divider (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Fully pipelined arithmetic units per cluster.
    pub fu_count: usize,
    /// Unpipelined dividers per cluster.
    pub divider_count: usize,
    /// Words of cluster-local scratchpad memory (Imagine provides a small
    /// scratchpad; the `Filter` baseline depends on it).
    pub scratchpad_words: usize,
    /// Operation latencies in cycles.
    pub latency: OpLatencies,
    /// Latency of an explicit inter-cluster network transfer.
    pub comm_latency: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            fu_count: 4,
            divider_count: 1,
            scratchpad_words: 256,
            latency: OpLatencies::default(),
            comm_latency: 2,
        }
    }
}

/// Per-operation-class latencies, in cycles.
///
/// The exact values are not given in the paper; these defaults follow the
/// published Imagine pipeline depths and may be swept freely — the
/// reproduction's conclusions depend on their relative order (divide ≫
/// multiply > add ≥ simple ops), not the absolute values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatencies {
    /// Integer add/sub/logic/shift/compare.
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Floating-point add/subtract/compare.
    pub fp_add: u32,
    /// Floating-point multiply.
    pub fp_mul: u32,
    /// Divide (integer or float); occupies the unpipelined divider.
    pub divide: u32,
    /// Select / move / bit-field extract.
    pub select: u32,
    /// Scratchpad read or write.
    pub scratch: u32,
    /// Stream-buffer read or write as seen by the cluster.
    pub sb_access: u32,
}

impl Default for OpLatencies {
    fn default() -> Self {
        OpLatencies {
            int_alu: 2,
            int_mul: 4,
            fp_add: 3,
            fp_mul: 4,
            divide: 16,
            select: 1,
            scratch: 2,
            sb_access: 1,
        }
    }
}

/// Topology of the cross-lane index/data interconnect. The paper's
/// evaluation uses fully connected crossbars (like Imagine's inter-cluster
/// network) and leaves "the impact of sparse interconnects for the address
/// and data networks" to future work (Section 7); [`CrossLaneTopology::Ring`]
/// realizes that study: bisection-limited issue plus hop latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrossLaneTopology {
    /// Fully connected crossbar (the paper's design).
    #[default]
    Crossbar,
    /// Bidirectional ring: cheap wiring, limited bisection.
    Ring,
}

/// Capabilities added by indexed-SRF support (absent on `Base`/`Cache`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedSrfConfig {
    /// Entries in each per-lane, per-stream address FIFO.
    pub addr_fifo_entries: usize,
    /// Peak in-lane indexed bandwidth in words per cycle per lane
    /// (1 for ISRF1 — no sub-banking — and `s` = 4 for ISRF4).
    pub inlane_words_per_cycle: usize,
    /// Peak cross-lane indexed bandwidth in words per cycle per lane.
    pub crosslane_words_per_cycle: usize,
    /// In-lane indexed access latency, address to data, absent conflicts.
    pub inlane_latency: u32,
    /// Cross-lane indexed access latency absent conflicts.
    pub crosslane_latency: u32,
    /// Whether cross-lane indexed access is supported at all.
    pub crosslane: bool,
    /// Cross-lane network ports per SRF bank (Figure 18 sweeps 1/2/4).
    pub network_ports_per_bank: usize,
    /// Interconnect topology for cross-lane accesses.
    pub crosslane_topology: CrossLaneTopology,
}

impl IndexedSrfConfig {
    /// The ISRF1 indexing parameters from Table 3.
    pub fn isrf1() -> Self {
        IndexedSrfConfig {
            addr_fifo_entries: 8,
            inlane_words_per_cycle: 1,
            crosslane_words_per_cycle: 1,
            inlane_latency: 4,
            crosslane_latency: 6,
            crosslane: true,
            network_ports_per_bank: 1,
            crosslane_topology: CrossLaneTopology::Crossbar,
        }
    }

    /// The ISRF4 indexing parameters from Table 3.
    pub fn isrf4() -> Self {
        IndexedSrfConfig {
            inlane_words_per_cycle: 4,
            ..IndexedSrfConfig::isrf1()
        }
    }
}

/// SRF organization (Section 4.1–4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SrfConfig {
    /// Total SRF capacity in bytes across all banks (128 KB in the paper).
    pub capacity_bytes: usize,
    /// Words accessed per lane by one sequential SRF access (`m` = 4).
    pub words_per_seq_access: usize,
    /// Sub-arrays per bank (`s` = 4). Determines peak in-lane indexed
    /// parallelism when sub-banked access is enabled.
    pub subarrays: usize,
    /// Sequential SRF access latency in cycles.
    pub seq_latency: u32,
    /// Stream-buffer capacity per lane per stream, in words.
    pub stream_buffer_words: usize,
    /// Indexed-access support; `None` for sequential-only SRFs.
    pub indexed: Option<IndexedSrfConfig>,
}

impl SrfConfig {
    /// Sequential-only SRF with the paper's Table 3 parameters.
    pub fn sequential() -> Self {
        SrfConfig {
            capacity_bytes: 128 * 1024,
            words_per_seq_access: 4,
            subarrays: 4,
            seq_latency: 3,
            stream_buffer_words: 8,
            indexed: None,
        }
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_bytes / WORD_BYTES as usize
    }

    /// Words per bank for an `lanes`-lane machine.
    pub fn bank_words(&self, lanes: usize) -> usize {
        self.capacity_words() / lanes
    }

    /// Words per sub-array for an `lanes`-lane machine.
    pub fn subarray_words(&self, lanes: usize) -> usize {
        self.bank_words(lanes) / self.subarrays
    }

    /// Peak sequential SRF bandwidth in words per cycle across all lanes.
    pub fn seq_words_per_cycle(&self, lanes: usize) -> usize {
        lanes * self.words_per_seq_access
    }
}

/// Off-chip DRAM channel model.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Peak sustained bandwidth in gigabytes per second (9.14 in Table 3).
    pub peak_gbytes_per_sec: f64,
    /// Unloaded access latency in processor cycles. Not specified in the
    /// paper; chosen to be representative of 2003-era DRAM behind a memory
    /// controller. Benchmarks tolerate it via stream-level pipelining, so
    /// results are insensitive to the exact value.
    pub latency_cycles: u32,
    /// Minimum transfer granularity in words: touching any word of a burst
    /// consumes a full burst of bandwidth. Sequential streams amortize
    /// bursts perfectly; random single-word gathers pay `burst_words`x.
    /// Default 1: the Imagine-line streaming memory system uses memory
    /// access scheduling to sustain near-peak throughput even on
    /// single-word gathers, and the paper's Figure 11 counts demand words.
    /// Raise it to study less capable memory controllers.
    pub burst_words: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            peak_gbytes_per_sec: 9.14,
            latency_cycles: 100,
            burst_words: 1,
        }
    }
}

impl DramConfig {
    /// Peak bandwidth in words per processor cycle at `clock_ghz`.
    pub fn words_per_cycle(&self, clock_ghz: f64) -> f64 {
        self.peak_gbytes_per_sec / (WORD_BYTES as f64) / clock_ghz
    }
}

/// On-chip vector cache (the `Cache` configuration, Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Capacity in bytes (128 KB).
    pub capacity_bytes: usize,
    /// Set associativity (4).
    pub associativity: usize,
    /// Independent banks (4).
    pub banks: usize,
    /// Line size in words (2 — short lines per the vector-cache studies the
    /// paper cites).
    pub line_words: usize,
    /// Peak cache bandwidth in gigabytes per second (16).
    pub peak_gbytes_per_sec: f64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 128 * 1024,
            associativity: 4,
            banks: 4,
            line_words: 2,
            peak_gbytes_per_sec: 16.0,
            hit_latency: 8,
        }
    }
}

impl CacheConfig {
    /// Peak bandwidth in words per processor cycle at `clock_ghz`.
    pub fn words_per_cycle(&self, clock_ghz: f64) -> f64 {
        self.peak_gbytes_per_sec / (WORD_BYTES as f64) / clock_ghz
    }

    /// Number of sets per bank.
    pub fn sets_per_bank(&self) -> usize {
        let lines = self.capacity_bytes / (self.line_words * WORD_BYTES as usize);
        lines / self.associativity / self.banks
    }
}

/// Compile-time scheduling defaults used by the kernel scheduler
/// (Section 5.1: fixed address/data separation of 6 cycles in-lane and
/// 20 cycles cross-lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Cycles between indexed address issue and data read, in-lane streams.
    pub inlane_addr_data_separation: u32,
    /// Cycles between indexed address issue and data read, cross-lane.
    pub crosslane_addr_data_separation: u32,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            inlane_addr_data_separation: 6,
            crosslane_addr_data_separation: 20,
        }
    }
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Which named configuration this is (used for reporting).
    pub name: ConfigName,
    /// Number of lanes (SRF bank + compute cluster pairs).
    pub lanes: usize,
    /// System clock in GHz.
    pub clock_ghz: f64,
    /// Compute cluster description.
    pub cluster: ClusterConfig,
    /// SRF organization.
    pub srf: SrfConfig,
    /// Off-chip DRAM channel.
    pub dram: DramConfig,
    /// On-chip cache, present only on the `Cache` configuration.
    pub cache: Option<CacheConfig>,
    /// Kernel-scheduling defaults.
    pub sched: ScheduleConfig,
    /// Fixed per-invocation kernel overhead in cycles: sequencer dispatch
    /// plus pre/post-loop kernel code (part of the "kernel overheads"
    /// component of Figure 12).
    pub kernel_dispatch_cycles: u32,
}

impl MachineConfig {
    /// Build one of the paper's four machine configurations (Table 2/3).
    ///
    /// ```
    /// use isrf_core::config::{ConfigName, MachineConfig};
    /// let base = MachineConfig::preset(ConfigName::Base);
    /// assert!(base.srf.indexed.is_none() && base.cache.is_none());
    /// let cache = MachineConfig::preset(ConfigName::Cache);
    /// assert!(cache.cache.is_some());
    /// ```
    pub fn preset(name: ConfigName) -> Self {
        let mut m = MachineConfig {
            name,
            lanes: 8,
            clock_ghz: 1.0,
            cluster: ClusterConfig::default(),
            srf: SrfConfig::sequential(),
            dram: DramConfig::default(),
            cache: None,
            sched: ScheduleConfig::default(),
            kernel_dispatch_cycles: 32,
        };
        match name {
            ConfigName::Base => {}
            ConfigName::Isrf1 => m.srf.indexed = Some(IndexedSrfConfig::isrf1()),
            ConfigName::Isrf4 => m.srf.indexed = Some(IndexedSrfConfig::isrf4()),
            ConfigName::Cache => m.cache = Some(CacheConfig::default()),
        }
        m
    }

    /// Peak compute rate in GFLOP/s (`lanes × FUs × clock`): 32 in Table 3.
    pub fn peak_gflops(&self) -> f64 {
        self.lanes as f64 * self.cluster.fu_count as f64 * self.clock_ghz
    }

    /// True when the SRF supports indexed access.
    pub fn has_indexed_srf(&self) -> bool {
        self.srf.indexed.is_some()
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant:
    /// zero lanes, SRF capacity not divisible into banks/sub-arrays,
    /// indexed bandwidth exceeding the sub-array count, or zero-sized
    /// buffers/FIFOs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.lanes == 0 {
            return Err(ConfigError::new("machine must have at least one lane"));
        }
        if self.clock_ghz <= 0.0 {
            return Err(ConfigError::new("clock must be positive"));
        }
        if self.cluster.fu_count == 0 {
            return Err(ConfigError::new("clusters need at least one FU"));
        }
        let srf = &self.srf;
        if srf.capacity_words() == 0 || !srf.capacity_words().is_multiple_of(self.lanes) {
            return Err(ConfigError::new(format!(
                "SRF capacity ({} words) must divide evenly into {} banks",
                srf.capacity_words(),
                self.lanes
            )));
        }
        if srf.subarrays == 0 || !srf.bank_words(self.lanes).is_multiple_of(srf.subarrays) {
            return Err(ConfigError::new(
                "bank capacity must divide evenly into sub-arrays",
            ));
        }
        if srf.words_per_seq_access == 0 {
            return Err(ConfigError::new("sequential access width must be nonzero"));
        }
        if srf.stream_buffer_words == 0 {
            return Err(ConfigError::new("stream buffers must be nonzero"));
        }
        if let Some(idx) = &srf.indexed {
            if idx.addr_fifo_entries == 0 {
                return Err(ConfigError::new("address FIFOs must be nonzero"));
            }
            if idx.inlane_words_per_cycle == 0 {
                return Err(ConfigError::new("indexed bandwidth must be nonzero"));
            }
            if idx.inlane_words_per_cycle > srf.subarrays {
                return Err(ConfigError::new(format!(
                    "in-lane indexed bandwidth ({}/cycle) cannot exceed the \
                     {} sub-arrays per bank",
                    idx.inlane_words_per_cycle, srf.subarrays
                )));
            }
            if idx.crosslane && idx.network_ports_per_bank == 0 {
                return Err(ConfigError::new(
                    "cross-lane indexing requires at least one network port per bank",
                ));
            }
        }
        if let Some(cache) = &self.cache {
            if cache.capacity_bytes == 0
                || cache.associativity == 0
                || cache.banks == 0
                || cache.line_words == 0
            {
                return Err(ConfigError::new("cache parameters must be nonzero"));
            }
            if cache.sets_per_bank() == 0 {
                return Err(ConfigError::new(
                    "cache must have at least one set per bank",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        for name in ConfigName::ALL {
            let m = MachineConfig::preset(name);
            m.validate().expect("preset must validate");
            assert_eq!(m.lanes, 8);
            assert_eq!(m.clock_ghz, 1.0);
            assert_eq!(m.peak_gflops(), 32.0);
            assert_eq!(m.srf.capacity_bytes, 128 * 1024);
            assert_eq!(m.srf.seq_words_per_cycle(m.lanes), 32);
            assert_eq!(m.srf.seq_latency, 3);
            assert_eq!(m.srf.stream_buffer_words, 8);
            assert!((m.dram.peak_gbytes_per_sec - 9.14).abs() < 1e-9);
        }
    }

    #[test]
    fn isrf_presets_differ_only_in_inlane_bandwidth() {
        let m1 = MachineConfig::preset(ConfigName::Isrf1);
        let m4 = MachineConfig::preset(ConfigName::Isrf4);
        let i1 = m1.srf.indexed.unwrap();
        let i4 = m4.srf.indexed.unwrap();
        assert_eq!(i1.inlane_words_per_cycle, 1);
        assert_eq!(i4.inlane_words_per_cycle, 4);
        assert_eq!(i1.crosslane_words_per_cycle, i4.crosslane_words_per_cycle);
        assert_eq!(i1.inlane_latency, 4);
        assert_eq!(i1.crosslane_latency, 6);
        assert_eq!(i1.addr_fifo_entries, 8);
    }

    #[test]
    fn cache_preset_matches_table3() {
        let m = MachineConfig::preset(ConfigName::Cache);
        let c = m.cache.unwrap();
        assert_eq!(c.capacity_bytes, 128 * 1024);
        assert_eq!(c.associativity, 4);
        assert_eq!(c.banks, 4);
        assert_eq!(c.line_words, 2);
        assert_eq!(c.words_per_cycle(1.0), 4.0);
        // 128 KB / (2 words * 4 B) = 16384 lines; /4 ways /4 banks = 1024 sets.
        assert_eq!(c.sets_per_bank(), 1024);
    }

    #[test]
    fn dram_bandwidth_in_words() {
        let d = DramConfig::default();
        let wpc = d.words_per_cycle(1.0);
        assert!((wpc - 2.285).abs() < 0.001, "got {wpc}");
    }

    #[test]
    fn srf_geometry() {
        let srf = SrfConfig::sequential();
        assert_eq!(srf.capacity_words(), 32768);
        assert_eq!(srf.bank_words(8), 4096);
        assert_eq!(srf.subarray_words(8), 1024);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut m = MachineConfig::preset(ConfigName::Base);
        m.lanes = 0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::preset(ConfigName::Isrf4);
        m.srf.indexed.as_mut().unwrap().inlane_words_per_cycle = 8;
        assert!(m.validate().is_err(), "indexed bw beyond sub-arrays");

        let mut m = MachineConfig::preset(ConfigName::Base);
        m.srf.capacity_bytes = 1000; // 250 words, not divisible by 8 banks
        assert!(m.validate().is_err());

        let mut m = MachineConfig::preset(ConfigName::Cache);
        m.cache.as_mut().unwrap().associativity = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn config_names_display() {
        let shown: Vec<String> = ConfigName::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(shown, ["Base", "ISRF1", "ISRF4", "Cache"]);
    }
}
