//! Shared vocabulary for the indexed-SRF stream processor reproduction.
//!
//! This crate holds the types that every other crate in the workspace speaks:
//!
//! * [`word`] — the 32-bit machine word and integer/float reinterpretation
//!   helpers (stream processors in the Imagine line are 32-bit word machines).
//! * [`config`] — the full machine description, including the four evaluation
//!   configurations of the paper (Table 2/3): `Base`, `ISRF1`, `ISRF4` and
//!   `Cache`.
//! * [`stats`] — cycle accounting (the execution-time breakdown of Figure 12),
//!   off-chip traffic counters (Figure 11) and SRF bandwidth counters
//!   (Figure 13).
//! * [`snap`] — the versioned, content-hashed binary codec behind the
//!   simulator's cycle-granular snapshot/resume machinery (DESIGN.md §12).
//!
//! # Example
//!
//! ```
//! use isrf_core::config::{ConfigName, MachineConfig};
//!
//! let m = MachineConfig::preset(ConfigName::Isrf4);
//! assert_eq!(m.lanes, 8);
//! assert_eq!(m.srf.capacity_words(), 32 * 1024);
//! assert_eq!(m.srf.indexed.as_ref().unwrap().inlane_words_per_cycle, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod snap;
pub mod stats;
pub mod word;

pub use config::{ConfigName, MachineConfig};
pub use stats::{Breakdown, MemTraffic, RunStats, SrfTraffic};
pub use word::Word;
