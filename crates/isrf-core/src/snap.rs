//! Hand-rolled binary codec for simulator snapshots.
//!
//! The simulator's snapshot/resume machinery (DESIGN.md §12) serializes
//! every piece of dynamic architectural state into a versioned,
//! content-hashed byte stream. This module provides the primitives: a
//! little-endian writer ([`Enc`]) and reader ([`Dec`]), the outer frame
//! (magic + version + payload + trailing FNV-1a hash), and a named-section
//! convention that lets tooling diff two snapshots structurally without
//! knowing every field.
//!
//! The format is deliberately simple — fixed-width little-endian integers,
//! `f64` via its IEEE-754 bit pattern, length-prefixed byte strings — so
//! that re-serializing a decoded snapshot is byte-identical and two
//! snapshots of identical architectural state compare equal as raw bytes.

use std::fmt;

/// Magic bytes opening every snapshot frame.
pub const MAGIC: &[u8; 8] = b"ISRFSNAP";

/// Current snapshot format version. Bump on any layout change; decoders
/// reject other versions with [`SnapError::UnsupportedVersion`].
pub const VERSION: u32 = 1;

/// Errors surfaced while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the expected field.
    UnexpectedEof,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's version field is not [`VERSION`].
    UnsupportedVersion(
        /// The version found in the frame.
        u32,
    ),
    /// The trailing content hash does not match the payload.
    BadHash,
    /// The snapshot is structurally valid but does not fit the target
    /// machine (wrong configuration, program, or collection length).
    Mismatch(
        /// Human-readable description of what did not fit.
        String,
    ),
    /// Bytes remained after the final field was decoded.
    TrailingBytes,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof => write!(f, "snapshot truncated: unexpected end of input"),
            SnapError::BadMagic => write!(f, "not a snapshot: bad magic (expected \"ISRFSNAP\")"),
            SnapError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot version {v} (this build reads version {VERSION})"
            ),
            SnapError::BadHash => write!(f, "snapshot corrupt: content hash mismatch"),
            SnapError::Mismatch(what) => write!(f, "snapshot does not fit this machine: {what}"),
            SnapError::TrailingBytes => write!(f, "snapshot corrupt: trailing bytes after payload"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash, used both as the frame's content hash and as a
/// cheap fingerprint for configurations and programs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian binary writer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consume the encoder, yielding the raw bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write an `f64` via its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write raw bytes with no length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Little-endian binary reader over a borrowed byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Mismatch(format!("length {v} overflows usize")))
    }

    /// Read a bool encoded as one byte.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        Ok(self.u8()? != 0)
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapError::Mismatch("invalid UTF-8 in string field".into()))
    }

    /// Check that every byte has been consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// Wrap `payload` in the snapshot frame: magic, version, payload, and a
/// trailing FNV-1a 64 content hash over everything before it.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + payload.len() + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(payload);
    let h = fnv1a(&out);
    out.extend_from_slice(&h.to_le_bytes());
    out
}

/// Validate a snapshot frame and return the payload slice between the
/// header and the trailing hash.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], SnapError> {
    let header = MAGIC.len() + 4;
    if bytes.len() < header + 8 {
        return Err(SnapError::UnexpectedEof);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[MAGIC.len()..header].try_into().unwrap());
    if version != VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    let hash_at = bytes.len() - 8;
    let expect = u64::from_le_bytes(bytes[hash_at..].try_into().unwrap());
    if fnv1a(&bytes[..hash_at]) != expect {
        return Err(SnapError::BadHash);
    }
    Ok(&bytes[header..hash_at])
}

/// One named section of a snapshot payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (short printable ASCII, e.g. `"srf"` or `"lane3"`).
    pub name: String,
    /// Raw section payload; may itself be a nested section list.
    pub bytes: Vec<u8>,
}

/// Serialize a list of named sections: a count, then per section its
/// name, payload length, and payload bytes.
pub fn write_sections<N: AsRef<str>, B: AsRef<[u8]>>(e: &mut Enc, sections: &[(N, B)]) {
    e.usize(sections.len());
    for (name, bytes) in sections {
        e.str(name.as_ref());
        e.usize(bytes.as_ref().len());
        e.bytes(bytes.as_ref());
    }
}

/// Parse `bytes` as a section list written by [`write_sections`].
pub fn read_sections(bytes: &[u8]) -> Result<Vec<Section>, SnapError> {
    let mut d = Dec::new(bytes);
    let n = d.usize()?;
    let mut out = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = d.str()?;
        let len = d.usize()?;
        let payload = d.bytes(len)?;
        out.push(Section {
            name,
            bytes: payload.to_vec(),
        });
    }
    d.finish()?;
    Ok(out)
}

/// Heuristically parse `bytes` as a section list: succeeds only when the
/// buffer decodes exactly as [`read_sections`] expects, the count is small
/// (≤ 64), and every name is short printable ASCII. Lets structural diff
/// tooling recurse into nested sections without a schema.
pub fn try_read_sections(bytes: &[u8]) -> Option<Vec<Section>> {
    let mut d = Dec::new(bytes);
    let n = d.usize().ok()?;
    if n > 64 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str().ok()?;
        if name.is_empty() || name.len() > 32 || !name.bytes().all(|b| (0x20..0x7f).contains(&b)) {
            return None;
        }
        let len = d.usize().ok()?;
        let payload = d.bytes(len).ok()?;
        out.push(Section {
            name,
            bytes: payload.to_vec(),
        });
    }
    d.finish().ok()?;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u16(0x1234);
        e.u32(0xdead_beef);
        e.u64(0x0123_4567_89ab_cdef);
        e.usize(42);
        e.bool(true);
        e.bool(false);
        e.f64(-1.5);
        e.str("hello");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0x1234);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(d.usize().unwrap(), 42);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.f64().unwrap(), -1.5);
        assert_eq!(d.str().unwrap(), "hello");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let bytes = [1u8, 2, 3];
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u64(), Err(SnapError::UnexpectedEof));
    }

    #[test]
    fn frame_round_trips_and_detects_corruption() {
        let payload = b"payload bytes".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);

        let mut flipped = framed.clone();
        flipped[13] ^= 1; // payload byte: header is magic (8) + version (4)
        assert_eq!(unframe(&flipped), Err(SnapError::BadHash));

        let mut bad_magic = framed.clone();
        bad_magic[0] = b'X';
        assert_eq!(unframe(&bad_magic), Err(SnapError::BadMagic));

        assert_eq!(unframe(&framed[..8]), Err(SnapError::UnexpectedEof));
    }

    #[test]
    fn unknown_version_is_rejected_with_clear_error() {
        let mut framed = frame(b"x");
        framed[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-hash so only the version is wrong.
        let hash_at = framed.len() - 8;
        let h = fnv1a(&framed[..hash_at]);
        framed[hash_at..].copy_from_slice(&h.to_le_bytes());
        let err = unframe(&framed).unwrap_err();
        assert_eq!(err, SnapError::UnsupportedVersion(99));
        assert!(err.to_string().contains("unsupported snapshot version 99"));
    }

    #[test]
    fn sections_round_trip() {
        let mut e = Enc::new();
        write_sections(
            &mut e,
            &[
                ("alpha", vec![1, 2, 3]),
                ("beta", vec![]),
                ("gamma", vec![9]),
            ],
        );
        let bytes = e.into_bytes();
        let secs = read_sections(&bytes).unwrap();
        assert_eq!(secs.len(), 3);
        assert_eq!(secs[0].name, "alpha");
        assert_eq!(secs[0].bytes, vec![1, 2, 3]);
        assert_eq!(secs[1].name, "beta");
        assert!(secs[1].bytes.is_empty());
        assert_eq!(try_read_sections(&bytes).unwrap(), secs);
    }

    #[test]
    fn try_read_sections_rejects_non_section_bytes() {
        assert!(try_read_sections(&[0xff; 16]).is_none());
        // A valid-looking count with garbage names.
        let mut e = Enc::new();
        e.usize(1);
        e.str("\u{1}bad");
        e.usize(0);
        assert!(try_read_sections(&e.into_bytes()).is_none());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
