//! The 32-bit machine word.
//!
//! The simulated machine (like Imagine) operates on 32-bit words that may
//! hold either a two's-complement integer or an IEEE-754 single-precision
//! float. Data in the SRF, in stream buffers and in cluster registers is
//! stored as raw [`Word`]s; arithmetic units reinterpret the bit pattern
//! according to the opcode.

/// A 32-bit machine word: the unit of SRF storage and datapath width.
pub type Word = u32;

/// Number of bytes in a [`Word`].
pub const WORD_BYTES: u64 = 4;

/// Reinterpret a word as a signed integer.
///
/// ```
/// assert_eq!(isrf_core::word::as_i32(0xFFFF_FFFF), -1);
/// ```
#[inline]
pub fn as_i32(w: Word) -> i32 {
    w as i32
}

/// Reinterpret a signed integer as a word.
///
/// ```
/// assert_eq!(isrf_core::word::from_i32(-1), 0xFFFF_FFFF);
/// ```
#[inline]
pub fn from_i32(v: i32) -> Word {
    v as u32
}

/// Reinterpret a word's bit pattern as an IEEE-754 single.
///
/// ```
/// let w = isrf_core::word::from_f32(1.5);
/// assert_eq!(isrf_core::word::as_f32(w), 1.5);
/// ```
#[inline]
pub fn as_f32(w: Word) -> f32 {
    f32::from_bits(w)
}

/// Reinterpret an IEEE-754 single as a word.
#[inline]
pub fn from_f32(v: f32) -> Word {
    v.to_bits()
}

/// Truth encoding used by comparison ops: `1` for true, `0` for false.
///
/// ```
/// assert_eq!(isrf_core::word::from_bool(true), 1);
/// assert!(isrf_core::word::as_bool(2));
/// assert!(!isrf_core::word::as_bool(0));
/// ```
#[inline]
pub fn from_bool(b: bool) -> Word {
    b as u32
}

/// Any non-zero word is treated as true (C-style).
#[inline]
pub fn as_bool(w: Word) -> bool {
    w != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i32_roundtrip() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 123_456_789, -987_654_321] {
            assert_eq!(as_i32(from_i32(v)), v);
        }
    }

    #[test]
    fn f32_roundtrip() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(as_f32(from_f32(v)), v);
        }
    }

    #[test]
    fn f32_nan_bits_preserved() {
        let bits = 0x7FC0_1234;
        assert!(as_f32(bits).is_nan());
        assert_eq!(from_f32(as_f32(bits)), bits);
    }

    #[test]
    fn bool_encoding() {
        assert_eq!(from_bool(true), 1);
        assert_eq!(from_bool(false), 0);
        assert!(as_bool(0xFFFF_FFFF));
        assert!(!as_bool(0));
    }
}
