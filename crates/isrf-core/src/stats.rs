//! Simulation statistics.
//!
//! Three counter groups mirror the paper's three measurement figures:
//!
//! * [`Breakdown`] — where execution time went (Figure 12's four stacked
//!   components).
//! * [`MemTraffic`] — off-chip bytes moved (Figure 11).
//! * [`SrfTraffic`] — SRF words moved by access class (Figure 13).
//!
//! [`RunStats`] bundles all three for one benchmark run on one machine
//! configuration.

use std::fmt;
use std::ops::AddAssign;

use crate::snap::{Dec, Enc, SnapError};

/// Execution-time breakdown in cycles (the stacked components of Figure 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Cycles spent executing main-loop bodies of kernels.
    pub kernel_loop: u64,
    /// Cycles stalled waiting for memory (or cache) transfers.
    pub mem_stall: u64,
    /// Cycles stalled waiting for SRF accesses (arbitration failures, bank
    /// and sub-array conflicts, stream-buffer starvation).
    pub srf_stall: u64,
    /// Kernel overheads: pre/post-loop code, software-pipeline fill and
    /// drain, and inter-lane load imbalance.
    pub overhead: u64,
}

impl Breakdown {
    /// Total cycles across all components.
    pub fn total(&self) -> u64 {
        self.kernel_loop + self.mem_stall + self.srf_stall + self.overhead
    }

    /// Each component as a fraction of `base_total` (used to normalize
    /// Figure 12 against the `Base` configuration).
    pub fn normalized_to(&self, base_total: u64) -> [f64; 4] {
        let d = base_total.max(1) as f64;
        [
            self.kernel_loop as f64 / d,
            self.mem_stall as f64 / d,
            self.srf_stall as f64 / d,
            self.overhead as f64 / d,
        ]
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.kernel_loop += rhs.kernel_loop;
        self.mem_stall += rhs.mem_stall;
        self.srf_stall += rhs.srf_stall;
        self.overhead += rhs.overhead;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop {} + mem {} + srf {} + ovh {} = {} cycles",
            self.kernel_loop,
            self.mem_stall,
            self.srf_stall,
            self.overhead,
            self.total()
        )
    }
}

/// Off-chip memory traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Bytes served by the on-chip cache (hits), zero on cache-less configs.
    pub cache_hit_bytes: u64,
}

impl MemTraffic {
    /// Write the counters into a snapshot encoder.
    pub fn encode_state(&self, e: &mut Enc) {
        e.u64(self.bytes_read);
        e.u64(self.bytes_written);
        e.u64(self.cache_hit_bytes);
    }

    /// Read counters written by [`MemTraffic::encode_state`].
    pub fn decode_state(d: &mut Dec) -> Result<Self, SnapError> {
        Ok(MemTraffic {
            bytes_read: d.u64()?,
            bytes_written: d.u64()?,
            cache_hit_bytes: d.u64()?,
        })
    }

    /// Total off-chip bytes moved.
    pub fn total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// This run's off-chip traffic as a fraction of `base`'s (Figure 11).
    pub fn normalized_to(&self, base: &MemTraffic) -> f64 {
        self.total() as f64 / base.total().max(1) as f64
    }
}

impl AddAssign for MemTraffic {
    fn add_assign(&mut self, rhs: Self) {
        self.bytes_read += rhs.bytes_read;
        self.bytes_written += rhs.bytes_written;
        self.cache_hit_bytes += rhs.cache_hit_bytes;
    }
}

impl fmt::Display for MemTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B read + {} B written (cache hits {} B)",
            self.bytes_read, self.bytes_written, self.cache_hit_bytes
        )
    }
}

/// SRF traffic by access class, in words (Figure 13 reports these divided by
/// main-loop cycles as sustained words/cycle/lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrfTraffic {
    /// Words moved by sequential block accesses.
    pub seq_words: u64,
    /// Words moved by in-lane indexed accesses.
    pub inlane_words: u64,
    /// Words moved by cross-lane indexed accesses.
    pub crosslane_words: u64,
}

impl SrfTraffic {
    /// Total SRF words moved.
    pub fn total(&self) -> u64 {
        self.seq_words + self.inlane_words + self.crosslane_words
    }

    /// Sustained bandwidth demand in words per cycle per lane over `cycles`
    /// on an `lanes`-lane machine, per class `[seq, crosslane, inlane]`
    /// (the stacking order of Figure 13).
    pub fn per_cycle_per_lane(&self, cycles: u64, lanes: usize) -> [f64; 3] {
        let d = (cycles.max(1) as f64) * lanes as f64;
        [
            self.seq_words as f64 / d,
            self.crosslane_words as f64 / d,
            self.inlane_words as f64 / d,
        ]
    }
}

impl AddAssign for SrfTraffic {
    fn add_assign(&mut self, rhs: Self) {
        self.seq_words += rhs.seq_words;
        self.inlane_words += rhs.inlane_words;
        self.crosslane_words += rhs.crosslane_words;
    }
}

impl fmt::Display for SrfTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seq + {} in-lane + {} cross-lane words",
            self.seq_words, self.inlane_words, self.crosslane_words
        )
    }
}

/// Complete statistics for one benchmark run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Total machine cycles simulated.
    pub cycles: u64,
    /// Execution-time breakdown.
    pub breakdown: Breakdown,
    /// Off-chip traffic.
    pub mem: MemTraffic,
    /// SRF traffic by class.
    pub srf: SrfTraffic,
    /// Cycles spent inside kernel main loops (denominator for Figure 13).
    pub main_loop_cycles: u64,
}

impl RunStats {
    /// Write every counter into a snapshot encoder.
    pub fn encode_state(&self, e: &mut Enc) {
        e.u64(self.cycles);
        e.u64(self.breakdown.kernel_loop);
        e.u64(self.breakdown.mem_stall);
        e.u64(self.breakdown.srf_stall);
        e.u64(self.breakdown.overhead);
        self.mem.encode_state(e);
        e.u64(self.srf.seq_words);
        e.u64(self.srf.inlane_words);
        e.u64(self.srf.crosslane_words);
        e.u64(self.main_loop_cycles);
    }

    /// Read counters written by [`RunStats::encode_state`].
    pub fn decode_state(d: &mut Dec) -> Result<Self, SnapError> {
        Ok(RunStats {
            cycles: d.u64()?,
            breakdown: Breakdown {
                kernel_loop: d.u64()?,
                mem_stall: d.u64()?,
                srf_stall: d.u64()?,
                overhead: d.u64()?,
            },
            mem: MemTraffic::decode_state(d)?,
            srf: SrfTraffic {
                seq_words: d.u64()?,
                inlane_words: d.u64()?,
                crosslane_words: d.u64()?,
            },
            main_loop_cycles: d.u64()?,
        })
    }

    /// Speedup of this run relative to `base` (ratio of total cycles).
    pub fn speedup_over(&self, base: &RunStats) -> f64 {
        base.cycles as f64 / self.cycles.max(1) as f64
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: Self) {
        self.cycles += rhs.cycles;
        self.breakdown += rhs.breakdown;
        self.mem += rhs.mem;
        self.srf += rhs.srf;
        self.main_loop_cycles += rhs.main_loop_cycles;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles [{}]; mem {}; srf {}",
            self.cycles, self.breakdown, self.mem, self.srf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Breakdown {
        Breakdown {
            kernel_loop: 600,
            mem_stall: 200,
            srf_stall: 100,
            overhead: 100,
        }
    }

    #[test]
    fn breakdown_totals_and_normalization() {
        let b = sample();
        assert_eq!(b.total(), 1000);
        let n = b.normalized_to(2000);
        assert_eq!(n, [0.3, 0.1, 0.05, 0.05]);
        assert!((n.iter().sum::<f64>() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = sample();
        b += sample();
        assert_eq!(b.total(), 2000);
        assert_eq!(b.kernel_loop, 1200);
    }

    #[test]
    fn mem_traffic_normalization() {
        let base = MemTraffic {
            bytes_read: 800,
            bytes_written: 200,
            cache_hit_bytes: 0,
        };
        let isrf = MemTraffic {
            bytes_read: 40,
            bytes_written: 10,
            cache_hit_bytes: 0,
        };
        assert!((isrf.normalized_to(&base) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn normalization_handles_zero_base() {
        let z = MemTraffic::default();
        assert_eq!(z.normalized_to(&z), 0.0);
        assert_eq!(Breakdown::default().normalized_to(0), [0.0; 4]);
    }

    #[test]
    fn srf_bandwidth_per_lane() {
        let t = SrfTraffic {
            seq_words: 8000,
            inlane_words: 4000,
            crosslane_words: 2000,
        };
        let [seq, xl, il] = t.per_cycle_per_lane(1000, 8);
        assert!((seq - 1.0).abs() < 1e-12);
        assert!((il - 0.5).abs() < 1e-12);
        assert!((xl - 0.25).abs() < 1e-12);
    }

    #[test]
    fn speedup() {
        let base = RunStats {
            cycles: 4110,
            ..RunStats::default()
        };
        let isrf = RunStats {
            cycles: 1000,
            ..RunStats::default()
        };
        assert!((isrf.speedup_over(&base) - 4.11).abs() < 1e-12);
    }

    #[test]
    fn run_stats_accumulate() {
        let mut a = RunStats {
            cycles: 10,
            main_loop_cycles: 5,
            ..RunStats::default()
        };
        a += a;
        assert_eq!(a.cycles, 20);
        assert_eq!(a.main_loop_cycles, 10);
    }
}
