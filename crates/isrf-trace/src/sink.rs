//! Event sinks: where the simulator's instrumentation lands.
//!
//! The simulator holds a [`Tracer`] — a two-variant enum rather than a
//! trait object so the disabled path is a single inlined discriminant
//! check with no indirect call. Call sites gate any event construction
//! that allocates or computes on [`Tracer::enabled`]:
//!
//! ```
//! use isrf_trace::{TraceEvent, Tracer};
//! let mut t = Tracer::recording(1024);
//! if t.enabled() {
//!     t.emit(7, TraceEvent::IdxGroupGrant);
//! }
//! assert_eq!(t.recorder().unwrap().ring().len(), 1);
//! ```

use crate::audit::AuditAccumulator;
use crate::event::{CycleAttr, IdxRejectReason, StallReason, TraceEvent};
use crate::metrics::{Histogram, MetricsRegistry};
use std::collections::VecDeque;

/// Anything that can receive stamped trace events.
///
/// The simulator itself uses the concrete [`Tracer`]; this trait exists so
/// external tooling (exporters, test harnesses) can consume event streams
/// generically.
pub trait TraceSink {
    /// Whether events should be constructed and recorded at all. Callers
    /// gate expensive event construction on this.
    fn enabled(&self) -> bool {
        true
    }

    /// Record `ev`, stamped with the machine cycle it occurred on.
    fn record(&mut self, cycle: u64, ev: TraceEvent);
}

/// A sink that drops everything; `enabled()` is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _cycle: u64, _ev: TraceEvent) {}
}

/// A bounded FIFO of stamped events; the oldest are dropped once `cap` is
/// reached (the drop count is kept).
#[derive(Debug, Clone, Default)]
pub struct RingBuffer {
    cap: usize,
    events: VecDeque<(u64, TraceEvent)>,
    dropped: u64,
}

impl RingBuffer {
    /// A ring holding at most `cap` events (`cap == 0` keeps nothing).
    pub fn new(cap: usize) -> Self {
        RingBuffer {
            cap,
            events: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No events held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.events.iter()
    }

    /// The last `n` events, oldest first, rendered one per line as
    /// `"  @<cycle> <event>"` — the trace tail attached to differential
    /// failure reports.
    pub fn tail_lines(&self, n: usize) -> Vec<String> {
        self.events
            .iter()
            .skip(self.events.len().saturating_sub(n))
            .map(|(c, ev)| format!("  @{c} {ev}"))
            .collect()
    }
}

impl TraceSink for RingBuffer {
    fn record(&mut self, cycle: u64, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((cycle, ev));
    }
}

/// Fixed-slot counters updated on every event — the hot-path side of the
/// metrics registry (no string keys, no maps).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    /// Cycles per Figure-12 attribution, indexed by [`CycleAttr::index`].
    pub cycle_attr: [u64; CycleAttr::COUNT],
    /// Kernel stall cycles per reason, indexed by [`StallReason::index`].
    pub stall_reason: [u64; StallReason::COUNT],
    /// Indexed-arbiter rejections per reason, indexed by
    /// [`IdxRejectReason::index`].
    pub idx_reject: [u64; IdxRejectReason::COUNT],
    /// Kernels dispatched.
    pub kernels: u64,
    /// Stage-1 sequential/conditional grants.
    pub seq_grants: u64,
    /// Words moved by sequential/conditional grants.
    pub seq_words: u64,
    /// Stage-1 grants to the indexed group.
    pub idx_group_grants: u64,
    /// In-lane indexed accesses served.
    pub idx_inlane: u64,
    /// Cross-lane indexed accesses served.
    pub idx_crosslane: u64,
    /// Indexed writes (in-lane scatter) among the above.
    pub idx_writes: u64,
    /// Total extra interconnect hops across cross-lane accesses.
    pub idx_hops: u64,
    /// Cycles the SRF port was pre-empted by a memory transfer.
    pub port_preemptions: u64,
    /// Memory transfers issued.
    pub transfers: u64,
    /// Words across issued transfers.
    pub transfer_words: u64,
    /// Vector-cache hits / misses / writebacks observed.
    pub cache_hits: u64,
    /// Vector-cache misses.
    pub cache_misses: u64,
    /// Vector-cache dirty-line writebacks.
    pub cache_writebacks: u64,
}

/// A recording sink: ring buffer + fixed-slot counters + occupancy
/// histograms + the streaming stall-attribution audit, all fed from one
/// event stream.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    ring: RingBuffer,
    counters: Counters,
    audit: AuditAccumulator,
    fifo_occupancy: Histogram,
    transfer_words: Histogram,
    crosslane_hops: Histogram,
}

impl Recorder {
    /// A recorder whose ring keeps the last `ring_cap` events. Counters,
    /// histograms and the audit observe every event regardless of ring
    /// evictions.
    pub fn new(ring_cap: usize) -> Self {
        Recorder {
            ring: RingBuffer::new(ring_cap),
            ..Recorder::default()
        }
    }

    /// The bounded raw-event window.
    pub fn ring(&self) -> &RingBuffer {
        &self.ring
    }

    /// The fixed-slot counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The streaming stall-attribution audit.
    pub fn audit(&self) -> &AuditAccumulator {
        &self.audit
    }

    /// Address-FIFO occupancy samples (one per indexed access).
    pub fn fifo_occupancy(&self) -> &Histogram {
        &self.fifo_occupancy
    }

    /// Build the hierarchical metrics registry from the recorded counters
    /// and histograms. Names are dot paths: `cycles.<attr>`,
    /// `kernel.stall.<reason>`, `srf.seq.*`, `srf.idx.*`, `mem.*`.
    pub fn registry(&self) -> MetricsRegistry {
        let c = &self.counters;
        let mut r = MetricsRegistry::new();
        for a in CycleAttr::ALL {
            r.set(&format!("cycles.{}", a.as_str()), c.cycle_attr[a.index()]);
        }
        for (i, reason) in [
            StallReason::SeqInStarved,
            StallReason::SeqInLatency,
            StallReason::SeqOutFull,
            StallReason::CondInStarved,
            StallReason::CondOutFull,
            StallReason::AddrFifoFull,
            StallReason::IdxDataNotReady,
        ]
        .into_iter()
        .enumerate()
        {
            r.set(
                &format!("kernel.stall.{}", reason.as_str()),
                c.stall_reason[i],
            );
        }
        for (i, reason) in [
            IdxRejectReason::SubarrayConflict,
            IdxRejectReason::BankPortBusy,
            IdxRejectReason::DataBufferFull,
        ]
        .into_iter()
        .enumerate()
        {
            r.set(
                &format!("srf.idx.reject.{}", reason.as_str()),
                c.idx_reject[i],
            );
        }
        r.set("kernel.dispatched", c.kernels);
        r.set("srf.seq.grants", c.seq_grants);
        r.set("srf.seq.words", c.seq_words);
        r.set("srf.idx.group_grants", c.idx_group_grants);
        r.set("srf.idx.inlane.accesses", c.idx_inlane);
        r.set("srf.idx.crosslane.accesses", c.idx_crosslane);
        r.set("srf.idx.writes", c.idx_writes);
        r.set("srf.idx.crosslane.extra_hops", c.idx_hops);
        r.set("srf.port.preemptions", c.port_preemptions);
        r.set("mem.transfers", c.transfers);
        r.set("mem.transfer.words", c.transfer_words);
        r.set("mem.cache.hits", c.cache_hits);
        r.set("mem.cache.misses", c.cache_misses);
        r.set("mem.cache.writebacks", c.cache_writebacks);
        r.set("trace.ring.dropped", self.ring.dropped());
        r.put_histogram("srf.idx.fifo_occupancy", self.fifo_occupancy.clone());
        r.put_histogram("mem.transfer.words.dist", self.transfer_words.clone());
        r.put_histogram("srf.idx.crosslane.hops.dist", self.crosslane_hops.clone());
        r
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, cycle: u64, ev: TraceEvent) {
        self.audit.observe(&ev);
        let c = &mut self.counters;
        match &ev {
            TraceEvent::Cycle(a) => c.cycle_attr[a.index()] += 1,
            TraceEvent::KernelStart { .. } => c.kernels += 1,
            TraceEvent::KernelEnd { .. } => {}
            TraceEvent::PortPreempted => c.port_preemptions += 1,
            TraceEvent::SeqGrant { words, .. } => {
                c.seq_grants += 1;
                c.seq_words += u64::from(*words);
            }
            TraceEvent::IdxGroupGrant => c.idx_group_grants += 1,
            TraceEvent::IdxAccess {
                write,
                crosslane,
                hops,
                fifo_after,
                ..
            } => {
                if *crosslane {
                    c.idx_crosslane += 1;
                    c.idx_hops += u64::from(*hops);
                    self.crosslane_hops.observe(u64::from(*hops));
                } else {
                    c.idx_inlane += 1;
                }
                if *write {
                    c.idx_writes += 1;
                }
                self.fifo_occupancy.observe(u64::from(*fifo_after));
            }
            TraceEvent::IdxReject { reason, .. } => c.idx_reject[reason.index()] += 1,
            TraceEvent::KernelStall { reason, .. } => c.stall_reason[reason.index()] += 1,
            TraceEvent::TransferStart { words, .. } => {
                c.transfers += 1;
                c.transfer_words += u64::from(*words);
                self.transfer_words.observe(u64::from(*words));
            }
            TraceEvent::TransferServed { .. } | TraceEvent::TransferDone { .. } => {}
            TraceEvent::CacheProbe { hit, writeback } => {
                if *hit {
                    c.cache_hits += 1;
                } else {
                    c.cache_misses += 1;
                }
                if *writeback {
                    c.cache_writebacks += 1;
                }
            }
        }
        self.ring.record(cycle, ev);
    }
}

/// The tracer handle the simulator owns. [`Tracer::Null`] is the default
/// and costs one inlined discriminant check per instrumentation site.
#[derive(Debug, Default)]
pub enum Tracer {
    /// Tracing off: events are neither constructed nor recorded.
    #[default]
    Null,
    /// Tracing on: events feed the boxed [`Recorder`].
    On(Box<Recorder>),
}

impl Tracer {
    /// A recording tracer whose ring keeps the last `ring_cap` events.
    pub fn recording(ring_cap: usize) -> Self {
        Tracer::On(Box::new(Recorder::new(ring_cap)))
    }

    /// Whether call sites should construct and emit events.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, Tracer::On(_))
    }

    /// Record `ev` at `cycle`. A no-op on [`Tracer::Null`]; call sites
    /// whose event construction is itself costly should gate on
    /// [`Tracer::enabled`] first.
    #[inline]
    pub fn emit(&mut self, cycle: u64, ev: TraceEvent) {
        if let Tracer::On(rec) = self {
            rec.record(cycle, ev);
        }
    }

    /// The recorder, when tracing is on.
    pub fn recorder(&self) -> Option<&Recorder> {
        match self {
            Tracer::Null => None,
            Tracer::On(rec) => Some(rec),
        }
    }

    /// Consume the tracer, returning the recorder when tracing was on.
    pub fn into_recorder(self) -> Option<Recorder> {
        match self {
            Tracer::Null => None,
            Tracer::On(rec) => Some(*rec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut t = Tracer::Null;
        assert!(!t.enabled());
        t.emit(0, TraceEvent::IdxGroupGrant);
        assert!(t.recorder().is_none());
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = RingBuffer::new(2);
        for c in 0..5u64 {
            ring.record(c, TraceEvent::Cycle(CycleAttr::Advance));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let cycles: Vec<u64> = ring.iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![3, 4]);
        let tail = ring.tail_lines(8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0], "  @3 cycle advance");
    }

    #[test]
    fn recorder_counters_survive_ring_eviction() {
        let mut t = Tracer::recording(1);
        for c in 0..10u64 {
            t.emit(c, TraceEvent::Cycle(CycleAttr::SrfStall));
        }
        t.emit(10, TraceEvent::SeqGrant { slot: 0, words: 16 });
        let rec = t.into_recorder().unwrap();
        assert_eq!(rec.ring().len(), 1);
        assert_eq!(rec.counters().cycle_attr[CycleAttr::SrfStall.index()], 10);
        assert_eq!(rec.counters().seq_words, 16);
        assert_eq!(rec.audit().attr_cycles(CycleAttr::SrfStall), 10);
    }

    #[test]
    fn registry_names_are_stable() {
        let mut t = Tracer::recording(16);
        t.emit(
            0,
            TraceEvent::IdxAccess {
                stream: 0,
                lane: 1,
                bank: 3,
                subarray: 0,
                write: false,
                crosslane: true,
                hops: 2,
                fifo_after: 5,
            },
        );
        t.emit(
            1,
            TraceEvent::IdxReject {
                stream: 0,
                lane: 1,
                crosslane: true,
                reason: IdxRejectReason::BankPortBusy,
            },
        );
        t.emit(
            2,
            TraceEvent::CacheProbe {
                hit: true,
                writeback: false,
            },
        );
        let r = t.recorder().unwrap().registry();
        assert_eq!(r.counter("srf.idx.crosslane.accesses"), 1);
        assert_eq!(r.counter("srf.idx.crosslane.extra_hops"), 2);
        assert_eq!(r.counter("srf.idx.reject.bank_port_busy"), 1);
        assert_eq!(r.counter("mem.cache.hits"), 1);
        assert_eq!(r.histogram("srf.idx.fifo_occupancy").unwrap().count(), 1);
    }
}
