//! Hierarchical counter/histogram metrics registry.
//!
//! Names are dot-separated paths (`srf.idx.inlane.grants`,
//! `mem.cache.hits`), so related metrics sort and render together. The
//! registry is a snapshot/reporting structure: the hot recording path uses
//! fixed-slot counters (see [`crate::sink::Recorder`]) and builds a
//! registry on demand.

use std::collections::BTreeMap;
use std::fmt;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `floor(log2(v + 1)) == i`, i.e.
/// `[2^i - 1, 2^(i+1) - 1)`; bucket 0 holds zeros. Exact count, sum, min
/// and max are kept alongside, so means are exact even though the shape is
/// approximate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let b = (64 - (v + 1).leading_zeros() - 1).min(31) as usize;
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| ((1u64 << i) - 1, c))
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Set counter `name` to `value` (creating it).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Record a histogram sample under `name` (creating the histogram).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Insert a pre-built histogram under `name` (skipped when empty).
    pub fn put_histogram(&mut self, name: &str, h: Histogram) {
        if h.count() > 0 {
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram stored under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one (counters add, histograms
    /// merge bucket-wise via re-observation of summary stats is lossy, so
    /// histograms from `other` overwrite only when absent here).
    pub fn absorb_counters(&mut self, other: &MetricsRegistry) {
        for (k, v) in other.counters() {
            self.inc(k, v);
        }
    }

    /// Render as an aligned plain-text table (counters, then histograms),
    /// dropping zero counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            if *v > 0 {
                out.push_str(&format!("{k:<width$}  {v}\n"));
            }
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("{k:<width$}  {h}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 2, 3, 7, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 113);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        // Buckets: [0,1) holds the two zeros; [1,3) holds 1,2; [3,7) holds
        // 3; [7,15) holds 7; [63,127) holds 100.
        assert_eq!(h.buckets(), vec![(0, 2), (1, 2), (3, 1), (7, 1), (63, 1)]);
    }

    #[test]
    fn registry_roundtrip_and_render() {
        let mut r = MetricsRegistry::new();
        r.inc("srf.seq.grants", 3);
        r.inc("srf.seq.grants", 2);
        r.inc("srf.idx.inlane.words", 0);
        r.observe("mem.transfer.words", 64);
        assert_eq!(r.counter("srf.seq.grants"), 5);
        assert_eq!(r.counter("missing"), 0);
        let text = r.render();
        assert!(text.contains("srf.seq.grants"));
        assert!(!text.contains("inlane.words"), "zero counters dropped");
        assert!(text.contains("mem.transfer.words"));
    }
}
