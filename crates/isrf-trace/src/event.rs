//! The typed event taxonomy emitted by the simulator.
//!
//! Events are deliberately flat and small: every field is a plain integer
//! or a short enum, so recording one is a few stores and the whole stream
//! can be post-processed (metrics, audit, Chrome export) without touching
//! simulator types. The only allocation is the kernel name on the rare
//! [`TraceEvent::KernelStart`].

use std::fmt;

/// Figure-12 attribution of one machine cycle while a program runs.
///
/// The machine emits exactly one [`TraceEvent::Cycle`] wherever it updates
/// its [`isrf_core::stats::Breakdown`], with the same classification, so
/// the event stream can be audited against the counters cycle for cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleAttr {
    /// Kernel dispatch overhead (sequencer issuing the kernel).
    Dispatch,
    /// The kernel advanced one cycle of its schedule. Split into loop body
    /// vs software-pipeline fill/drain only at kernel end (see
    /// [`TraceEvent::KernelEnd`]).
    Advance,
    /// The kernel stalled on an SRF condition.
    SrfStall,
    /// No kernel could run and memory transfers were in flight.
    MemStall,
    /// The kernel finished firing and is draining output buffers.
    Flush,
    /// The kernel's completion cycle (accounted as overhead).
    KernelFinish,
    /// Waiting on nothing measurable (zero-length dependence chains).
    Idle,
}

impl CycleAttr {
    /// Number of variants (sizes fixed-slot counter arrays).
    pub const COUNT: usize = 7;

    /// All variants, in counter-slot order.
    pub const ALL: [CycleAttr; CycleAttr::COUNT] = [
        CycleAttr::Dispatch,
        CycleAttr::Advance,
        CycleAttr::SrfStall,
        CycleAttr::MemStall,
        CycleAttr::Flush,
        CycleAttr::KernelFinish,
        CycleAttr::Idle,
    ];

    /// Stable counter-slot index of this attribution.
    pub fn index(self) -> usize {
        match self {
            CycleAttr::Dispatch => 0,
            CycleAttr::Advance => 1,
            CycleAttr::SrfStall => 2,
            CycleAttr::MemStall => 3,
            CycleAttr::Flush => 4,
            CycleAttr::KernelFinish => 5,
            CycleAttr::Idle => 6,
        }
    }

    /// Short lower-case name (metrics keys, trace track names).
    pub fn as_str(self) -> &'static str {
        match self {
            CycleAttr::Dispatch => "dispatch",
            CycleAttr::Advance => "advance",
            CycleAttr::SrfStall => "srf_stall",
            CycleAttr::MemStall => "mem_stall",
            CycleAttr::Flush => "flush",
            CycleAttr::KernelFinish => "kernel_finish",
            CycleAttr::Idle => "idle",
        }
    }
}

/// Why a kernel cycle stalled: the first blocking condition found, in
/// schedule order (the machine stalls whole-cycle, so one reason per
/// stall cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// A sequential/conditional-lane input buffer is empty (starved for
    /// SRF grants).
    SeqInStarved,
    /// Input data is buffered but still in its SRF access latency.
    SeqInLatency,
    /// A sequential output buffer is full (waiting for a drain grant).
    SeqOutFull,
    /// The shared conditional-input buffer cannot supply enough words.
    CondInStarved,
    /// The shared conditional-output buffer is full.
    CondOutFull,
    /// An indexed address FIFO is full (head-of-line blocking).
    AddrFifoFull,
    /// Indexed read data has not returned yet.
    IdxDataNotReady,
}

impl StallReason {
    /// Number of variants.
    pub const COUNT: usize = 7;

    /// Stable counter-slot index.
    pub fn index(self) -> usize {
        match self {
            StallReason::SeqInStarved => 0,
            StallReason::SeqInLatency => 1,
            StallReason::SeqOutFull => 2,
            StallReason::CondInStarved => 3,
            StallReason::CondOutFull => 4,
            StallReason::AddrFifoFull => 5,
            StallReason::IdxDataNotReady => 6,
        }
    }

    /// Short lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            StallReason::SeqInStarved => "seq_in_starved",
            StallReason::SeqInLatency => "seq_in_latency",
            StallReason::SeqOutFull => "seq_out_full",
            StallReason::CondInStarved => "cond_in_starved",
            StallReason::CondOutFull => "cond_out_full",
            StallReason::AddrFifoFull => "addr_fifo_full",
            StallReason::IdxDataNotReady => "idx_data_not_ready",
        }
    }
}

/// Why the stage-2 indexed arbiter rejected a FIFO head this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxRejectReason {
    /// The target sub-array already serves another access this cycle.
    SubarrayConflict,
    /// The target bank's cross-lane network ports are exhausted.
    BankPortBusy,
    /// The stream's data buffer has no room to land the read.
    DataBufferFull,
}

impl IdxRejectReason {
    /// Number of variants.
    pub const COUNT: usize = 3;

    /// Stable counter-slot index.
    pub fn index(self) -> usize {
        match self {
            IdxRejectReason::SubarrayConflict => 0,
            IdxRejectReason::BankPortBusy => 1,
            IdxRejectReason::DataBufferFull => 2,
        }
    }

    /// Short lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            IdxRejectReason::SubarrayConflict => "subarray_conflict",
            IdxRejectReason::BankPortBusy => "bank_port_busy",
            IdxRejectReason::DataBufferFull => "data_buffer_full",
        }
    }
}

/// One structured trace event. Cycle stamps live alongside the event in
/// the sink (`(cycle, TraceEvent)` pairs), not inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel was dispatched: program op index and kernel name.
    KernelStart {
        /// Program op index.
        op: u32,
        /// Kernel name.
        name: Box<str>,
    },
    /// A kernel completed, with its run counters. `body_cycles` is
    /// `iters × II`; the machine attributes `min(body, advance)` advanced
    /// cycles to the loop body and the rest to fill/drain overhead.
    KernelEnd {
        /// Program op index.
        op: u32,
        /// Steady-state loop-body cycles (`iters × II`).
        body_cycles: u64,
        /// Cycles in which the schedule advanced.
        advance_cycles: u64,
        /// Cycles stalled on SRF conditions.
        stall_cycles: u64,
        /// Cycles draining output buffers after the last fire.
        flush_cycles: u64,
    },
    /// Figure-12 attribution of this machine cycle.
    Cycle(CycleAttr),
    /// A memory transfer claimed the SRF port this cycle, pre-empting
    /// kernel stream grants.
    PortPreempted,
    /// Stage-1 arbitration granted the port to one sequential or
    /// conditional stream slot, which moved `words` words.
    SeqGrant {
        /// Kernel stream-slot index.
        slot: u8,
        /// Words moved by the grant.
        words: u16,
    },
    /// Stage-1 arbitration granted the port to the indexed group.
    IdxGroupGrant,
    /// One indexed SRAM access performed by the stage-2 arbiter.
    IdxAccess {
        /// Indexed-stream index (order of declaration among indexed
        /// streams).
        stream: u8,
        /// Requesting lane.
        lane: u8,
        /// SRF bank accessed (equals `lane` for in-lane accesses).
        bank: u8,
        /// Sub-array within the bank.
        subarray: u8,
        /// Write access (in-lane scatter)?
        write: bool,
        /// Cross-lane access over the index network?
        crosslane: bool,
        /// Extra interconnect hops beyond the first traversal (ring
        /// topologies; zero on a crossbar).
        hops: u8,
        /// Address-FIFO occupancy of `(stream, lane)` after the access.
        fifo_after: u8,
    },
    /// The stage-2 arbiter could not serve a pending FIFO head.
    IdxReject {
        /// Indexed-stream index.
        stream: u8,
        /// Requesting lane.
        lane: u8,
        /// Cross-lane request?
        crosslane: bool,
        /// Why it was rejected.
        reason: IdxRejectReason,
    },
    /// The kernel stalled this cycle; first blocking condition found.
    KernelStall {
        /// Kernel stream-slot index that blocked.
        slot: u8,
        /// The blocking condition.
        reason: StallReason,
    },
    /// A memory transfer was issued.
    TransferStart {
        /// Program op index.
        op: u32,
        /// Memory-system transfer id.
        id: u64,
        /// Words moved.
        words: u32,
        /// Store (vs load)?
        write: bool,
        /// Routed through the vector cache?
        cacheable: bool,
    },
    /// A transfer's last word was served; its access latency now runs.
    TransferServed {
        /// Memory-system transfer id.
        id: u64,
    },
    /// A transfer completed (data usable, dependences release).
    TransferDone {
        /// Program op index.
        op: u32,
        /// Memory-system transfer id.
        id: u64,
    },
    /// One word-granularity vector-cache probe.
    CacheProbe {
        /// The word was present.
        hit: bool,
        /// A dirty line was evicted.
        writeback: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::KernelStart { op, name } => write!(f, "kernel-start op={op} {name}"),
            TraceEvent::KernelEnd {
                op,
                body_cycles,
                advance_cycles,
                stall_cycles,
                flush_cycles,
            } => write!(
                f,
                "kernel-end op={op} body={body_cycles} advance={advance_cycles} \
                 stall={stall_cycles} flush={flush_cycles}"
            ),
            TraceEvent::Cycle(a) => write!(f, "cycle {}", a.as_str()),
            TraceEvent::PortPreempted => write!(f, "srf-port preempted by memory"),
            TraceEvent::SeqGrant { slot, words } => {
                write!(f, "seq-grant slot={slot} words={words}")
            }
            TraceEvent::IdxGroupGrant => write!(f, "idx-group grant"),
            TraceEvent::IdxAccess {
                stream,
                lane,
                bank,
                subarray,
                write,
                crosslane,
                hops,
                fifo_after,
            } => write!(
                f,
                "idx-{} stream={stream} lane={lane} bank={bank} sub={subarray}{}{} fifo={fifo_after}",
                if *write { "write" } else { "read" },
                if *crosslane { " crosslane" } else { "" },
                if *hops > 0 {
                    format!(" hops={hops}")
                } else {
                    String::new()
                },
            ),
            TraceEvent::IdxReject {
                stream,
                lane,
                crosslane,
                reason,
            } => write!(
                f,
                "idx-reject stream={stream} lane={lane}{} {}",
                if *crosslane { " crosslane" } else { "" },
                reason.as_str()
            ),
            TraceEvent::KernelStall { slot, reason } => {
                write!(f, "kernel-stall slot={slot} {}", reason.as_str())
            }
            TraceEvent::TransferStart {
                op,
                id,
                words,
                write,
                cacheable,
            } => write!(
                f,
                "transfer-start op={op} id={id} {} {words}w{}",
                if *write { "store" } else { "load" },
                if *cacheable { " cacheable" } else { "" }
            ),
            TraceEvent::TransferServed { id } => write!(f, "transfer-served id={id}"),
            TraceEvent::TransferDone { op, id } => write!(f, "transfer-done op={op} id={id}"),
            TraceEvent::CacheProbe { hit, writeback } => write!(
                f,
                "cache-{}{}",
                if *hit { "hit" } else { "miss" },
                if *writeback { " writeback" } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_indices_are_dense_and_stable() {
        for (i, a) in CycleAttr::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
    }

    #[test]
    fn display_is_compact() {
        let e = TraceEvent::IdxAccess {
            stream: 1,
            lane: 2,
            bank: 5,
            subarray: 3,
            write: false,
            crosslane: true,
            hops: 2,
            fifo_after: 4,
        };
        assert_eq!(
            e.to_string(),
            "idx-read stream=1 lane=2 bank=5 sub=3 crosslane hops=2 fifo=4"
        );
        assert_eq!(
            TraceEvent::Cycle(CycleAttr::SrfStall).to_string(),
            "cycle srf_stall"
        );
    }
}
