//! Stall-attribution audit: reconstruct the Figure-12 [`Breakdown`] from
//! the event stream and cross-check it against the simulator's counters.
//!
//! The accumulator is streaming and O(1): it observes every event as it is
//! recorded, so the audit stays exact even when the ring buffer holding
//! raw events is bounded and drops old entries.
//!
//! Reconstruction rules (mirroring `Machine::run`'s accounting):
//!
//! - `srf_stall` = count of `Cycle(SrfStall)`
//! - `mem_stall` = count of `Cycle(MemStall)`
//! - `kernel_loop` = Σ over `KernelEnd` of `min(body_cycles, advance_cycles)`
//! - `overhead` = count of `Cycle(Dispatch | Flush | KernelFinish | Idle)`
//!   + Σ over `KernelEnd` of `advance_cycles − min(body_cycles, advance_cycles)`
//!
//! The machine attributes each advanced cycle to `kernel_loop` or
//! `overhead` only when the kernel retires (the loop-body/fill-drain split
//! needs the final iteration count), so the audit does the same.
//!
//! Note the four components are compared individually and never against
//! the raw cycle count: the cycle in which the final memory transfer of a
//! program completes legitimately receives no attribution, so
//! `Breakdown::total()` may undercount `RunStats::cycles` by design.

use crate::event::{CycleAttr, TraceEvent};
use isrf_core::stats::Breakdown;
use std::fmt;

/// One component mismatch found by [`AuditAccumulator::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditMismatch {
    /// Breakdown component name (`kernel_loop`, `mem_stall`, `srf_stall`,
    /// `overhead`) or internal consistency check name.
    pub component: &'static str,
    /// Value reconstructed from the event stream.
    pub derived: u64,
    /// Value reported by the simulator's counters.
    pub reported: u64,
}

impl fmt::Display for AuditMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: events say {}, counters say {}",
            self.component, self.derived, self.reported
        )
    }
}

/// Streaming reconstruction of the Figure-12 breakdown from trace events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditAccumulator {
    attr: [u64; CycleAttr::COUNT],
    kernel_loop: u64,
    fill_drain: u64,
    kernel_advance: u64,
    kernel_stall: u64,
    kernels_started: u64,
    kernels_ended: u64,
}

impl AuditAccumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        AuditAccumulator::default()
    }

    /// Feed one event. Call for every event recorded, in order.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Cycle(a) => self.attr[a.index()] += 1,
            TraceEvent::KernelStart { .. } => self.kernels_started += 1,
            TraceEvent::KernelEnd {
                body_cycles,
                advance_cycles,
                stall_cycles,
                ..
            } => {
                let body = (*body_cycles).min(*advance_cycles);
                self.kernel_loop += body;
                self.fill_drain += *advance_cycles - body;
                self.kernel_advance += *advance_cycles;
                self.kernel_stall += *stall_cycles;
                self.kernels_ended += 1;
            }
            _ => {}
        }
    }

    /// Cycles attributed to `a` so far.
    pub fn attr_cycles(&self, a: CycleAttr) -> u64 {
        self.attr[a.index()]
    }

    /// Kernels seen starting / ending so far.
    pub fn kernel_counts(&self) -> (u64, u64) {
        (self.kernels_started, self.kernels_ended)
    }

    /// The breakdown reconstructed from the events observed so far.
    ///
    /// Only meaningful once every dispatched kernel has retired (advanced
    /// cycles are split into loop body vs fill/drain at `KernelEnd`).
    pub fn derived(&self) -> Breakdown {
        Breakdown {
            kernel_loop: self.kernel_loop,
            mem_stall: self.attr[CycleAttr::MemStall.index()],
            srf_stall: self.attr[CycleAttr::SrfStall.index()],
            overhead: self.attr[CycleAttr::Dispatch.index()]
                + self.attr[CycleAttr::Flush.index()]
                + self.attr[CycleAttr::KernelFinish.index()]
                + self.attr[CycleAttr::Idle.index()]
                + self.fill_drain,
        }
    }

    /// Cross-check the reconstruction against the simulator's counters.
    ///
    /// Returns every mismatch found (empty = audit passed). Besides the
    /// four breakdown components this also checks internal stream
    /// consistency: per-cycle `Advance`/`SrfStall` events must agree with
    /// the per-kernel totals reported at `KernelEnd`, and every dispatched
    /// kernel must have retired.
    pub fn verify(&self, reported: &Breakdown) -> Vec<AuditMismatch> {
        let d = self.derived();
        let mut out = Vec::new();
        let mut check = |component, derived, reported| {
            if derived != reported {
                out.push(AuditMismatch {
                    component,
                    derived,
                    reported,
                });
            }
        };
        check("kernel_loop", d.kernel_loop, reported.kernel_loop);
        check("mem_stall", d.mem_stall, reported.mem_stall);
        check("srf_stall", d.srf_stall, reported.srf_stall);
        check("overhead", d.overhead, reported.overhead);
        check(
            "cycle(advance) vs kernel-end advance totals",
            self.attr[CycleAttr::Advance.index()],
            self.kernel_advance,
        );
        check(
            "cycle(srf_stall) vs kernel-end stall totals",
            self.attr[CycleAttr::SrfStall.index()],
            self.kernel_stall,
        );
        check(
            "kernels started vs ended",
            self.kernels_started,
            self.kernels_ended,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_end(body: u64, advance: u64, stall: u64) -> TraceEvent {
        TraceEvent::KernelEnd {
            op: 0,
            body_cycles: body,
            advance_cycles: advance,
            stall_cycles: stall,
            flush_cycles: 0,
        }
    }

    #[test]
    fn reconstructs_breakdown_from_synthetic_stream() {
        let mut a = AuditAccumulator::new();
        a.observe(&TraceEvent::KernelStart {
            op: 0,
            name: "k".into(),
        });
        // 2 dispatch, 10 advance (8 body + 2 fill/drain), 3 srf stall,
        // 1 finish, then 4 mem stall and 1 idle.
        for _ in 0..2 {
            a.observe(&TraceEvent::Cycle(CycleAttr::Dispatch));
        }
        for _ in 0..10 {
            a.observe(&TraceEvent::Cycle(CycleAttr::Advance));
        }
        for _ in 0..3 {
            a.observe(&TraceEvent::Cycle(CycleAttr::SrfStall));
        }
        a.observe(&kernel_end(8, 10, 3));
        a.observe(&TraceEvent::Cycle(CycleAttr::KernelFinish));
        for _ in 0..4 {
            a.observe(&TraceEvent::Cycle(CycleAttr::MemStall));
        }
        a.observe(&TraceEvent::Cycle(CycleAttr::Idle));

        let expect = Breakdown {
            kernel_loop: 8,
            mem_stall: 4,
            srf_stall: 3,
            overhead: 2 + 1 + 1 + 2, // dispatch + finish + idle + fill/drain
        };
        assert_eq!(a.derived(), expect);
        assert!(a.verify(&expect).is_empty());
    }

    #[test]
    fn verify_reports_each_mismatch() {
        let mut a = AuditAccumulator::new();
        a.observe(&TraceEvent::Cycle(CycleAttr::SrfStall));
        // Stall cycle with no matching KernelEnd totals and a breakdown
        // that disagrees on two components.
        let wrong = Breakdown {
            kernel_loop: 5,
            mem_stall: 0,
            srf_stall: 0,
            overhead: 0,
        };
        let errs = a.verify(&wrong);
        let components: Vec<_> = errs.iter().map(|e| e.component).collect();
        assert!(components.contains(&"kernel_loop"));
        assert!(components.contains(&"srf_stall"));
        assert!(components.contains(&"cycle(srf_stall) vs kernel-end stall totals"));
        let shown = errs[0].to_string();
        assert!(shown.contains("events say"), "{shown}");
    }

    #[test]
    fn short_kernel_splits_advance_into_fill_drain() {
        // advance < body (early-terminated conditional kernel): the whole
        // advance count is loop body, nothing goes to overhead.
        let mut a = AuditAccumulator::new();
        a.observe(&TraceEvent::KernelStart {
            op: 1,
            name: "k".into(),
        });
        for _ in 0..5 {
            a.observe(&TraceEvent::Cycle(CycleAttr::Advance));
        }
        a.observe(&kernel_end(9, 5, 0));
        let d = a.derived();
        assert_eq!(d.kernel_loop, 5);
        assert_eq!(d.overhead, 0);
    }
}
