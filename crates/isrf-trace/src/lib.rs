//! Cycle-attributed instrumentation for the indexed-SRF simulator.
//!
//! This crate is the observability layer of the workspace: the simulator
//! (`isrf-sim`, `isrf-mem`) emits typed [`TraceEvent`]s into a
//! [`Tracer`], and everything downstream — metrics, audits, trace files —
//! is a pure function of that event stream.
//!
//! - [`event`] — the event taxonomy: per-cycle Figure-12 attribution
//!   ([`CycleAttr`]), kernel stall reasons ([`StallReason`]),
//!   indexed-arbiter rejections ([`IdxRejectReason`]), SRF grants, memory
//!   transfer lifecycle, cache probes.
//! - [`sink`] — where events land: the [`TraceSink`] trait with
//!   [`NullSink`] and bounded [`RingBuffer`] impls, the fixed-slot
//!   [`Recorder`], and the [`Tracer`] handle the simulator owns
//!   (zero-cost when `Null`).
//! - [`metrics`] — the hierarchical [`MetricsRegistry`] of dot-path-named
//!   counters and power-of-two [`Histogram`]s, built from a recorder.
//! - [`audit`] — [`AuditAccumulator`]: streaming reconstruction of the
//!   Figure-12 [`isrf_core::stats::Breakdown`] from events, cross-checked
//!   component-for-component against the simulator's own counters.
//! - [`chrome`] — Chrome trace-event JSON export (open in
//!   `chrome://tracing` or Perfetto).
//! - [`timeline`] — a plain-text strip-chart renderer.
//! - [`json`] — string escaping and a syntax validator for the
//!   hand-rolled emitters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod timeline;

pub use audit::{AuditAccumulator, AuditMismatch};
pub use event::{CycleAttr, IdxRejectReason, StallReason, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{Counters, NullSink, Recorder, RingBuffer, TraceSink, Tracer};
