//! Minimal JSON helpers: string escaping for the hand-rolled emitters and
//! a recursive-descent syntax validator for smoke tests.
//!
//! This is deliberately not a JSON library — the exporters build output by
//! writing into a `String`, and the validator checks well-formedness only
//! (no value model, no number parsing beyond shape).

/// Append `s` to `out` with JSON string escaping applied (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` with JSON string escaping applied (no surrounding quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Validate that `s` is a single well-formed JSON value (syntax only).
///
/// Returns `Err((byte_offset, message))` on the first problem found.
pub fn validate(s: &str) -> Result<(), (usize, &'static str)> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err((p.i, "trailing data after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8, msg: &'static str) -> Result<(), (usize, &'static str)> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err((self.i, msg))
        }
    }

    fn value(&mut self) -> Result<(), (usize, &'static str)> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err((self.i, "expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), (usize, &'static str)> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err((self.i, "malformed literal"))
        }
    }

    fn object(&mut self) -> Result<(), (usize, &'static str)> {
        self.expect(b'{', "expected '{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err((self.i, "expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), (usize, &'static str)> {
        self.expect(b'[', "expected '['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err((self.i, "expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), (usize, &'static str)> {
        self.expect(b'"', "expected '\"'")?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or((self.i, "unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or((self.i, "short \\u escape"))?;
                                if !h.is_ascii_hexdigit() {
                                    return Err((self.i, "bad \\u escape digit"));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err((self.i - 1, "invalid escape character")),
                    }
                }
                0x00..=0x1f => return Err((self.i - 1, "raw control character in string")),
                _ => {}
            }
        }
        Err((self.i, "unterminated string"))
    }

    fn number(&mut self) -> Result<(), (usize, &'static str)> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err((self.i, "expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err((self.i, "expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err((self.i, "expected digits in exponent"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslash_and_controls() {
        assert_eq!(escaped(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escaped(r"a\b"), r"a\\b");
        assert_eq!(escaped("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escaped("\u{01}"), "\\u0001");
        assert_eq!(escaped("plain μ✓"), "plain μ✓");
    }

    #[test]
    fn escaped_strings_validate() {
        let tricky = "ker\"nel\\ name\nwith\u{02}controls";
        let doc = format!("{{\"name\": \"{}\"}}", escaped(tricky));
        validate(&doc).unwrap();
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            r#"{"a": [1, 2, {"b": "cé"}], "d": false}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e:?}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1.",
            "1e",
            "[1] extra",
            "{'single': 1}",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }
}
