//! Hand-rolled Chrome trace-event JSON exporter.
//!
//! Produces the JSON-array flavor of the Trace Event Format, loadable in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Timestamps
//! are machine cycles (1 "µs" = 1 cycle).
//!
//! Track layout:
//!
//! - **pid 1 `sim`** — tid 0: kernel executions as complete (`"X"`) spans;
//!   tid 1: per-cycle Figure-12 attribution, with consecutive
//!   identically-attributed cycles collapsed into one span; counter
//!   (`"C"`) tracks for SRF-port grants, indexed accesses/rejections,
//!   kernel stall reasons, and address-FIFO occupancy, each aggregated
//!   into [`BUCKET`]-cycle buckets to bound file size.
//! - **pid 2 `mem`** — transfer lifetime spans (`TransferStart` →
//!   `TransferDone`, striped across 8 tids by id) and bucketed
//!   vector-cache hit/miss/writeback counters.
//!
//! The exporter is a pure function of the event stream: deterministic
//! output (BTree-ordered state, stable sort by timestamp) so golden-file
//! tests are byte-exact.

use crate::event::{CycleAttr, StallReason, TraceEvent};
use crate::json::escape_into;
use std::collections::BTreeMap;

/// Cycles per aggregation bucket for counter tracks.
pub const BUCKET: u64 = 64;

const PID_SIM: u32 = 1;
const PID_MEM: u32 = 2;
const TID_KERNELS: u32 = 0;
const TID_CYCLES: u32 = 1;
const TID_PORT: u32 = 2;
const TID_IDX: u32 = 3;
const TID_STALLS: u32 = 4;
const TID_FIFO: u32 = 5;
const MEM_TRANSFER_TIDS: u64 = 8;

struct Emitted {
    ts: u64,
    json: String,
}

struct Writer {
    out: Vec<Emitted>,
}

impl Writer {
    fn span(&mut self, pid: u32, tid: u32, ts: u64, dur: u64, name: &str, args: &[(&str, String)]) {
        let mut j = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":\""
        );
        escape_into(&mut j, name);
        j.push('"');
        push_args(&mut j, args);
        j.push('}');
        self.out.push(Emitted { ts, json: j });
    }

    fn counter(&mut self, pid: u32, tid: u32, ts: u64, name: &str, args: &[(&str, String)]) {
        let mut j = format!("{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"");
        escape_into(&mut j, name);
        j.push('"');
        push_args(&mut j, args);
        j.push('}');
        self.out.push(Emitted { ts, json: j });
    }

    fn meta(&mut self, pid: u32, tid: Option<u32>, what: &str, name: &str) {
        let mut j = format!("{{\"ph\":\"M\",\"pid\":{pid}");
        if let Some(tid) = tid {
            j.push_str(&format!(",\"tid\":{tid}"));
        }
        j.push_str(&format!(",\"name\":\"{what}\",\"args\":{{\"name\":\""));
        escape_into(&mut j, name);
        j.push_str("\"}}");
        self.out.push(Emitted { ts: 0, json: j });
    }
}

fn push_args(j: &mut String, args: &[(&str, String)]) {
    if args.is_empty() {
        return;
    }
    j.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push('"');
        escape_into(j, k);
        j.push_str("\":");
        j.push_str(v);
    }
    j.push('}');
}

#[derive(Default)]
struct Buckets {
    port: BTreeMap<u64, [u64; 3]>, // seq, idx_group, preempt
    idx: BTreeMap<u64, [u64; 3]>,  // inlane, crosslane, reject
    stalls: BTreeMap<u64, [u64; StallReason::COUNT]>,
    fifo_max: BTreeMap<u64, u64>,
    cache: BTreeMap<u64, [u64; 3]>, // hits, misses, writebacks
}

/// Export a stamped event stream as a Chrome trace-event JSON document.
///
/// `events` must be in recording order (cycle stamps non-decreasing), as
/// produced by [`crate::RingBuffer::iter`]. Spans still open when the
/// stream ends (a kernel with no `KernelEnd`, a transfer with no
/// `TransferDone` — e.g. after a differential failure) are closed at the
/// last seen cycle and tagged `"incomplete"`.
pub fn export<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a (u64, TraceEvent)>,
{
    let mut w = Writer { out: Vec::new() };
    w.meta(PID_SIM, None, "process_name", "sim");
    w.meta(PID_SIM, Some(TID_KERNELS), "thread_name", "kernels");
    w.meta(
        PID_SIM,
        Some(TID_CYCLES),
        "thread_name",
        "cycle attribution",
    );
    w.meta(PID_SIM, Some(TID_PORT), "thread_name", "srf port grants");
    w.meta(PID_SIM, Some(TID_IDX), "thread_name", "indexed accesses");
    w.meta(PID_SIM, Some(TID_STALLS), "thread_name", "kernel stalls");
    w.meta(
        PID_SIM,
        Some(TID_FIFO),
        "thread_name",
        "addr fifo occupancy",
    );
    w.meta(PID_MEM, None, "process_name", "mem");
    w.meta(PID_MEM, Some(0), "thread_name", "vector cache");
    for t in 0..MEM_TRANSFER_TIDS {
        w.meta(
            PID_MEM,
            Some(t as u32 + 1),
            "thread_name",
            &format!("transfers {t}"),
        );
    }

    let mut buckets = Buckets::default();
    // Open-span state, keyed for determinism.
    let mut open_kernels: BTreeMap<u32, (u64, Box<str>)> = BTreeMap::new();
    let mut open_transfers: BTreeMap<u64, OpenTransfer> = BTreeMap::new();
    // Run-length state for the attribution track.
    let mut attr_run: Option<(CycleAttr, u64, u64)> = None; // (attr, start, len)
    let mut last_cycle = 0u64;

    let flush_attr = |w: &mut Writer, run: &mut Option<(CycleAttr, u64, u64)>| {
        if let Some((attr, start, len)) = run.take() {
            w.span(PID_SIM, TID_CYCLES, start, len, attr.as_str(), &[]);
        }
    };

    for (cycle, ev) in events {
        let cycle = *cycle;
        last_cycle = last_cycle.max(cycle);
        let bucket = (cycle / BUCKET) * BUCKET;
        match ev {
            TraceEvent::Cycle(a) => {
                match &mut attr_run {
                    Some((attr, start, len)) if *attr == *a && *start + *len == cycle => *len += 1,
                    _ => {
                        flush_attr(&mut w, &mut attr_run);
                        attr_run = Some((*a, cycle, 1));
                    }
                }
                continue;
            }
            TraceEvent::KernelStart { op, name } => {
                open_kernels.insert(*op, (cycle, name.clone()));
            }
            TraceEvent::KernelEnd {
                op,
                body_cycles,
                advance_cycles,
                stall_cycles,
                flush_cycles,
            } => {
                let (start, name) = open_kernels
                    .remove(op)
                    .unwrap_or((cycle, format!("op{op}").into()));
                w.span(
                    PID_SIM,
                    TID_KERNELS,
                    start,
                    (cycle - start).max(1),
                    &name,
                    &[
                        ("op", op.to_string()),
                        ("body_cycles", body_cycles.to_string()),
                        ("advance_cycles", advance_cycles.to_string()),
                        ("stall_cycles", stall_cycles.to_string()),
                        ("flush_cycles", flush_cycles.to_string()),
                    ],
                );
            }
            TraceEvent::PortPreempted => buckets.port.entry(bucket).or_default()[2] += 1,
            TraceEvent::SeqGrant { .. } => buckets.port.entry(bucket).or_default()[0] += 1,
            TraceEvent::IdxGroupGrant => buckets.port.entry(bucket).or_default()[1] += 1,
            TraceEvent::IdxAccess {
                crosslane,
                fifo_after,
                ..
            } => {
                let slot = if *crosslane { 1 } else { 0 };
                buckets.idx.entry(bucket).or_default()[slot] += 1;
                let m = buckets.fifo_max.entry(bucket).or_default();
                *m = (*m).max(u64::from(*fifo_after));
            }
            TraceEvent::IdxReject { .. } => buckets.idx.entry(bucket).or_default()[2] += 1,
            TraceEvent::KernelStall { reason, .. } => {
                buckets.stalls.entry(bucket).or_default()[reason.index()] += 1;
            }
            TraceEvent::TransferStart {
                op,
                id,
                words,
                write,
                cacheable,
            } => {
                open_transfers.insert(
                    *id,
                    OpenTransfer {
                        start: cycle,
                        op: *op,
                        words: *words,
                        write: *write,
                        cacheable: *cacheable,
                        served: None,
                    },
                );
            }
            TraceEvent::TransferServed { id } => {
                if let Some(t) = open_transfers.get_mut(id) {
                    t.served = Some(cycle);
                }
            }
            TraceEvent::TransferDone { op, id } => {
                let t = open_transfers.remove(id).unwrap_or(OpenTransfer {
                    start: cycle,
                    op: *op,
                    words: 0,
                    write: false,
                    cacheable: false,
                    served: None,
                });
                emit_transfer(&mut w, *id, cycle, &t, false);
            }
            TraceEvent::CacheProbe { hit, writeback } => {
                let c = buckets.cache.entry(bucket).or_default();
                if *hit {
                    c[0] += 1;
                } else {
                    c[1] += 1;
                }
                if *writeback {
                    c[2] += 1;
                }
            }
        }
    }
    flush_attr(&mut w, &mut attr_run);
    for (op, (start, name)) in &open_kernels {
        w.span(
            PID_SIM,
            TID_KERNELS,
            *start,
            (last_cycle - start).max(1),
            name,
            &[("op", op.to_string()), ("incomplete", "true".to_string())],
        );
    }
    for (id, t) in &open_transfers {
        emit_transfer(&mut w, *id, last_cycle.max(t.start + 1), t, true);
    }

    for (ts, c) in &buckets.port {
        w.counter(
            PID_SIM,
            TID_PORT,
            *ts,
            "srf port grants",
            &[
                ("seq", c[0].to_string()),
                ("idx_group", c[1].to_string()),
                ("preempt", c[2].to_string()),
            ],
        );
    }
    for (ts, c) in &buckets.idx {
        w.counter(
            PID_SIM,
            TID_IDX,
            *ts,
            "indexed accesses",
            &[
                ("inlane", c[0].to_string()),
                ("crosslane", c[1].to_string()),
                ("rejected", c[2].to_string()),
            ],
        );
    }
    for (ts, c) in &buckets.stalls {
        let args: Vec<(&str, String)> = [
            StallReason::SeqInStarved,
            StallReason::SeqInLatency,
            StallReason::SeqOutFull,
            StallReason::CondInStarved,
            StallReason::CondOutFull,
            StallReason::AddrFifoFull,
            StallReason::IdxDataNotReady,
        ]
        .into_iter()
        .filter(|r| c[r.index()] > 0)
        .map(|r| (r.as_str(), c[r.index()].to_string()))
        .collect();
        w.counter(PID_SIM, TID_STALLS, *ts, "kernel stalls", &args);
    }
    for (ts, m) in &buckets.fifo_max {
        w.counter(
            PID_SIM,
            TID_FIFO,
            *ts,
            "addr fifo occupancy",
            &[("max", m.to_string())],
        );
    }
    for (ts, c) in &buckets.cache {
        w.counter(
            PID_MEM,
            0,
            *ts,
            "vector cache",
            &[
                ("hits", c[0].to_string()),
                ("misses", c[1].to_string()),
                ("writebacks", c[2].to_string()),
            ],
        );
    }

    w.out.sort_by_key(|e| e.ts);
    let mut doc = String::with_capacity(w.out.len() * 96 + 64);
    doc.push_str("[\n");
    for (i, e) in w.out.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(&e.json);
    }
    doc.push_str("\n]\n");
    doc
}

struct OpenTransfer {
    start: u64,
    op: u32,
    words: u32,
    write: bool,
    cacheable: bool,
    served: Option<u64>,
}

fn emit_transfer(w: &mut Writer, id: u64, end: u64, t: &OpenTransfer, incomplete: bool) {
    let name = format!(
        "{} {}w op{}",
        if t.write { "store" } else { "load" },
        t.words,
        t.op
    );
    let mut args = vec![
        ("id", id.to_string()),
        ("words", t.words.to_string()),
        ("cacheable", t.cacheable.to_string()),
    ];
    if let Some(s) = t.served {
        args.push(("served_at", s.to_string()));
    }
    if incomplete {
        args.push(("incomplete", "true".to_string()));
    }
    w.span(
        PID_MEM,
        (id % MEM_TRANSFER_TIDS) as u32 + 1,
        t.start,
        (end - t.start).max(1),
        &name,
        &args,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<(u64, TraceEvent)> {
        vec![
            (
                0,
                TraceEvent::TransferStart {
                    op: 0,
                    id: 1,
                    words: 64,
                    write: false,
                    cacheable: true,
                },
            ),
            (
                1,
                TraceEvent::KernelStart {
                    op: 1,
                    name: "fft \"stage1\"\n".into(),
                },
            ),
            (1, TraceEvent::Cycle(CycleAttr::Dispatch)),
            (2, TraceEvent::Cycle(CycleAttr::Dispatch)),
            (3, TraceEvent::Cycle(CycleAttr::Advance)),
            (4, TraceEvent::Cycle(CycleAttr::Advance)),
            (
                5,
                TraceEvent::KernelStall {
                    slot: 0,
                    reason: StallReason::SeqInStarved,
                },
            ),
            (5, TraceEvent::Cycle(CycleAttr::SrfStall)),
            (6, TraceEvent::Cycle(CycleAttr::Advance)),
            (
                7,
                TraceEvent::CacheProbe {
                    hit: true,
                    writeback: false,
                },
            ),
            (7, TraceEvent::TransferServed { id: 1 }),
            (
                8,
                TraceEvent::KernelEnd {
                    op: 1,
                    body_cycles: 3,
                    advance_cycles: 3,
                    stall_cycles: 1,
                    flush_cycles: 0,
                },
            ),
            (8, TraceEvent::Cycle(CycleAttr::KernelFinish)),
            (9, TraceEvent::TransferDone { op: 0, id: 1 }),
        ]
    }

    #[test]
    fn export_is_valid_json_and_escapes_names() {
        let doc = export(sample_events().iter());
        json::validate(&doc).unwrap();
        assert!(doc.contains(r#"fft \"stage1\"\n"#), "kernel name escaped");
        assert!(!doc.contains("fft \"stage1\"\n\""), "raw quote leaked");
    }

    #[test]
    fn export_collapses_attribution_runs() {
        let doc = export(sample_events().iter());
        // dispatch cycles 1-2 collapse into one 2-cycle span; advance is
        // split by the stall at cycle 5 into a 2-span and a 1-span.
        assert_eq!(doc.matches("\"name\":\"dispatch\"").count(), 1);
        assert!(doc.contains("\"ts\":1,\"dur\":2,\"name\":\"dispatch\""));
        assert_eq!(doc.matches("\"name\":\"advance\"").count(), 2);
        assert!(doc.contains("\"ts\":3,\"dur\":2,\"name\":\"advance\""));
        assert!(doc.contains("\"ts\":6,\"dur\":1,\"name\":\"advance\""));
    }

    #[test]
    fn export_timestamps_are_sorted() {
        let doc = export(sample_events().iter());
        let mut last = 0u64;
        for line in doc.lines() {
            if let Some(pos) = line.find("\"ts\":") {
                let rest = &line[pos + 5..];
                let end = rest.find([',', '}']).unwrap();
                let ts: u64 = rest[..end].parse().unwrap();
                assert!(ts >= last, "timestamps regressed: {ts} after {last}");
                last = ts;
            }
        }
    }

    #[test]
    fn open_spans_are_closed_and_tagged() {
        let events = [
            (
                0,
                TraceEvent::TransferStart {
                    op: 2,
                    id: 9,
                    words: 16,
                    write: true,
                    cacheable: false,
                },
            ),
            (
                3,
                TraceEvent::KernelStart {
                    op: 3,
                    name: "k".into(),
                },
            ),
            (5, TraceEvent::Cycle(CycleAttr::Advance)),
        ];
        let doc = export(events.iter());
        json::validate(&doc).unwrap();
        assert_eq!(doc.matches("\"incomplete\":true").count(), 2);
        assert!(doc.contains("store 16w op2"));
    }

    #[test]
    fn transfer_span_covers_lifetime_and_lands_on_id_tid() {
        let doc = export(sample_events().iter());
        assert!(doc.contains("load 64w op0"));
        // id 1 → tid 2 of pid 2; span 0..9.
        assert!(
            doc.contains("\"pid\":2,\"tid\":2,\"ts\":0,\"dur\":9,\"name\":\"load 64w op0\""),
            "{doc}"
        );
        assert!(doc.contains("\"served_at\":7"));
    }
}
