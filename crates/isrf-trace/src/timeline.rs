//! Plain-text timeline renderer: a terminal-width strip chart of the
//! recorded event window, for quick looks without leaving the shell.
//!
//! Two rows are rendered over the window's cycle range, split into
//! `width` equal buckets:
//!
//! - `kernel`: the dominant Figure-12 attribution of each bucket, one
//!   glyph per bucket (`D` dispatch, `=` advance, `s` SRF stall, `m` mem
//!   stall, `f` flush, `K` kernel finish, `.` idle, space = no cycles
//!   recorded in the bucket).
//! - `memory`: `#` where at least one memory transfer is in flight,
//!   `-` otherwise.

use crate::event::{CycleAttr, TraceEvent};

fn glyph(a: CycleAttr) -> char {
    match a {
        CycleAttr::Dispatch => 'D',
        CycleAttr::Advance => '=',
        CycleAttr::SrfStall => 's',
        CycleAttr::MemStall => 'm',
        CycleAttr::Flush => 'f',
        CycleAttr::KernelFinish => 'K',
        CycleAttr::Idle => '.',
    }
}

/// Render the stamped event stream as a multi-line text timeline of
/// `width` columns (clamped to at least 8). Returns an empty string for
/// an empty stream.
pub fn render<'a, I>(events: I, width: usize) -> String
where
    I: IntoIterator<Item = &'a (u64, TraceEvent)>,
{
    let events: Vec<&(u64, TraceEvent)> = events.into_iter().collect();
    if events.is_empty() {
        return String::new();
    }
    let width = width.max(8);
    let lo = events.iter().map(|(c, _)| *c).min().unwrap();
    let hi = events.iter().map(|(c, _)| *c).max().unwrap();
    let span = (hi - lo + 1).max(1);
    let bucket_of = |cycle: u64| (((cycle - lo) * width as u64) / span) as usize;

    let mut attr_counts = vec![[0u64; CycleAttr::COUNT]; width];
    let mut mem_active = vec![false; width];
    let mut in_flight: u64 = 0;
    let mut last_bucket = 0usize;
    for (cycle, ev) in &events {
        let b = bucket_of(*cycle).min(width - 1);
        if in_flight > 0 {
            for slot in mem_active.iter_mut().take(b + 1).skip(last_bucket) {
                *slot = true;
            }
        }
        last_bucket = b;
        match ev {
            TraceEvent::Cycle(a) => attr_counts[b][a.index()] += 1,
            TraceEvent::TransferStart { .. } => {
                in_flight += 1;
                mem_active[b] = true;
            }
            TraceEvent::TransferDone { .. } => {
                mem_active[b] = true;
                in_flight = in_flight.saturating_sub(1);
            }
            _ => {}
        }
    }

    let kernel_row: String = attr_counts
        .iter()
        .map(|counts| {
            CycleAttr::ALL
                .iter()
                .max_by_key(|a| counts[a.index()])
                .filter(|a| counts[a.index()] > 0)
                .map_or(' ', |a| glyph(*a))
        })
        .collect();
    let mem_row: String = mem_active
        .iter()
        .map(|&m| if m { '#' } else { '-' })
        .collect();

    format!(
        "cycles {lo}..{hi} ({span} cycles, {:.1} per column)\n\
         kernel |{kernel_row}|\n\
         memory |{mem_row}|\n\
         legend: D dispatch, = advance, s srf-stall, m mem-stall, f flush, K finish, . idle, # mem busy\n",
        span as f64 / width as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_renders_empty() {
        assert_eq!(render([].iter(), 40), "");
    }

    #[test]
    fn dominant_attribution_and_mem_activity_show_up() {
        let mut events = Vec::new();
        events.push((
            0,
            TraceEvent::TransferStart {
                op: 0,
                id: 1,
                words: 8,
                write: false,
                cacheable: false,
            },
        ));
        for c in 0..32u64 {
            events.push((c, TraceEvent::Cycle(CycleAttr::MemStall)));
        }
        events.push((32, TraceEvent::TransferDone { op: 0, id: 1 }));
        for c in 33..64u64 {
            events.push((c, TraceEvent::Cycle(CycleAttr::Advance)));
        }
        let out = render(events.iter(), 16);
        assert!(out.contains("cycles 0..63"));
        let kernel = out.lines().nth(1).unwrap();
        let memory = out.lines().nth(2).unwrap();
        assert!(kernel.contains('m') && kernel.contains('='));
        // Memory is busy in the first half, idle in the second.
        assert!(memory.contains('#') && memory.contains('-'));
        assert!(memory.find('#').unwrap() < memory.find('-').unwrap());
    }
}
