//! First-divergence bisection: two machines running the same program in
//! lockstep must bisect to `None` when healthy, and when a single SRF word
//! is deliberately corrupted at a chosen cycle, the bisector must report
//! exactly that cycle and localize the damage to the `srf` section.

use std::sync::Arc;

use isrf_check::{first_divergence, PerturbAt};
use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::ir::{KernelBuilder, StreamKind};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_mem::AddrPattern;
use isrf_sim::{ExecEngine, Machine, StreamProgram};

const OUT_BASE: u32 = 8192;
const OUT_WORDS: u32 = 64;

/// The table-lookup point also used by the snapshot round-trip tests:
/// two loads (a LUT and an input stream), one indexed-access kernel, one
/// store — long enough that a mid-run perturbation lands in live state.
fn build_point(engine: ExecEngine) -> (Machine, StreamProgram) {
    let cfg = MachineConfig::preset(ConfigName::Isrf4);
    let mut machine = Machine::new(cfg).unwrap();
    machine.set_engine(engine);

    let mut b = KernelBuilder::new("lookup");
    let s_in = b.stream("in", StreamKind::SeqIn);
    let s_lut = b.stream("LUT", StreamKind::IdxInRead);
    let s_out = b.stream("out", StreamKind::SeqOut);
    let a = b.seq_read(s_in);
    let v = b.idx_load(s_lut, a);
    let c = b.add(a, v);
    b.seq_write(s_out, c);
    let kernel = Arc::new(b.build().unwrap());
    let sched = schedule(&kernel, &SchedParams::from_machine(machine.config())).unwrap();

    let lut = machine.alloc_stream(1, 256 * 8);
    let input = machine.alloc_stream(1, OUT_WORDS);
    let output = machine.alloc_stream(1, OUT_WORDS);
    for i in 0..256u32 {
        for lane in 0..8 {
            machine.mem_mut().memory_mut().write(i * 8 + lane, 1000 + i);
        }
    }
    for i in 0..OUT_WORDS {
        machine.mem_mut().memory_mut().write(4096 + i, i % 256);
    }

    let mut p = StreamProgram::new();
    let l1 = p.load(AddrPattern::contiguous(0, 256 * 8), lut, false, &[]);
    let l2 = p.load(AddrPattern::contiguous(4096, OUT_WORDS), input, false, &[]);
    let k = p.kernel(kernel, sched, vec![input, lut, output], 8, &[l1, l2]);
    p.store(
        output,
        AddrPattern::contiguous(OUT_BASE, OUT_WORDS),
        false,
        &[k],
    );
    (machine, p)
}

/// Total cycles of an uninterrupted run of the point.
fn total_cycles(engine: ExecEngine) -> u64 {
    let (mut m, p) = build_point(engine);
    m.run(&p).cycles
}

#[test]
fn identical_machines_never_diverge() {
    let (mut a, p) = build_point(ExecEngine::Tape);
    let (mut b, _) = build_point(ExecEngine::Tape);
    let d = first_divergence(&mut a, &mut b, &p, 64, None).expect("snapshots restore");
    assert!(
        d.is_none(),
        "healthy lockstep pair diverged: {}",
        d.unwrap()
    );
    assert!(!a.mid_run() && !b.mid_run(), "both runs should complete");
}

#[test]
fn cross_engine_machines_never_diverge() {
    let (mut a, p) = build_point(ExecEngine::Tape);
    let (mut b, _) = build_point(ExecEngine::Interp);
    let d = first_divergence(&mut a, &mut b, &p, 64, None).expect("snapshots restore");
    assert!(d.is_none(), "tape vs interpreter diverged: {}", d.unwrap());
}

#[test]
fn bisector_pinpoints_injected_cycle() {
    let total = total_cycles(ExecEngine::Tape);
    assert!(total > 16, "point too short to host a mid-run injection");
    // Corrupt an SRF word above the allocator high-water mark (no stream
    // ever writes it, so the damage persists in state from the injection
    // cycle on) at several awkward cycles, with chunk sizes that do and do
    // not divide them.
    for (inject, chunk) in [
        (total / 2, 64),
        (total / 3 + 1, 100),
        (7, 1000),
        (total - 2, 3),
    ] {
        let (mut a, p) = build_point(ExecEngine::Tape);
        let (mut b, _) = build_point(ExecEngine::Tape);
        let perturb = PerturbAt {
            cycle: inject,
            lane: 3,
            offset: 4000,
            xor: 0xdead_beef,
        };
        let d = first_divergence(&mut a, &mut b, &p, chunk, Some(perturb))
            .expect("snapshots restore")
            .unwrap_or_else(|| panic!("injection at cycle {inject} went undetected"));
        assert_eq!(
            d.cycle, inject,
            "bisector reported cycle {} for an injection at {inject} (chunk {chunk})",
            d.cycle
        );
        assert!(
            d.diffs.iter().any(|diff| diff.path == "srf"),
            "diff at cycle {inject} did not localize to the srf section: {:?}",
            d.diffs
        );
    }
}

#[test]
fn prepared_state_mismatch_reports_cycle_zero() {
    let (mut a, p) = build_point(ExecEngine::Tape);
    let (mut b, _) = build_point(ExecEngine::Tape);
    // Machines that disagree before a single cycle runs: a divergence "at
    // cycle 0" means the preparations differ, not the timing model.
    let w = b.srf().read(0, 5);
    b.srf_mut().write(0, 5, w ^ 1);
    let d = first_divergence(&mut a, &mut b, &p, 64, None)
        .expect("snapshots restore")
        .expect("prepared-state mismatch must be reported");
    assert_eq!(d.cycle, 0);
    assert!(d.diffs.iter().any(|diff| diff.path == "srf"));
}
