//! Cross-check between the differential harness and the static cost
//! model: on synthetic programs that pass the reference-executor
//! differential, `isrf_verify::cost_model`'s whole-program cycle floor
//! must be a true lower bound on the cycle-accurate machine under both
//! engines. The app-suite version of this check runs in CI via
//! `verify all all --cycles`; this test keeps the property wired into the
//! differential suite itself, on programs the apps never exercise.

use std::sync::Arc;

use isrf_check::run_differential;
use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_mem::AddrPattern;
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;
use isrf_sim::{ExecEngine, ProgramVerifier, StreamBinding};
use isrf_verify::{cost_model, Verifier};

const SCALE_SRC: &str = r#"
kernel scale(istream<int> in, ostream<int> out) {
  int a, c;
  while (!eos(in)) {
    in >> a;
    c = a * 2 + 3;
    out << c;
  }
}
"#;

const LOOKUP_SRC: &str = r#"
kernel lookup(istream<int> in, idxl_istream<int> LUT, ostream<int> out) {
  int a, b;
  while (!eos(in)) {
    in >> a;
    LUT[a & 7] >> b;
    out << b;
  }
}
"#;

fn fill(m: &mut Machine, b: &StreamBinding, salt: u32) {
    let data: Vec<Word> = (0..b.words())
        .map(|k| k.wrapping_mul(0x9e37_79b9).wrapping_add(salt))
        .collect();
    m.write_stream(b, &data);
}

/// Build a load → kernel → store point; `lookup` adds an in-lane indexed
/// table when the config supports indexed access.
fn build(name: ConfigName, lookup: bool) -> (Machine, StreamProgram, Vec<(u32, u32)>) {
    let cfg = MachineConfig::preset(name);
    let mut m = Machine::new(cfg).unwrap();
    let lanes = m.config().lanes as u32;
    let records = 16 * lanes;
    let params = SchedParams::from_machine(m.config());

    let input = m.alloc_stream(1, records);
    let out = m.alloc_stream(1, records);
    for i in 0..records {
        m.mem_mut().memory_mut().write(i, i + 1);
    }
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, records), input, false, &[]);
    let kid = if lookup {
        let k = Arc::new(isrf_lang::parse_kernel(LOOKUP_SRC).unwrap());
        let s = schedule(&k, &params).unwrap();
        let lut = m.alloc_stream(1, 8 * lanes);
        fill(&mut m, &lut, 0xa5);
        p.kernel(k, s, vec![input, lut, out], 16, &[l])
    } else {
        let k = Arc::new(isrf_lang::parse_kernel(SCALE_SRC).unwrap());
        let s = schedule(&k, &params).unwrap();
        p.kernel(k, s, vec![input, out], 16, &[l])
    };
    p.store(out, AddrPattern::contiguous(20_000, records), false, &[kid]);
    (m, p, vec![(20_000, records)])
}

#[test]
fn static_floor_bounds_differentially_checked_points() {
    for name in ConfigName::ALL {
        let indexed = MachineConfig::preset(name).srf.indexed.is_some();
        for lookup in [false, true] {
            if lookup && !indexed {
                continue;
            }
            // The point must be analyzer-clean before the floor means
            // anything.
            let (m, p, _) = build(name, lookup);
            let diags = Verifier::new().verify(m.config(), &m.verify_env(), &p);
            assert!(diags.is_empty(), "{name:?} lookup={lookup}: {diags:?}");
            let floor = cost_model(m.config(), &p).cycle_floor;
            assert!(floor > 0, "{name:?} lookup={lookup}: zero floor");

            for engine in [ExecEngine::Tape, ExecEngine::Interp] {
                let (mut m, p, regions) = build(name, lookup);
                m.set_engine(engine);
                let out = run_differential(&mut m, &p, &regions)
                    .unwrap_or_else(|e| panic!("{name:?} lookup={lookup} diverged: {e}"));
                assert!(
                    floor <= out.stats.cycles,
                    "{name:?} lookup={lookup} {engine:?}: floor {floor} > simulated {}",
                    out.stats.cycles
                );
            }
        }
    }
}
