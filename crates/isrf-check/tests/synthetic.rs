//! Differential checks on small synthetic programs covering every stream
//! kind and op class, independent of the application suite.

use std::sync::Arc;

use isrf_check::run_differential;
use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::ir::{KernelBuilder, Operand, StreamKind, ValueId};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_kernel::Kernel;
use isrf_mem::AddrPattern;
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;

fn machine(name: ConfigName) -> Machine {
    Machine::new(MachineConfig::preset(name)).unwrap()
}

fn sched_for(m: &Machine, k: &Kernel) -> isrf_kernel::sched::Schedule {
    schedule(k, &SchedParams::from_machine(m.config())).unwrap()
}

#[test]
fn scale_kernel_matches_reference() {
    let mut m = machine(ConfigName::Base);
    let mut b = KernelBuilder::new("scale");
    let si = b.stream("in", StreamKind::SeqIn);
    let so = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(si);
    let two = b.constant(2);
    let y = b.mul(x, two);
    b.seq_write(so, y);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);

    let n = 256u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(i, i + 1);
    }
    let inp = m.alloc_stream(1, n);
    let outp = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
    let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
    p.store(outp, AddrPattern::contiguous(10_000, n), false, &[kk]);

    let out =
        run_differential(&mut m, &p, &[(10_000, n)]).unwrap_or_else(|e| panic!("diverged: {e}"));
    assert_eq!(out.counts.inlane_words, 0);
    for i in 0..n {
        assert_eq!(m.mem().memory().read(10_000 + i), 2 * (i + 1));
    }
}

#[test]
fn loop_carried_accumulation_matches_reference() {
    let mut m = machine(ConfigName::Base);
    let mut b = KernelBuilder::new("prefix");
    let si = b.stream("in", StreamKind::SeqIn);
    let so = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(si);
    let acc = b.push(
        isrf_kernel::Opcode::Add,
        vec![Operand::from(x), Operand::carried(ValueId(1), 1, 100)],
    );
    b.seq_write(so, acc);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);

    let n = 64u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(i, i);
    }
    let inp = m.alloc_stream(1, n);
    let outp = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
    let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
    p.store(outp, AddrPattern::contiguous(1000, n), false, &[kk]);
    run_differential(&mut m, &p, &[(1000, n)]).unwrap_or_else(|e| panic!("diverged: {e}"));
}

#[test]
fn inlane_indexed_lookup_matches_reference_with_exact_counts() {
    let mut m = machine(ConfigName::Isrf4);
    let mut b = KernelBuilder::new("lut");
    let si = b.stream("in", StreamKind::SeqIn);
    let lut = b.stream("LUT", StreamKind::IdxInRead);
    let so = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(si);
    let mask = b.constant(0xff);
    let a = b.and(x, mask);
    let v = b.idx_load(lut, a);
    let y = b.add(x, v);
    b.seq_write(so, y);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);
    let inp = m.alloc_stream(1, 512);
    let lutb = m.alloc_stream(1, 256 * 8);
    let outp = m.alloc_stream(1, 512);
    let ivals: Vec<u32> = (0..512).map(|i| i * 7).collect();
    m.write_stream(&inp, &ivals);
    let lvals: Vec<u32> = (0..2048).map(|i| i / 8).collect();
    m.write_stream(&lutb, &lvals);
    let mut p = StreamProgram::new();
    let kk = p.kernel(Arc::clone(&k), s, vec![inp, lutb, outp], 64, &[]);
    p.store(outp, AddrPattern::contiguous(9000, 512), false, &[kk]);
    let out =
        run_differential(&mut m, &p, &[(9000, 512)]).unwrap_or_else(|e| panic!("diverged: {e}"));
    assert_eq!(out.counts.inlane_words, 512, "one word per input element");
    assert_eq!(out.counts.crosslane_words, 0);
}

#[test]
fn crosslane_permutation_matches_reference() {
    let mut m = machine(ConfigName::Isrf4);
    let mut b = KernelBuilder::new("xl");
    let data = b.stream("data", StreamKind::IdxCrossRead);
    let so = b.stream("out", StreamKind::SeqOut);
    let lane = b.lane_id();
    let one = b.constant(1);
    let lanes = b.lane_count();
    let iter = b.iter_id();
    let l1 = b.add(lane, one);
    let wrapped = b.rem(l1, lanes);
    let base = b.mul(iter, lanes);
    let rec = b.add(base, wrapped);
    let v = b.idx_load(data, rec);
    b.seq_write(so, v);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);

    let n = 64u32;
    let dstream = m.alloc_stream(1, n);
    let ostream = m.alloc_stream(1, n);
    let vals: Vec<u32> = (0..n).map(|i| 100 + i).collect();
    m.write_stream(&dstream, &vals);
    let mut p = StreamProgram::new();
    let kk = p.kernel(
        Arc::clone(&k),
        s,
        vec![dstream, ostream],
        (n / 8) as u64,
        &[],
    );
    p.store(ostream, AddrPattern::contiguous(5000, n), false, &[kk]);
    let out =
        run_differential(&mut m, &p, &[(5000, n)]).unwrap_or_else(|e| panic!("diverged: {e}"));
    assert_eq!(out.counts.crosslane_words, n as u64);
    assert_eq!(out.counts.inlane_words, 0);
}

#[test]
fn indexed_write_scatter_matches_reference() {
    let mut m = machine(ConfigName::Isrf4);
    let mut b = KernelBuilder::new("scatter");
    let dst = b.stream("dst", StreamKind::IdxInWrite);
    let lane = b.lane_id();
    let iter = b.iter_id();
    let c100 = b.constant(100);
    let v0 = b.mul(lane, c100);
    let v = b.add(v0, iter);
    let seven = b.constant(7);
    let addr = b.sub(seven, iter);
    b.idx_write(dst, addr, v);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);

    let dstream = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    let kk = p.kernel(Arc::clone(&k), s, vec![dstream], 8, &[]);
    p.store(dstream, AddrPattern::contiguous(4000, 64), false, &[kk]);
    let out =
        run_differential(&mut m, &p, &[(4000, 64)]).unwrap_or_else(|e| panic!("diverged: {e}"));
    assert_eq!(out.counts.inlane_words, 64, "one write per lane-iteration");
}

#[test]
fn conditional_streams_match_reference() {
    let mut m = machine(ConfigName::Base);
    let mut b = KernelBuilder::new("compact");
    let si = b.stream("in", StreamKind::SeqIn);
    let so = b.stream("out", StreamKind::CondOut);
    let x = b.seq_read(si);
    let one = b.constant(1);
    let odd = b.and(x, one);
    b.cond_write(so, odd, x);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);

    let n = 64u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(i, i);
    }
    let inp = m.alloc_stream(1, n);
    let outp = m.alloc_stream(1, n / 2);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
    let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
    p.store(outp, AddrPattern::contiguous(2000, n / 2), false, &[kk]);
    run_differential(&mut m, &p, &[(2000, n / 2)]).unwrap_or_else(|e| panic!("diverged: {e}"));
}

#[test]
fn conditional_read_distribution_matches_reference() {
    let mut m = machine(ConfigName::Base);
    let mut b = KernelBuilder::new("dist");
    let si = b.stream("in", StreamKind::CondIn);
    let so = b.stream("out", StreamKind::SeqOut);
    let lane = b.lane_id();
    let one = b.constant(1);
    let lsb = b.and(lane, one);
    let zero = b.constant(0);
    let even = b.eq(lsb, zero);
    let v = b.cond_read(si, even);
    b.seq_write(so, v);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);

    let inp = m.alloc_stream(1, 32);
    let outp = m.alloc_stream(1, 64);
    let vals: Vec<u32> = (0..32).map(|i| 500 + i).collect();
    m.write_stream(&inp, &vals);
    let mut p = StreamProgram::new();
    let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], 8, &[]);
    p.store(outp, AddrPattern::contiguous(3000, 64), false, &[kk]);
    run_differential(&mut m, &p, &[(3000, 64)]).unwrap_or_else(|e| panic!("diverged: {e}"));
}

#[test]
fn comm_and_scratch_match_reference() {
    let mut m = machine(ConfigName::Base);
    let mut b = KernelBuilder::new("rot-sp");
    let so = b.stream("out", StreamKind::SeqOut);
    let lane = b.lane_id();
    let c10 = b.constant(10);
    let v = b.mul(lane, c10);
    let r = b.comm_rotate(1, v);
    let addr = b.constant(3);
    b.scratch_write(addr, r);
    let rd = b.scratch_read(addr);
    let x = b.comm_xor(1, rd);
    b.seq_write(so, x);
    let k = Arc::new(b.build().unwrap());
    let s = sched_for(&m, &k);
    let outp = m.alloc_stream(1, 16);
    let mut p = StreamProgram::new();
    let kk = p.kernel(Arc::clone(&k), s, vec![outp], 2, &[]);
    p.store(outp, AddrPattern::contiguous(6000, 16), false, &[kk]);
    run_differential(&mut m, &p, &[(6000, 16)]).unwrap_or_else(|e| panic!("diverged: {e}"));
}

/// The reference executor must *detect* an injected functional divergence,
/// not paper over it: poison one SRF word after snapshotting by running a
/// store the machine sees but the reference doesn't.
#[test]
fn divergence_is_detected() {
    let mut m = machine(ConfigName::Base);
    let n = 64u32;
    for i in 0..n {
        m.mem_mut().memory_mut().write(i, i + 1);
    }
    let inp = m.alloc_stream(1, n);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
    p.store(inp, AddrPattern::contiguous(10_000, n), false, &[l]);
    // Tamper with the machine's memory after the reference snapshot by
    // running the program against a machine whose input differs.
    let mut reference = isrf_check::RefMachine::from_machine(&m);
    m.mem_mut().memory_mut().write(5, 999_999);
    reference.run(&p);
    m.run(&p);
    assert_ne!(
        m.mem().memory().read(10_000 + 5),
        reference.mem().read(10_000 + 5),
        "tampered word must differ"
    );
}
