//! Timing-free functional reference executor.
//!
//! [`RefMachine`] interprets a [`StreamProgram`] against cloned machine
//! state (SRF, memory, scratchpads) using only the ISA semantics:
//!
//! * program ops execute one at a time in index order (a topological
//!   order, since dependence edges always point backward);
//! * kernels run iteration-major — iteration `j`'s ops in operation
//!   order, every lane of an op before the next op — which is exactly the
//!   per-stream access order the scheduler's ordering chains guarantee;
//! * stream cursor/windowing semantics are *shared with the simulator* by
//!   reusing [`isrf_sim::stream`]'s runtime states with zero latency and
//!   effectively unbounded buffers (inputs prefetched whole, outputs
//!   drained at kernel end);
//! * indexed reads resolve eagerly at address issue, indexed writes apply
//!   immediately, and every serviced word is counted so the totals can be
//!   checked against the machine's [`isrf_core::stats::SrfTraffic`].
//!
//! Schedules, stream buffers, arbitration, FIFO depths and latencies are
//! never consulted: any final-state difference from the cycle-accurate
//! machine on a race-free program is a simulator bug.

use std::collections::VecDeque;

use isrf_core::{word, Word};
use isrf_kernel::ir::{Kernel, Op, Opcode, Operand, StreamKind};
use isrf_mem::Memory;
use isrf_sim::machine::Machine;
use isrf_sim::program::{ProgOp, StreamProgram};
use isrf_sim::srf::Srf;
use isrf_sim::stream::{CondInState, CondOutState, SeqInState, SeqOutState, StreamBinding};

/// Indexed-access word counts accumulated by the reference executor.
///
/// The machine counts one [`isrf_core::stats::SrfTraffic`] word per
/// serviced SRAM access: `record_words` per indexed-read address and one
/// per indexed write. The reference executor counts the same events at
/// issue, so after a differential run the totals must match exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefCounts {
    /// In-lane indexed words (reads and writes).
    pub inlane_words: u64,
    /// Cross-lane indexed words.
    pub crosslane_words: u64,
}

/// The functional reference machine: cloned state, no timing.
#[derive(Debug, Clone)]
pub struct RefMachine {
    lanes: usize,
    srf: Srf,
    mem: Memory,
    scratch: Vec<Vec<Word>>,
    counts: RefCounts,
}

impl RefMachine {
    /// Snapshot a prepared machine's state (SRF, functional memory,
    /// scratchpads) as the reference starting point. Take the snapshot
    /// *before* running the program on the machine.
    pub fn from_machine(m: &Machine) -> Self {
        RefMachine {
            lanes: m.config().lanes,
            srf: m.srf().clone(),
            mem: m.mem().memory().clone(),
            scratch: m.scratch().to_vec(),
            counts: RefCounts::default(),
        }
    }

    /// The reference SRF state.
    pub fn srf(&self) -> &Srf {
        &self.srf
    }

    /// The reference memory state.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Indexed words serviced so far.
    pub fn counts(&self) -> RefCounts {
        self.counts
    }

    /// Read a stream's content out of the reference SRF.
    pub fn read_stream(&self, b: &StreamBinding) -> Vec<Word> {
        (0..b.words())
            .map(|k| {
                self.srf
                    .read_stream_word(b.range, b.record_words, b.stream_word(k))
            })
            .collect()
    }

    /// Execute `program` to completion, functionally.
    ///
    /// # Panics
    ///
    /// Panics where the machine would deadlock or trap: an indexed read
    /// with no issued address, or an out-of-range SRF offset.
    pub fn run(&mut self, program: &StreamProgram) {
        for i in 0..program.len() {
            let (op, _deps) = program.node(i);
            match op {
                ProgOp::Load { pattern, dst, .. } => {
                    let data = self.mem.gather(&pattern.to_addrs());
                    self.write_stream_words(dst, &data);
                }
                ProgOp::Store { src, pattern, .. } => {
                    let data = self.read_stream(src);
                    self.mem.scatter(&pattern.to_addrs(), &data);
                }
                ProgOp::GatherDyn {
                    index_stream,
                    base,
                    dst,
                    ..
                } => {
                    let addrs = self.dynamic_addrs(index_stream, *base);
                    let data = self.mem.gather(&addrs);
                    self.write_stream_words(dst, &data);
                }
                ProgOp::ScatterDyn {
                    src,
                    index_stream,
                    base,
                    ..
                } => {
                    let addrs = self.dynamic_addrs(index_stream, *base);
                    let data = self.read_stream(src);
                    self.mem.scatter(&addrs, &data);
                }
                ProgOp::Kernel {
                    kernel,
                    bindings,
                    iters,
                    ..
                } => {
                    let mut interp = Interp::new(self, kernel, bindings);
                    interp.run(*iters);
                    interp.flush();
                }
            }
        }
    }

    fn write_stream_words(&mut self, dst: &StreamBinding, data: &[Word]) {
        for (k, &v) in data.iter().enumerate() {
            self.srf
                .write_stream_word(dst.range, dst.record_words, dst.stream_word(k as u32), v);
        }
    }

    fn dynamic_addrs(&self, index_stream: &StreamBinding, base: u32) -> Vec<u32> {
        (0..index_stream.words())
            .map(|k| {
                base + self.srf.read_stream_word(
                    index_stream.range,
                    index_stream.record_words,
                    index_stream.stream_word(k),
                )
            })
            .collect()
    }
}

/// Per-slot runtime state of the interpreter. Sequential and conditional
/// slots reuse the simulator's own stream states (zero latency, unbounded
/// buffers); indexed slots resolve against the SRF directly.
enum RefSlot {
    SeqIn(SeqInState),
    SeqOut(SeqOutState),
    CondIn(CondInState),
    CondLaneIn(SeqInState),
    CondOut(CondOutState),
    /// Indexed read stream: per-lane data FIFO filled eagerly at address
    /// issue, popped by `IdxRead` in issue order.
    IdxRead {
        binding: StreamBinding,
        cross: bool,
        data: Vec<VecDeque<Word>>,
    },
    IdxWrite {
        binding: StreamBinding,
    },
}

/// One kernel invocation of the reference executor.
struct Interp<'a> {
    rm: &'a mut RefMachine,
    kernel: &'a Kernel,
    slots: Vec<RefSlot>,
    /// Rolling value contexts: `ctxs[j - ctx_base]` holds `ops × lanes`
    /// words, windowed to the largest loop-carried distance plus one.
    ctxs: VecDeque<Vec<Word>>,
    ctx_base: u64,
    max_dist: u32,
}

impl<'a> Interp<'a> {
    fn new(rm: &'a mut RefMachine, kernel: &'a Kernel, bindings: &[StreamBinding]) -> Self {
        assert_eq!(
            bindings.len(),
            kernel.streams.len(),
            "kernel `{}` declares {} streams, got {} bindings",
            kernel.name,
            kernel.streams.len(),
            bindings.len()
        );
        let lanes = rm.lanes;
        let slots = kernel
            .streams
            .iter()
            .zip(bindings)
            .map(|(decl, b)| {
                let all = b.words() as usize + 1;
                match decl.kind {
                    StreamKind::SeqIn => {
                        let mut st = SeqInState::new(*b, lanes, all);
                        st.grant(&rm.srf, all, 0, 0);
                        RefSlot::SeqIn(st)
                    }
                    StreamKind::CondLaneIn => {
                        let mut st = SeqInState::new(*b, lanes, all);
                        st.grant(&rm.srf, all, 0, 0);
                        RefSlot::CondLaneIn(st)
                    }
                    StreamKind::CondIn => {
                        let mut st = CondInState::new(*b, lanes, all);
                        st.grant(&rm.srf, all, 0, 0);
                        RefSlot::CondIn(st)
                    }
                    StreamKind::SeqOut => RefSlot::SeqOut(SeqOutState::new(*b, lanes, usize::MAX)),
                    StreamKind::CondOut => {
                        RefSlot::CondOut(CondOutState::new(*b, lanes, usize::MAX / lanes.max(1)))
                    }
                    StreamKind::IdxInRead | StreamKind::IdxCrossRead => RefSlot::IdxRead {
                        binding: *b,
                        cross: decl.kind == StreamKind::IdxCrossRead,
                        data: vec![VecDeque::new(); lanes],
                    },
                    StreamKind::IdxInWrite => {
                        assert_eq!(
                            b.record_words, 1,
                            "indexed write streams use word-granular addresses"
                        );
                        RefSlot::IdxWrite { binding: *b }
                    }
                }
            })
            .collect();
        let max_dist = kernel
            .ops
            .iter()
            .flat_map(|o| o.operands.iter().map(|p| p.distance))
            .max()
            .unwrap_or(0);
        Interp {
            rm,
            kernel,
            slots,
            ctxs: VecDeque::new(),
            ctx_base: 0,
            max_dist,
        }
    }

    fn run(&mut self, iters: u64) {
        let lanes = self.rm.lanes;
        let n_ops = self.kernel.ops.len();
        for j in 0..iters {
            self.ctxs.push_back(vec![0; n_ops * lanes]);
            while self.ctxs.len() > self.max_dist as usize + 1 {
                self.ctxs.pop_front();
                self.ctx_base += 1;
            }
            for opi in 0..n_ops {
                let op = self.kernel.ops[opi].clone();
                let vals = self.exec_op(j, &op);
                let idx = (j - self.ctx_base) as usize;
                for (lane, v) in vals.into_iter().enumerate() {
                    self.ctxs[idx][opi * lanes + lane] = v;
                }
            }
        }
    }

    /// Drain output buffers into the SRF (the kernel-end flush).
    fn flush(&mut self) {
        for slot in &mut self.slots {
            match slot {
                RefSlot::SeqOut(st) => {
                    while !st.drained() {
                        st.grant(&mut self.rm.srf, 1 << 20, true);
                    }
                }
                RefSlot::CondOut(st) => {
                    while !st.drained() {
                        st.grant(&mut self.rm.srf, 1 << 20, true);
                    }
                }
                _ => {}
            }
        }
    }

    /// Resolve an operand for iteration `j`, lane `lane` — mirror of the
    /// machine executor's rule: past-the-start distances read `init`, and
    /// `Free`-class producers are recomputed rather than looked up.
    fn resolve(&self, j: u64, operand: &Operand, lane: usize) -> Word {
        let d = operand.distance as u64;
        if d > j {
            return operand.init;
        }
        let pj = j - d;
        if pj < self.ctx_base {
            return operand.init; // retired far-past context (distance misuse)
        }
        match self.kernel.ops[operand.value.index()].opcode {
            Opcode::Const(w) => w,
            Opcode::LaneId => lane as Word,
            Opcode::LaneCount => self.rm.lanes as Word,
            Opcode::IterId => pj as Word,
            _ => {
                let idx = (pj - self.ctx_base) as usize;
                self.ctxs[idx][operand.value.index() * self.rm.lanes + lane]
            }
        }
    }

    /// Execute one op for all lanes of iteration `j`.
    fn exec_op(&mut self, j: u64, op: &Op) -> Vec<Word> {
        use Opcode::*;
        let lanes = self.rm.lanes;
        match op.opcode {
            Const(w) => vec![w; lanes],
            LaneId => (0..lanes).map(|l| l as Word).collect(),
            LaneCount => vec![lanes as Word; lanes],
            IterId => vec![j as Word; lanes],
            SeqRead(s) => {
                let RefSlot::SeqIn(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!("validated kind");
                };
                (0..lanes)
                    .map(|l| if st.lane_done(l) { 0 } else { st.pop(l) })
                    .collect()
            }
            SeqWrite(s) => {
                let vals: Vec<Word> = (0..lanes)
                    .map(|l| self.resolve(j, &op.operands[0], l))
                    .collect();
                let RefSlot::SeqOut(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                for (l, &v) in vals.iter().enumerate() {
                    st.push(l, v);
                }
                vals
            }
            CondLaneRead(s) => {
                let conds: Vec<bool> = (0..lanes)
                    .map(|l| word::as_bool(self.resolve(j, &op.operands[0], l)))
                    .collect();
                let RefSlot::CondLaneIn(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                conds
                    .iter()
                    .enumerate()
                    .map(|(l, &c)| if c && !st.lane_done(l) { st.pop(l) } else { 0 })
                    .collect()
            }
            CondRead(s) => {
                let conds: Vec<bool> = (0..lanes)
                    .map(|l| word::as_bool(self.resolve(j, &op.operands[0], l)))
                    .collect();
                let RefSlot::CondIn(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                let k = conds.iter().filter(|&&c| c).count();
                let k_eff = k.min(st.remaining_words() as usize);
                let mut words = st.pop(k_eff).into_iter();
                conds
                    .iter()
                    .map(|&c| if c { words.next().unwrap_or(0) } else { 0 })
                    .collect()
            }
            CondWrite(s) => {
                let pairs: Vec<(bool, Word)> = (0..lanes)
                    .map(|l| {
                        (
                            word::as_bool(self.resolve(j, &op.operands[0], l)),
                            self.resolve(j, &op.operands[1], l),
                        )
                    })
                    .collect();
                let RefSlot::CondOut(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                let vals: Vec<Word> = pairs.iter().filter(|(c, _)| *c).map(|&(_, v)| v).collect();
                st.push(&vals);
                vec![0; lanes]
            }
            IdxAddr(s) => {
                let addrs: Vec<Word> = (0..lanes)
                    .map(|l| self.resolve(j, &op.operands[0], l))
                    .collect();
                let RefSlot::IdxRead {
                    binding,
                    cross,
                    data,
                } = &mut self.slots[s.0 as usize]
                else {
                    unreachable!("IdxAddr on a non-read slot");
                };
                let rw = binding.record_words;
                for (l, &record) in addrs.iter().enumerate() {
                    for w in 0..rw {
                        let v = if *cross {
                            // Global record: record r lives in bank r mod N.
                            let bank = record as usize % lanes;
                            let off = binding.range.base + (record / lanes as u32) * rw + w;
                            self.rm.counts.crosslane_words += 1;
                            self.rm.srf.read(bank, off)
                        } else {
                            // Lane-local record index into this lane's bank.
                            let off = binding.range.base + record * rw + w;
                            self.rm.counts.inlane_words += 1;
                            self.rm.srf.read(l, off)
                        };
                        data[l].push_back(v);
                    }
                }
                addrs
            }
            IdxRead(s) => {
                let RefSlot::IdxRead { data, .. } = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                (0..lanes)
                    .map(|l| {
                        data[l]
                            .pop_front()
                            .expect("IdxRead with no issued address (machine would deadlock)")
                    })
                    .collect()
            }
            IdxWrite(s) => {
                let pairs: Vec<(Word, Word)> = (0..lanes)
                    .map(|l| {
                        (
                            self.resolve(j, &op.operands[0], l),
                            self.resolve(j, &op.operands[1], l),
                        )
                    })
                    .collect();
                let RefSlot::IdxWrite { binding } = &self.slots[s.0 as usize] else {
                    unreachable!();
                };
                let base = binding.range.base;
                pairs
                    .iter()
                    .enumerate()
                    .map(|(l, &(addr, v))| {
                        self.rm.srf.write(l, base + addr, v);
                        self.rm.counts.inlane_words += 1;
                        v
                    })
                    .collect()
            }
            ScratchRead => (0..lanes)
                .map(|l| {
                    let addr =
                        self.resolve(j, &op.operands[0], l) as usize % self.rm.scratch[l].len();
                    self.rm.scratch[l][addr]
                })
                .collect(),
            ScratchWrite => (0..lanes)
                .map(|l| {
                    let addr =
                        self.resolve(j, &op.operands[0], l) as usize % self.rm.scratch[l].len();
                    let v = self.resolve(j, &op.operands[1], l);
                    self.rm.scratch[l][addr] = v;
                    v
                })
                .collect(),
            Comm { rotate } => (0..lanes)
                .map(|l| {
                    let src = (l as i64 + rotate as i64).rem_euclid(lanes as i64) as usize;
                    self.resolve(j, &op.operands[0], src)
                })
                .collect(),
            CommXor { mask } => (0..lanes)
                .map(|l| {
                    let src = (l ^ mask as usize) % lanes;
                    self.resolve(j, &op.operands[0], src)
                })
                .collect(),
            _ => (0..lanes)
                .map(|lane| ref_alu(op.opcode, |k, l| self.resolve(j, &op.operands[k], l), lane))
                .collect(),
        }
    }
}

/// Evaluate a pure ALU opcode for one lane — definitionally identical to
/// the machine executor's ALU (wrapping two's-complement integers, IEEE
/// `f32` bit-cast floats, divide-by-zero yields zero).
fn ref_alu(opcode: Opcode, resolve: impl Fn(usize, usize) -> Word, lane: usize) -> Word {
    use Opcode::*;
    let a = || resolve(0, lane);
    let b = || resolve(1, lane);
    let ia = || word::as_i32(resolve(0, lane));
    let ib = || word::as_i32(resolve(1, lane));
    let fa = || word::as_f32(resolve(0, lane));
    let fb = || word::as_f32(resolve(1, lane));
    match opcode {
        Mov => a(),
        Not => !a(),
        Neg => word::from_i32(ia().wrapping_neg()),
        FNeg => word::from_f32(-fa()),
        IToF => word::from_f32(ia() as f32),
        FToI => word::from_i32(fa() as i32),
        Add => word::from_i32(ia().wrapping_add(ib())),
        Sub => word::from_i32(ia().wrapping_sub(ib())),
        Mul => word::from_i32(ia().wrapping_mul(ib())),
        Div => word::from_i32(if ib() == 0 {
            0
        } else {
            ia().wrapping_div(ib())
        }),
        Rem => word::from_i32(if ib() == 0 {
            0
        } else {
            ia().wrapping_rem(ib())
        }),
        And => a() & b(),
        Or => a() | b(),
        Xor => a() ^ b(),
        Shl => a().wrapping_shl(b() & 31),
        Shr => a().wrapping_shr(b() & 31),
        Sra => word::from_i32(ia().wrapping_shr(b() & 31)),
        Lt => word::from_bool(ia() < ib()),
        Le => word::from_bool(ia() <= ib()),
        Eq => word::from_bool(a() == b()),
        Ne => word::from_bool(a() != b()),
        ULt => word::from_bool(a() < b()),
        Min => word::from_i32(ia().min(ib())),
        Max => word::from_i32(ia().max(ib())),
        FAdd => word::from_f32(fa() + fb()),
        FSub => word::from_f32(fa() - fb()),
        FMul => word::from_f32(fa() * fb()),
        FDiv => word::from_f32(fa() / fb()),
        FLt => word::from_bool(fa() < fb()),
        FLe => word::from_bool(fa() <= fb()),
        FEq => word::from_bool(fa() == fb()),
        FMin => word::from_f32(fa().min(fb())),
        FMax => word::from_f32(fa().max(fb())),
        Select => {
            if word::as_bool(resolve(0, lane)) {
                resolve(1, lane)
            } else {
                resolve(2, lane)
            }
        }
        _ => unreachable!("non-ALU opcode {opcode:?} reached ref_alu"),
    }
}
