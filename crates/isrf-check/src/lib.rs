//! Differential checking for the indexed-SRF simulator.
//!
//! The cycle-accurate [`isrf_sim::Machine`] interleaves memory transfers,
//! SRF-port arbitration and modulo-scheduled kernels; a timing bug there
//! can silently corrupt data while every benchmark still "runs". This
//! crate provides the oracle and harness that keep it honest:
//!
//! * [`refexec::RefMachine`] — a timing-free *reference executor* that
//!   interprets a [`isrf_sim::StreamProgram`] using only the ISA
//!   semantics: program ops in dependence order, kernels iteration by
//!   iteration in operation order. No schedules, buffers, arbitration or
//!   latencies are consulted, so agreement with the machine validates the
//!   timing model's functional transparency.
//! * [`diff`] — runs a prepared machine and its reference twin over the
//!   same program and compares final memory and SRF contents word for
//!   word, plus the indexed-access counts against [`isrf_core::stats`].
//! * [`sweep`] — a deterministic parallel driver fanning independent
//!   simulation points across OS threads, with results in input order so
//!   parallel and serial sweeps are byte-identical.
//! * [`bisect`] — when two machines that should agree don't, binary-search
//!   over cycle-granular state snapshots for the first diverging cycle and
//!   a structural diff of what differs (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod diff;
pub mod refexec;
pub mod sweep;

pub use bisect::{first_divergence, Divergence, PerturbAt};
pub use diff::{run_differential, DiffError, DiffFailure, DiffOutcome};
pub use refexec::{RefCounts, RefMachine};
pub use sweep::{run_parallel, run_serial};
