//! First-divergence bisection over machine snapshots (DESIGN.md §12).
//!
//! Given two machines that *should* be indistinguishable — two execution
//! engines, two builds, or one machine with a deliberately injected fault —
//! [`first_divergence`] runs them in lockstep through the same program and
//! binary-searches over [`isrf_sim::Machine::save_state`] snapshots for
//! the first cycle at which their architectural state differs, returning a
//! structural diff (which section — SRF bank, memory chunk, stream buffer,
//! FIFO — and which word) of that cycle.
//!
//! The search walks forward in chunks: step both machines `chunk` cycles,
//! compare snapshot bytes (snapshots of identical state are byte-identical
//! by construction), and on the first mismatch rewind both machines to the
//! last equal snapshot and halve the chunk. When the chunk reaches one
//! cycle the mismatch cycle is exact. Cost is `O(T + log T · chunk)`
//! simulated cycles rather than the `O(T)` snapshots a per-cycle scan
//! would take.
//!
//! When the two machines run *different engines* (tape vs. interpreter),
//! the comparison masks the engine-selection byte and skips the `kctx`
//! section — the engines keep in-flight iteration values in different
//! structures (flat ring vs. context queue), so only the engine-neutral
//! state (SRF, memory, stream buffers, FIFOs, cursors, stats) is
//! compared. Every architectural effect lands in that neutral state
//! within a few cycles, so divergences are still localized tightly.

use isrf_core::snap::{self, Enc, SnapError};
use isrf_core::Word;
use isrf_sim::snapshot::{diff_snapshots, SnapshotDiff};
use isrf_sim::{Machine, StreamProgram};

/// A deliberate single-word SRF perturbation, applied to the second
/// machine when the lockstep run crosses `cycle`. Used by the negative
/// tests that prove the bisector localizes an injected divergence.
#[derive(Debug, Clone, Copy)]
pub struct PerturbAt {
    /// Machine cycle (counted from the start of the program run) after
    /// which the perturbation is applied.
    pub cycle: u64,
    /// SRF bank to corrupt.
    pub lane: usize,
    /// Per-bank word offset to corrupt.
    pub offset: u32,
    /// XOR mask applied to the word.
    pub xor: Word,
}

/// Where two lockstep machines first disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// First cycle (from run start) at which the snapshots differ.
    pub cycle: u64,
    /// Structural diff of the two snapshots at that cycle.
    pub diffs: Vec<SnapshotDiff>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first diverging cycle: {}", self.cycle)?;
        for d in &self.diffs {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// One machine being stepped through the bisection.
struct Side<'m> {
    m: &'m mut Machine,
    /// Cycles consumed from run start.
    at: u64,
    /// The run completed (`run_for` returned `Some`); no further stepping.
    done: bool,
    perturb: Option<PerturbAt>,
}

impl Side<'_> {
    /// Advance `cycles` forward from `self.at`, applying the injected
    /// perturbation when the step crosses its cycle.
    fn step(&mut self, program: &StreamProgram, cycles: u64) {
        let target = self.at + cycles;
        if let Some(p) = self.perturb {
            // Split the step at the injection point so the perturbation
            // lands exactly after cycle `p.cycle`.
            if self.at < p.cycle && p.cycle <= target {
                if !self.done && self.m.run_for(program, p.cycle - self.at).is_some() {
                    self.done = true;
                }
                let w = self.m.srf().read(p.lane, p.offset);
                self.m.srf_mut().write(p.lane, p.offset, w ^ p.xor);
                self.at = p.cycle;
                return self.step(program, target - p.cycle);
            }
        }
        if !self.done && cycles > 0 && self.m.run_for(program, cycles).is_some() {
            self.done = true;
        }
        self.at = target;
    }

    fn restore(&mut self, program: &StreamProgram, snap: &[u8], at: u64) -> Result<(), SnapError> {
        self.m.restore_state(program, snap)?;
        self.at = at;
        // `mid_run()` is false both before the first cycle and after the
        // last; only the latter means the run completed.
        self.done = at > 0 && !self.m.mid_run();
        Ok(())
    }
}

/// Find the first cycle at which machines `a` and `b` — both positioned at
/// the start of `program` (or restored to the same mid-run point) —
/// diverge in architectural state, stepping in chunks of at most
/// `initial_chunk` cycles.
///
/// `perturb_b` optionally injects a single-word SRF corruption into `b`
/// at a chosen cycle (negative testing: the bisector must report exactly
/// that cycle, provided the corrupted word's effect persists in state).
///
/// Returns `Ok(None)` when both machines complete the program with
/// byte-identical snapshots at every compared cycle, `Ok(Some(d))` with
/// the exact first diverging cycle and a structural state diff otherwise.
/// Both machines are left near the divergence point (or at completion).
///
/// # Errors
///
/// [`SnapError`] if a snapshot fails to restore — only possible when the
/// two machines were built from different configurations or programs.
pub fn first_divergence(
    a: &mut Machine,
    b: &mut Machine,
    program: &StreamProgram,
    initial_chunk: u64,
    perturb_b: Option<PerturbAt>,
) -> Result<Option<Divergence>, SnapError> {
    let cross_engine = a.engine() != b.engine();
    let mut sa = Side {
        m: a,
        at: 0,
        done: false,
        perturb: None,
    };
    let mut sb = Side {
        m: b,
        at: 0,
        done: false,
        perturb: perturb_b,
    };
    let mut chunk = initial_chunk.max(1);

    // Starting states must agree (a divergence "at cycle 0" means the two
    // machines were prepared differently).
    let mut last_equal_a = sa.m.save_state(program);
    let mut last_equal_b = sb.m.save_state(program);
    if comparable(&last_equal_a, cross_engine)? != comparable(&last_equal_b, cross_engine)? {
        let diffs = diff_snapshots(&last_equal_a, &last_equal_b)?;
        return Ok(Some(Divergence { cycle: 0, diffs }));
    }
    let mut equal_at = sa.at;

    loop {
        if sa.done && sb.done {
            return Ok(None);
        }
        sa.step(program, chunk);
        sb.step(program, chunk);
        let na = sa.m.save_state(program);
        let nb = sb.m.save_state(program);
        if comparable(&na, cross_engine)? == comparable(&nb, cross_engine)? {
            last_equal_a = na;
            last_equal_b = nb;
            equal_at = sa.at;
            continue;
        }
        if chunk == 1 {
            let diffs = diff_snapshots(&na, &nb)?;
            return Ok(Some(Divergence {
                cycle: equal_at + 1,
                diffs,
            }));
        }
        // Rewind to the last agreed state and narrow the step.
        sa.restore(program, &last_equal_a, equal_at)?;
        sb.restore(program, &last_equal_b, equal_at)?;
        chunk = (chunk / 2).max(1);
    }
}

/// Project a snapshot onto its comparable bytes: the engine-selection
/// byte of the `meta` section is masked (it is configuration, not state),
/// and for cross-engine comparison the representation-dependent `kctx`
/// section (tape ring vs. interpreter context queue) is skipped.
fn comparable(snapshot: &[u8], cross_engine: bool) -> Result<Vec<u8>, SnapError> {
    let payload = snap::unframe(snapshot)?;
    let sections = snap::read_sections(payload)?;
    let rebuilt: Vec<(String, Vec<u8>)> = sections
        .into_iter()
        .filter(|s| !(cross_engine && s.name == "kctx"))
        .map(|mut s| {
            if s.name == "meta" && s.bytes.len() > 16 {
                s.bytes[16] = 0xff; // engine tag follows the two fingerprints
            }
            (s.name, s.bytes)
        })
        .collect();
    let mut e = Enc::new();
    snap::write_sections(&mut e, &rebuilt);
    Ok(e.into_bytes())
}
