//! Deterministic parallel sweep driver.
//!
//! Simulation points (app × config × params) are independent, so a sweep
//! fans them across OS threads with [`std::thread::scope`]. Work is pulled
//! from a shared atomic counter (no static partitioning, so one slow point
//! doesn't idle a whole thread's share) and every result is returned at
//! its item's input index — a parallel sweep yields exactly the same
//! `Vec` as [`run_serial`] over the same items, regardless of thread
//! count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every item on all available cores; results in item order.
///
/// Each worker claims items via an atomic cursor and stamps results with
/// the item index, so the output order is deterministic even though the
/// execution order is not. Uses at most one thread per item.
///
/// # Panics
///
/// Propagates a panic from any worker (the whole sweep fails rather than
/// returning partial results).
pub fn run_parallel<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_parallel_threads(items, threads, f)
}

/// [`run_parallel`] with an explicit worker count (clamped to the item
/// count). Lets tests force genuine multi-thread interleaving even on a
/// single-core host, where `available_parallelism` would give one worker.
fn run_parallel_threads<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item produces exactly one result"))
        .collect()
}

/// Serial twin of [`run_parallel`]: same signature, same result order.
pub fn run_serial<T, R>(items: &[T], f: impl Fn(&T) -> R) -> Vec<R> {
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_matches_serial_order() {
        let items: Vec<u64> = (0..100).collect();
        let f = |&x: &u64| x * x + 1;
        assert_eq!(run_parallel(&items, f), run_serial(&items, f));
    }

    #[test]
    fn forced_thread_counts_match_serial() {
        // Explicit worker counts exercise real cross-thread work stealing
        // even when the host reports a single core.
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9) ^ (x >> 3);
        let expect = run_serial(&items, f);
        for threads in [1, 2, 4, 16, 300] {
            assert_eq!(
                run_parallel_threads(&items, threads, f),
                expect,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(run_parallel(&none, |&x| x).is_empty());
        assert_eq!(run_parallel(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let items: Vec<usize> = (0..257).collect();
        let got = run_parallel(&items, |&i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(got, items);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        run_parallel(&[1u32, 2, 3], |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
