//! Differential execution: cycle-accurate machine vs reference executor.

use std::fmt;

use isrf_core::stats::RunStats;
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;

use crate::refexec::{RefCounts, RefMachine};

/// Where a differential run diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// An output-region memory word differs: `(addr, machine, reference)`.
    Memory(u32, u32, u32),
    /// An SRF word differs: `(lane, offset, machine, reference)`.
    Srf(usize, u32, u32, u32),
    /// In-lane indexed word counts differ: `(machine, reference)`.
    InlaneCount(u64, u64),
    /// Cross-lane indexed word counts differ: `(machine, reference)`.
    CrosslaneCount(u64, u64),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DiffError::Memory(addr, m, r) => {
                write!(f, "memory[{addr:#x}]: machine {m:#x} != reference {r:#x}")
            }
            DiffError::Srf(lane, off, m, r) => write!(
                f,
                "srf[lane {lane}][{off:#x}]: machine {m:#x} != reference {r:#x}"
            ),
            DiffError::InlaneCount(m, r) => {
                write!(f, "in-lane indexed words: machine {m} != reference {r}")
            }
            DiffError::CrosslaneCount(m, r) => {
                write!(f, "cross-lane indexed words: machine {m} != reference {r}")
            }
        }
    }
}

/// Result of a successful differential run.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The cycle-accurate machine's stats for the run.
    pub stats: RunStats,
    /// The reference executor's indexed word counts (already checked
    /// against `stats.srf`).
    pub counts: RefCounts,
}

/// Run `program` on both the machine and a reference snapshot of it, then
/// compare final state:
///
/// * every word of every `(base, words)` output region in memory,
/// * the entire remaining memory image (stores land functionally at issue
///   on every configuration, so the images must be identical),
/// * the entire SRF,
/// * the machine's indexed SRF word counts against the reference's.
///
/// # Errors
///
/// Returns every divergence found (memory first, then SRF, then counts),
/// or the machine stats and reference counts on agreement.
pub fn run_differential(
    machine: &mut Machine,
    program: &StreamProgram,
    outputs: &[(u32, u32)],
) -> Result<DiffOutcome, Vec<DiffError>> {
    let mut reference = RefMachine::from_machine(machine);
    reference.run(program);
    let stats = machine.run(program);

    let mut errors = Vec::new();
    const MAX_ERRORS: usize = 32;

    // Output regions first, so the report leads with the words callers
    // actually consume, then a linear scan of the full memory image (a
    // mismatch inside an output region may appear twice; both scans cap).
    let mem_words = machine.mem().memory().len().max(reference.mem().len()) as u32;
    let mut regions: Vec<(u32, u32)> = outputs.to_vec();
    regions.push((0, mem_words));
    'mem: for &(base, words) in &regions {
        for k in 0..words {
            let addr = base + k;
            let m = machine.mem().memory().read(addr);
            let r = reference.mem().read(addr);
            if m != r {
                errors.push(DiffError::Memory(addr, m, r));
                if errors.len() >= MAX_ERRORS {
                    break 'mem;
                }
            }
        }
    }

    if errors.len() < MAX_ERRORS {
        'srf: for lane in 0..machine.config().lanes {
            for off in 0..machine.srf().bank_words() {
                let m = machine.srf().read(lane, off);
                let r = reference.srf().read(lane, off);
                if m != r {
                    errors.push(DiffError::Srf(lane, off, m, r));
                    if errors.len() >= MAX_ERRORS {
                        break 'srf;
                    }
                }
            }
        }
    }

    let counts = reference.counts();
    if stats.srf.inlane_words != counts.inlane_words {
        errors.push(DiffError::InlaneCount(
            stats.srf.inlane_words,
            counts.inlane_words,
        ));
    }
    if stats.srf.crosslane_words != counts.crosslane_words {
        errors.push(DiffError::CrosslaneCount(
            stats.srf.crosslane_words,
            counts.crosslane_words,
        ));
    }

    if errors.is_empty() {
        Ok(DiffOutcome { stats, counts })
    } else {
        Err(errors)
    }
}
