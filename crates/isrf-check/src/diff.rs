//! Differential execution: cycle-accurate machine vs reference executor.

use std::fmt;

use isrf_core::stats::RunStats;
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;
use isrf_trace::Tracer;

use crate::refexec::{RefCounts, RefMachine};

/// How many trailing trace events a [`DiffFailure`] carries.
const TRACE_TAIL: usize = 32;

/// Where a differential run diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The machine's static verifier rejected the program before it ran:
    /// `(code, rendered diagnostic)`.
    Verify(String, String),
    /// An output-region memory word differs: `(addr, machine, reference)`.
    Memory(u32, u32, u32),
    /// An SRF word differs: `(lane, offset, machine, reference)`.
    Srf(usize, u32, u32, u32),
    /// In-lane indexed word counts differ: `(machine, reference)`.
    InlaneCount(u64, u64),
    /// Cross-lane indexed word counts differ: `(machine, reference)`.
    CrosslaneCount(u64, u64),
    /// The trace-event audit disagrees with the machine's reported
    /// Figure-12 cycle breakdown.
    Audit(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Verify(_, rendered) => write!(f, "static verification: {rendered}"),
            DiffError::Memory(addr, m, r) => {
                write!(f, "memory[{addr:#x}]: machine {m:#x} != reference {r:#x}")
            }
            DiffError::Srf(lane, off, m, r) => write!(
                f,
                "srf[lane {lane}][{off:#x}]: machine {m:#x} != reference {r:#x}"
            ),
            DiffError::InlaneCount(m, r) => {
                write!(f, "in-lane indexed words: machine {m} != reference {r}")
            }
            DiffError::CrosslaneCount(m, r) => {
                write!(f, "cross-lane indexed words: machine {m} != reference {r}")
            }
            DiffError::Audit(msg) => write!(f, "cycle-attribution audit: {msg}"),
        }
    }
}

/// A failed differential run: every divergence found, plus the last few
/// trace events leading up to the end of the run for post-mortem context.
#[derive(Debug, Clone)]
pub struct DiffFailure {
    /// The divergences, in scan order (verification, memory, SRF, counts,
    /// audit).
    pub errors: Vec<DiffError>,
    /// The final `TRACE_TAIL` recorded events, already rendered one per
    /// line as `  @<cycle> <event>`.
    pub trace_tail: Vec<String>,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} divergence(s):", self.errors.len())?;
        for e in &self.errors {
            writeln!(f, "  {e}")?;
        }
        if !self.trace_tail.is_empty() {
            writeln!(f, "last {} trace events:", self.trace_tail.len())?;
            for line in &self.trace_tail {
                writeln!(f, "{line}")?;
            }
        }
        Ok(())
    }
}

/// Result of a successful differential run.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The cycle-accurate machine's stats for the run.
    pub stats: RunStats,
    /// The reference executor's indexed word counts (already checked
    /// against `stats.srf`).
    pub counts: RefCounts,
}

/// Run `program` on both the machine and a reference snapshot of it, then
/// compare final state. The machine's installed static verifier (if any)
/// runs first; its diagnostics become [`DiffError::Verify`] entries and the
/// program is never simulated. On a clean verification the comparison
/// covers:
///
/// * every word of every `(base, words)` output region in memory,
/// * the entire remaining memory image (stores land functionally at issue
///   on every configuration, so the images must be identical),
/// * the entire SRF,
/// * the machine's indexed SRF word counts against the reference's.
///
/// The machine additionally runs under a recording [`Tracer`]; the
/// event-stream audit must reconstruct the machine's reported Figure-12
/// cycle breakdown exactly, and any failure report carries the last few
/// trace events for context.
///
/// # Errors
///
/// Returns every divergence found (memory first, then SRF, then counts,
/// then audit), or the machine stats and reference counts on agreement.
pub fn run_differential(
    machine: &mut Machine,
    program: &StreamProgram,
    outputs: &[(u32, u32)],
) -> Result<DiffOutcome, DiffFailure> {
    // Static verification first: a program the machine's installed
    // verifier rejects would panic (or wedge) mid-simulation, so surface
    // the diagnostics as a structured failure instead.
    if let Err(e) = machine.verify_program(program) {
        return Err(DiffFailure {
            errors: e
                .diagnostics
                .iter()
                .take(32)
                .map(|d| DiffError::Verify(d.code.clone(), d.to_string()))
                .collect(),
            trace_tail: Vec::new(),
        });
    }
    let mut reference = RefMachine::from_machine(machine);
    reference.run(program);
    let prev = machine.set_tracer(Tracer::recording(TRACE_TAIL));
    let stats = machine.run(program);
    let recorder = machine
        .set_tracer(prev)
        .into_recorder()
        .expect("recording tracer was installed");

    let mut errors = Vec::new();
    const MAX_ERRORS: usize = 32;

    // Output regions first, so the report leads with the words callers
    // actually consume, then a linear scan of the full memory image (a
    // mismatch inside an output region may appear twice; both scans cap).
    let mem_words = machine.mem().memory().len().max(reference.mem().len()) as u32;
    let mut regions: Vec<(u32, u32)> = outputs.to_vec();
    regions.push((0, mem_words));
    'mem: for &(base, words) in &regions {
        for k in 0..words {
            let addr = base + k;
            let m = machine.mem().memory().read(addr);
            let r = reference.mem().read(addr);
            if m != r {
                errors.push(DiffError::Memory(addr, m, r));
                if errors.len() >= MAX_ERRORS {
                    break 'mem;
                }
            }
        }
    }

    if errors.len() < MAX_ERRORS {
        'srf: for lane in 0..machine.config().lanes {
            for off in 0..machine.srf().bank_words() {
                let m = machine.srf().read(lane, off);
                let r = reference.srf().read(lane, off);
                if m != r {
                    errors.push(DiffError::Srf(lane, off, m, r));
                    if errors.len() >= MAX_ERRORS {
                        break 'srf;
                    }
                }
            }
        }
    }

    let counts = reference.counts();
    if stats.srf.inlane_words != counts.inlane_words {
        errors.push(DiffError::InlaneCount(
            stats.srf.inlane_words,
            counts.inlane_words,
        ));
    }
    if stats.srf.crosslane_words != counts.crosslane_words {
        errors.push(DiffError::CrosslaneCount(
            stats.srf.crosslane_words,
            counts.crosslane_words,
        ));
    }

    for m in recorder.audit().verify(&stats.breakdown) {
        errors.push(DiffError::Audit(m.to_string()));
    }

    if errors.is_empty() {
        Ok(DiffOutcome { stats, counts })
    } else {
        Err(DiffFailure {
            errors,
            trace_tail: recorder.ring().tail_lines(TRACE_TAIL),
        })
    }
}
