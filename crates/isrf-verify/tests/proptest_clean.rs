//! Property: any program the verifier passes must simulate to completion —
//! no runtime hazard asserts, no wedges. Random well-formed programs
//! (plain copy/arithmetic kernels everywhere, masked in-lane lookups on
//! indexed configurations) are verified and then run; the verifier
//! rejecting one, or the machine panicking on a clean one, fails the test.

use std::sync::Arc;

use proptest::prelude::*;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_lang::parse_kernel;
use isrf_sim::{Machine, ProgramVerifier, StreamBinding, StreamProgram};
use isrf_verify::Verifier;

const ARITH_SRC: &str = r#"
kernel arith(istream<int> in, ostream<int> out) {
  int a, c;
  while (!eos(in)) {
    in >> a;
    c = a * 3 + 1;
    out << c;
  }
}
"#;

/// Masked in-lane lookup; `{MASK}` is substituted so the index provably
/// stays inside the table (the verifier's V303 only flags *definite*
/// overruns, so the mask must really bound the index at runtime too).
const LOOKUP_SRC: &str = r#"
kernel lookup(
    istream<int> in,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b, c;
  while (!eos(in)) {
    in >> a;
    LUT[a & {MASK}] >> b;
    c = a + b;
    out << c;
  }
}
"#;

fn fill(m: &mut Machine, b: &StreamBinding, salt: u32) {
    let data: Vec<Word> = (0..b.words())
        .map(|k| k.wrapping_mul(2654435761).wrapping_add(salt) as Word)
        .collect();
    m.write_stream(b, &data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verified_clean_programs_run_to_completion(
        cfg_idx in 0usize..4,
        records_per_lane in 1u32..8,
        use_lookup in any::<bool>(),
        mask_idx in 0usize..3,
        salt in any::<u32>(),
    ) {
        let name = ConfigName::ALL[cfg_idx];
        let cfg = MachineConfig::preset(name);
        let indexed = cfg.srf.indexed.is_some();
        let mut m = Machine::new(cfg).expect("preset validates");
        let lanes = m.config().lanes as u32;
        let records = records_per_lane * lanes;

        let mut p = StreamProgram::new();
        if use_lookup && indexed {
            let mask = [15u32, 31, 63][mask_idx];
            let src = LOOKUP_SRC.replace("{MASK}", &mask.to_string());
            let k = Arc::new(parse_kernel(&src).expect("lookup parses"));
            let s = schedule(&k, &SchedParams::from_machine(m.config()))
                .expect("lookup schedules");
            let input = m.alloc_stream(1, records);
            fill(&mut m, &input, salt);
            // (mask + 1) records per lane: every masked index is a valid
            // table entry at runtime, so the clean verdict must hold up.
            let lut = m.alloc_stream(1, (mask + 1) * lanes);
            fill(&mut m, &lut, salt ^ 0xa5a5);
            let out = m.alloc_stream(1, records);
            p.kernel(k, s, vec![input, lut, out], records_per_lane as u64, &[]);
        } else {
            let k = Arc::new(parse_kernel(ARITH_SRC).expect("arith parses"));
            let s = schedule(&k, &SchedParams::from_machine(m.config()))
                .expect("arith schedules");
            let input = m.alloc_stream(1, records);
            fill(&mut m, &input, salt);
            let out = m.alloc_stream(1, records);
            p.kernel(k, s, vec![input, out], records_per_lane as u64, &[]);
        }

        let v = Verifier::new();
        let d = v.verify(m.config(), &m.verify_env(), &p);
        prop_assert!(d.is_empty(), "well-formed program rejected: {d:?}");

        // A clean verdict must mean a clean run: any panic here (runtime
        // hazard assert, wedge detector) is a verifier soundness hole.
        m.set_verifier(Some(Arc::new(v)));
        let stats = m.run(&p);
        prop_assert!(stats.cycles > 0);
    }
}
