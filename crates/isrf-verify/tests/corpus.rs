//! The negative corpus: one deliberately ill-formed program per diagnostic
//! code, each asserting the *exact* finding list (no cascades, no noise)
//! and — for kernel-scoped findings — that the span resolves to the right
//! `.isrf` source line. A final test disables each check family in turn
//! and proves its corpus entry goes undetected, so every check is
//! load-bearing.

use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::ir::Opcode;
use isrf_kernel::sched::{schedule, SchedParams, Schedule};
use isrf_lang::parse_kernel;
use isrf_mem::AddrPattern;
use isrf_sim::{Diagnostic, Machine, ProgramVerifier, SrfRange, StreamBinding, StreamProgram};
use isrf_verify::{codes, Check, Verifier};

const V101: &str = include_str!("corpus/v101_unfilled_read.isrf");
const V102: &str = include_str!("corpus/v102_unallocated.isrf");
const V103: &str = include_str!("corpus/v103_binding_overflow.isrf");
const V201: &str = include_str!("corpus/v201_overlap.isrf");
const V202: &str = include_str!("corpus/v202_capacity.isrf");
const V301: &str = include_str!("corpus/v301_indexed_on_base.isrf");
const V302: &str = include_str!("corpus/v302_crosslane_disabled.isrf");
const V303: &str = include_str!("corpus/v303_oob_index.isrf");
const V310P: &str = include_str!("corpus/v310_producer.isrf");
const V310C: &str = include_str!("corpus/v310_consumer.isrf");
const V311: &str = include_str!("corpus/v311_scatter.isrf");
const V312P: &str = include_str!("corpus/v312_producer.isrf");
const V401: &str = include_str!("corpus/v401_slack.isrf");
const V501: &str = include_str!("corpus/v501_fifo_deadlock.isrf");
const W601: &str = include_str!("corpus/w601_dead_output.isrf");

fn diags(m: &Machine, p: &StreamProgram, v: &Verifier) -> Vec<Diagnostic> {
    v.verify(m.config(), &m.verify_env(), p)
}

fn codes_of(d: &[Diagnostic]) -> Vec<&str> {
    d.iter().map(|d| d.code.as_str()).collect()
}

/// 1-based line of the first source line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    (src.lines()
        .position(|l| l.contains(needle))
        .expect("needle")
        + 1) as u32
}

fn base_machine() -> Machine {
    Machine::new(MachineConfig::preset(ConfigName::Base)).expect("preset validates")
}

fn isrf4_machine() -> Machine {
    Machine::new(MachineConfig::preset(ConfigName::Isrf4)).expect("preset validates")
}

fn compile(src: &str, params_from: ConfigName) -> (Arc<isrf_kernel::ir::Kernel>, Schedule) {
    let k = Arc::new(parse_kernel(src).expect("corpus kernel parses"));
    let params = SchedParams::from_machine(&MachineConfig::preset(params_from));
    let s = schedule(&k, &params).expect("corpus kernel schedules");
    (k, s)
}

fn fill(m: &mut Machine, b: &StreamBinding) {
    let data: Vec<Word> = (0..b.words()).map(|k| (k * 7 + 13) as Word).collect();
    m.write_stream(b, &data);
}

// ---------------------------------------------------------------------------
// Case builders (shared with the load-bearing test)
// ---------------------------------------------------------------------------

fn case_v101() -> (Machine, StreamProgram) {
    let mut m = base_machine();
    let (k, s) = compile(V101, ConfigName::Base);
    let input = m.alloc_stream(1, 64); // never filled
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, out], 8, &[]);
    (m, p)
}

fn case_v201() -> (Machine, StreamProgram) {
    let mut m = base_machine();
    let (k, s) = compile(V201, ConfigName::Base);
    let buf = m.alloc_stream(1, 64);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    // Two loads into the same destination with no dependence between them.
    let l1 = p.load(AddrPattern::contiguous(0, 64), buf, false, &[]);
    let l2 = p.load(AddrPattern::contiguous(1024, 64), buf, false, &[]);
    p.kernel(k, s, vec![buf, out], 8, &[l1, l2]);
    (m, p)
}

fn case_v301() -> (Machine, StreamProgram) {
    let mut m = base_machine();
    // Base parameters cannot be assumed to schedule indexed ops; borrow the
    // ISRF4 latencies — the machine under verification stays Base.
    let (k, s) = compile(V301, ConfigName::Isrf4);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    let lut = m.alloc_stream(1, 512);
    fill(&mut m, &lut);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, lut, out], 8, &[]);
    (m, p)
}

fn case_v401() -> (Machine, StreamProgram) {
    let mut m = isrf4_machine();
    let (k, mut s) = compile(V401, ConfigName::Isrf4);
    // Tamper with the (correct) schedule: pull the indexed data read to 5
    // cycles after its address issue, below the in-lane separation of 6.
    let r = k
        .ops
        .iter()
        .position(|o| matches!(o.opcode, Opcode::IdxRead(_)))
        .expect("lookup kernel has an indexed read");
    let a = k.ops[r].operands[0].value.index();
    s.slots[r] = s.slots[a] + 5;
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    let lut = m.alloc_stream(1, 512);
    fill(&mut m, &lut);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, lut, out], 8, &[]);
    (m, p)
}

fn case_v501() -> (Machine, StreamProgram) {
    let mut m = isrf4_machine();
    let k = Arc::new(parse_kernel(V501).expect("corpus kernel parses"));
    let r = k
        .ops
        .iter()
        .position(|o| matches!(o.opcode, Opcode::IdxRead(_)))
        .expect("lookup kernel has an indexed read");
    let a = k.ops[r].operands[0].value.index();
    // Hand-build a schedule (II = 1, one op per cycle) that separates the
    // address push from its data pop by 17 cycles: 16 records would have to
    // sit outstanding, but the 8-entry FIFO can only shed records into the
    // 8-word buffer — a guaranteed wedge.
    let n = k.ops.len();
    let mut slots: Vec<u32> = (0..n as u32).collect();
    for (i, slot) in slots.iter_mut().enumerate().skip(r) {
        *slot = a as u32 + 17 + (i - r) as u32;
    }
    let span = slots.iter().max().copied().unwrap_or(0) + 1;
    let s = Schedule {
        ii: 1,
        slots,
        span,
        completion: span,
    };
    let input = m.alloc_stream(1, 512);
    fill(&mut m, &input);
    let lut = m.alloc_stream(1, 512);
    fill(&mut m, &lut);
    let out = m.alloc_stream(1, 512);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, lut, out], 64, &[]);
    (m, p)
}

/// Producer (constant 100 into `idx`) feeding a consumer that indexes a
/// 64-record-per-lane table with it: invisible per kernel, V310 across.
fn case_v310() -> (Machine, StreamProgram) {
    let mut m = isrf4_machine();
    let (maker, ms) = compile(V310P, ConfigName::Isrf4);
    let (consumer, cs) = compile(V310C, ConfigName::Isrf4);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    let idx = m.alloc_stream(1, 64);
    let lut = m.alloc_stream(1, 512);
    fill(&mut m, &lut);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    let prod = p.kernel(maker, ms, vec![input, idx], 8, &[]);
    p.kernel(consumer, cs, vec![idx, lut, out], 8, &[prod]);
    (m, p)
}

/// Same producer, but the consumer *writes* through the poisoned index.
fn case_v311() -> (Machine, StreamProgram) {
    let mut m = isrf4_machine();
    let (maker, ms) = compile(V310P, ConfigName::Isrf4);
    let (updater, us) = compile(V311, ConfigName::Isrf4);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    let idx = m.alloc_stream(1, 64);
    let val = m.alloc_stream(1, 64);
    fill(&mut m, &val);
    let tbl = m.alloc_stream(1, 512);
    fill(&mut m, &tbl);
    let mut p = StreamProgram::new();
    let prod = p.kernel(maker, ms, vec![input, idx], 8, &[]);
    p.kernel(updater, us, vec![idx, val, tbl], 8, &[prod]);
    (m, p)
}

/// Producer writes -5 into every index record; a gather adds them to
/// base 64 in u32 arithmetic, so every address provably wraps.
fn case_v312() -> (Machine, StreamProgram) {
    let mut m = isrf4_machine();
    let (maker, ms) = compile(V312P, ConfigName::Isrf4);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    let idx = m.alloc_stream(1, 64);
    let dst = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    let prod = p.kernel(maker, ms, vec![input, idx], 8, &[]);
    p.gather_dyn(idx, 64, dst, false, &[prod]);
    (m, p)
}

/// A kernel output nothing ever reads back: dead SRF space (W601).
fn case_w601() -> (Machine, StreamProgram) {
    let mut m = base_machine();
    let (k, s) = compile(W601, ConfigName::Base);
    let buf = m.alloc_stream(1, 64);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, 64), buf, false, &[]);
    p.kernel(k, s, vec![buf, out], 8, &[l]);
    (m, p)
}

/// A 32-words-per-bank range holding 8 words of records (W602).
fn case_w602() -> (Machine, StreamProgram) {
    let mut m = base_machine();
    let oversized = StreamBinding::whole(m.alloc_stream(1, 256).range, 1, 64);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(0, 64), oversized, false, &[]);
    p.store(oversized, AddrPattern::contiguous(4096, 64), false, &[l]);
    (m, p)
}

// ---------------------------------------------------------------------------
// One test per diagnostic code
// ---------------------------------------------------------------------------

#[test]
fn v101_unfilled_read() {
    let (m, p) = case_v101();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::UNFILLED_READ], "{d:?}");
    assert!(d[0].message.contains("stream `in`"), "{}", d[0]);
    assert_eq!(d[0].prog_op, Some(0));
}

#[test]
fn v102_unallocated_binding() {
    let mut m = base_machine();
    let (k, s) = compile(V102, ConfigName::Base);
    let out = m.alloc_stream(1, 64);
    // A binding the allocator never handed out (bank words 512..520).
    let input = StreamBinding::whole(
        SrfRange {
            base: 512,
            words_per_bank: 8,
        },
        1,
        64,
    );
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, out], 8, &[]);
    let d = diags(&m, &p, &Verifier::new());
    // Exactly V102: the V101 cascade for the same stream is suppressed.
    assert_eq!(codes_of(&d), [codes::UNALLOCATED_BINDING], "{d:?}");
    assert!(d[0].message.contains("stream `in`"), "{}", d[0]);
}

#[test]
fn v103_binding_overflow() {
    let mut m = base_machine();
    let (k, s) = compile(V103, ConfigName::Base);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    // 128 one-word records need 16 words per bank; the range holds 8.
    let out = StreamBinding::whole(m.alloc_stream(1, 64).range, 1, 128);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, out], 8, &[]);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::BINDING_OVERFLOW], "{d:?}");
    assert!(d[0].message.contains("stream `out`"), "{}", d[0]);
}

#[test]
fn v201_overlap_hazard() {
    let (m, p) = case_v201();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::OVERLAP_HAZARD], "{d:?}");
    assert!(
        d[0].message.contains("load (op 0)") && d[0].message.contains("load (op 1)"),
        "{}",
        d[0]
    );
}

#[test]
fn v202_capacity_exceeded() {
    let mut m = base_machine();
    let (k, s) = compile(V202, ConfigName::Base);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    // Range [4000, 4200) spills past the 4096-word bank.
    let out = StreamBinding::whole(
        SrfRange {
            base: 4000,
            words_per_bank: 200,
        },
        1,
        1600,
    );
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, out], 8, &[]);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::CAPACITY_EXCEEDED], "{d:?}");
    assert!(d[0].message.contains("stream `out`"), "{}", d[0]);
}

#[test]
fn v301_indexed_on_non_indexed_config() {
    let (m, p) = case_v301();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(
        codes_of(&d),
        [codes::INDEXED_ON_NON_INDEXED_CONFIG],
        "{d:?}"
    );
    assert_eq!(d[0].kernel.as_deref(), Some("lookup"));
    assert_eq!(d[0].line, Some(line_of(V301, "LUT[")), "{}", d[0]);
}

#[test]
fn v302_crosslane_without_network() {
    let mut cfg = MachineConfig::preset(ConfigName::Isrf1);
    cfg.srf
        .indexed
        .as_mut()
        .expect("ISRF1 is indexed")
        .crosslane = false;
    let k = Arc::new(parse_kernel(V302).expect("corpus kernel parses"));
    let s = schedule(&k, &SchedParams::from_machine(&cfg)).expect("corpus kernel schedules");
    let mut m = Machine::new(cfg).expect("config validates");
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    let lut = m.alloc_stream(1, 512);
    fill(&mut m, &lut);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, lut, out], 8, &[]);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::CROSS_LANE_WITHOUT_NETWORK], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("lookup"));
    assert_eq!(d[0].line, Some(line_of(V302, "LUT[")), "{}", d[0]);
}

#[test]
fn v303_index_out_of_bounds() {
    let mut m = isrf4_machine();
    let (k, s) = compile(V303, ConfigName::Isrf4);
    let input = m.alloc_stream(1, 64);
    fill(&mut m, &input);
    // 512 global one-word records = 64 per lane: valid in-lane indices 0..=63.
    let lut = m.alloc_stream(1, 512);
    fill(&mut m, &lut);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![input, lut, out], 8, &[]);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::INDEX_OUT_OF_BOUNDS], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("lookup"));
    assert_eq!(d[0].line, Some(line_of(V303, "LUT[")), "{}", d[0]);
    assert!(d[0].message.contains("0..=63"), "{}", d[0]);
}

#[test]
fn v401_insufficient_slack() {
    let (m, p) = case_v401();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::INSUFFICIENT_SLACK], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("lookup"));
    assert_eq!(d[0].line, Some(line_of(V401, "LUT[")), "{}", d[0]);
}

#[test]
fn v501_fifo_deadlock() {
    let (m, p) = case_v501();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::FIFO_DEADLOCK], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("lookup"));
    assert_eq!(d[0].line, Some(line_of(V501, "LUT[")), "{}", d[0]);
    assert!(d[0].message.contains("address FIFO"), "{}", d[0]);
}

#[test]
fn v310_propagated_index_out_of_bounds() {
    let (m, p) = case_v310();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::PROPAGATED_INDEX_OOB], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("lookup_dyn"));
    assert_eq!(d[0].line, Some(line_of(V310C, "LUT[")), "{}", d[0]);
    assert!(d[0].message.contains("[100, 100]"), "{}", d[0]);
    // The dataflow path names the producing kernel and the SRF region.
    assert!(
        d[0].notes.iter().any(|n| n.contains("make_idx")),
        "{:?}",
        d[0].notes
    );
}

#[test]
fn v311_propagated_write_out_of_bounds() {
    let (m, p) = case_v311();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::PROPAGATED_WRITE_OOB], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("table_update"));
    assert_eq!(d[0].line, Some(line_of(V311, "TBL[")), "{}", d[0]);
    assert!(d[0].message.contains("stream `TBL`"), "{}", d[0]);
}

#[test]
fn v312_gather_address_wrap() {
    let (m, p) = case_v312();
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::GATHER_ADDRESS_WRAP], "{d:?}");
    assert_eq!(d[0].prog_op, Some(1));
    assert!(d[0].message.contains("base 64"), "{}", d[0]);
    assert!(
        d[0].notes.iter().any(|n| n.contains("[-5, -5]")),
        "{:?}",
        d[0].notes
    );
}

#[test]
fn w601_dead_stream_is_a_warning() {
    let (m, p) = case_w601();
    let v = Verifier::new();
    // The program is *valid* — space findings never fail verification.
    assert!(diags(&m, &p, &v).is_empty());
    let r = v.report(m.config(), &m.verify_env(), &p);
    assert_eq!(
        codes_of(&r.warnings),
        [codes::DEAD_STREAM],
        "{:?}",
        r.warnings
    );
    let w = &r.warnings[0];
    assert_eq!(w.kernel.as_deref(), Some("copy_through"));
    assert_eq!(w.line, Some(line_of(W601, "out <<")), "{w}");
}

#[test]
fn w602_over_allocation_is_a_warning() {
    let (m, p) = case_w602();
    let v = Verifier::new();
    assert!(diags(&m, &p, &v).is_empty());
    let r = v.report(m.config(), &m.verify_env(), &p);
    assert_eq!(
        codes_of(&r.warnings),
        [codes::OVER_ALLOCATION],
        "{:?}",
        r.warnings
    );
    assert!(
        r.warnings[0].message.contains("8 of the 32 words"),
        "{}",
        r.warnings[0]
    );
}

#[test]
fn gather_index_stream_must_be_filled() {
    // Builder-level case: a dynamic gather whose index stream was never
    // produced reads garbage addresses at issue.
    let mut m = base_machine();
    let idx = m.alloc_stream(1, 64);
    let dst = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.gather_dyn(idx, 0, dst, false, &[]);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::UNFILLED_READ], "{d:?}");
    assert!(d[0].message.contains("index stream"), "{}", d[0]);
}

// ---------------------------------------------------------------------------
// Wiring
// ---------------------------------------------------------------------------

#[test]
fn each_check_is_load_bearing() {
    type Case = fn() -> (Machine, StreamProgram);
    let cases: [(Case, Check, &str); 6] = [
        (case_v101, Check::Liveness, codes::UNFILLED_READ),
        (case_v201, Check::Allocation, codes::OVERLAP_HAZARD),
        (
            case_v301,
            Check::Indexed,
            codes::INDEXED_ON_NON_INDEXED_CONFIG,
        ),
        (case_v310, Check::Propagation, codes::PROPAGATED_INDEX_OOB),
        (case_v401, Check::Slack, codes::INSUFFICIENT_SLACK),
        (case_v501, Check::Deadlock, codes::FIFO_DEADLOCK),
    ];
    for (build, check, code) in cases {
        let (m, p) = build();
        let with = diags(&m, &p, &Verifier::new());
        assert_eq!(codes_of(&with), [code], "{check:?} with all checks on");
        let without = diags(&m, &p, &Verifier::new().without(check));
        assert!(
            without.is_empty(),
            "disabling {check:?} must drop {code}, got {without:?}"
        );
    }
    // Space findings surface through `report`, so the load-bearing proof
    // goes through it too.
    let (m, p) = case_w601();
    let with = Verifier::new().report(m.config(), &m.verify_env(), &p);
    assert_eq!(codes_of(&with.warnings), [codes::DEAD_STREAM]);
    let without = Verifier::new()
        .without(Check::Space)
        .report(m.config(), &m.verify_env(), &p);
    assert!(
        without.warnings.is_empty(),
        "disabling Space must drop W601, got {:?}",
        without.warnings
    );
}

#[test]
fn machine_hook_rejects_before_simulation() {
    let (mut m, p) = case_v101();
    m.set_verifier(Some(Arc::new(Verifier::new())));
    let err = m.verify_program(&p).expect_err("program is ill-formed");
    assert_eq!(err.diagnostics[0].code, codes::UNFILLED_READ);
    if cfg!(debug_assertions) {
        // The default VerifyPolicy::Debug rejects it at run time too.
        let err2 = m.run_checked(&p).expect_err("policy active in debug");
        assert_eq!(err2.diagnostics, err.diagnostics);
    }
}
