//! Properties of the static analyses over random well-formed programs:
//!
//! * the cost model's cycle floor is a true lower bound on simulated
//!   cycles under BOTH execution engines (tape and interpreter);
//! * whole-program propagation is monotone at the API level — every
//!   constant a producer can emit inside the out-of-bounds region keeps
//!   the V310 verdict (and the reported interval is exact), while every
//!   in-bounds constant keeps the program clean.

use std::sync::Arc;

use proptest::prelude::*;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_lang::parse_kernel;
use isrf_mem::AddrPattern;
use isrf_sim::{ExecEngine, Machine, ProgramVerifier, StreamBinding, StreamProgram};
use isrf_verify::{codes, cost_model, Verifier};

const ARITH_SRC: &str = r#"
kernel arith(istream<int> in, ostream<int> out) {
  int a, c;
  while (!eos(in)) {
    in >> a;
    c = a * 3 + 1;
    out << c;
  }
}
"#;

const LOOKUP_SRC: &str = r#"
kernel lookup(
    istream<int> in,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b, c;
  while (!eos(in)) {
    in >> a;
    LUT[a & 15] >> b;
    c = a + b;
    out << c;
  }
}
"#;

/// Producer writing the constant `{C}` into every record of `idx`.
const PRODUCER_SRC: &str = r#"
kernel make_idx(istream<int> in, ostream<int> idx) {
  int a, b;
  while (!eos(in)) {
    in >> a;
    b = {C};
    idx << b;
  }
}
"#;

const CONSUMER_SRC: &str = r#"
kernel lookup_dyn(
    istream<int> idx,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b;
  while (!eos(idx)) {
    idx >> a;
    LUT[a] >> b;
    out << b;
  }
}
"#;

fn fill(m: &mut Machine, b: &StreamBinding, salt: u32) {
    let data: Vec<Word> = (0..b.words())
        .map(|k| (k.wrapping_mul(2654435761).wrapping_add(salt) % 16) as Word)
        .collect();
    m.write_stream(b, &data);
}

/// A load → kernel → store pipeline exercising both the kernel and the
/// memory halves of the cost model.
fn build(
    name: ConfigName,
    records_per_lane: u32,
    use_lookup: bool,
    salt: u32,
) -> (Machine, StreamProgram) {
    let cfg = MachineConfig::preset(name);
    let indexed = cfg.srf.indexed.is_some();
    let mut m = Machine::new(cfg).expect("preset validates");
    let lanes = m.config().lanes as u32;
    let records = records_per_lane * lanes;

    let mut p = StreamProgram::new();
    let input = m.alloc_stream(1, records);
    let out = m.alloc_stream(1, records);
    let l = p.load(AddrPattern::contiguous(0, records), input, false, &[]);
    let kid = if use_lookup && indexed {
        let k = Arc::new(parse_kernel(LOOKUP_SRC).expect("lookup parses"));
        let s = schedule(&k, &SchedParams::from_machine(m.config())).expect("lookup schedules");
        let lut = m.alloc_stream(1, 16 * lanes);
        fill(&mut m, &lut, salt ^ 0xa5a5);
        p.kernel(k, s, vec![input, lut, out], records_per_lane as u64, &[l])
    } else {
        let k = Arc::new(parse_kernel(ARITH_SRC).expect("arith parses"));
        let s = schedule(&k, &SchedParams::from_machine(m.config())).expect("arith schedules");
        p.kernel(k, s, vec![input, out], records_per_lane as u64, &[l])
    };
    p.store(out, AddrPattern::contiguous(8192, records), false, &[kid]);
    (m, p)
}

/// The V310 producer/consumer pair with the produced constant `c`.
fn build_pair(c: i64) -> (Machine, StreamProgram) {
    let mut m = Machine::new(MachineConfig::preset(ConfigName::Isrf4)).expect("preset validates");
    let src = PRODUCER_SRC.replace("{C}", &c.to_string());
    let maker = Arc::new(parse_kernel(&src).expect("producer parses"));
    let params = SchedParams::from_machine(m.config());
    let ms = schedule(&maker, &params).expect("producer schedules");
    let consumer = Arc::new(parse_kernel(CONSUMER_SRC).expect("consumer parses"));
    let cs = schedule(&consumer, &params).expect("consumer schedules");
    let lanes = m.config().lanes as u32;
    let input = m.alloc_stream(1, 8 * lanes);
    fill(&mut m, &input, 1);
    let idx = m.alloc_stream(1, 8 * lanes);
    let lut = m.alloc_stream(1, 64 * lanes); // valid records 0..=63
    fill(&mut m, &lut, 2);
    let out = m.alloc_stream(1, 8 * lanes);
    let mut p = StreamProgram::new();
    let prod = p.kernel(maker, ms, vec![input, idx], 8, &[]);
    p.kernel(consumer, cs, vec![idx, lut, out], 8, &[prod]);
    (m, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn static_cycle_floor_is_sound_under_both_engines(
        cfg_idx in 0usize..4,
        records_per_lane in 1u32..8,
        use_lookup in any::<bool>(),
        salt in any::<u32>(),
    ) {
        let name = ConfigName::ALL[cfg_idx];
        let (m, p) = build(name, records_per_lane, use_lookup, salt);
        let d = Verifier::new().verify(m.config(), &m.verify_env(), &p);
        prop_assert!(d.is_empty(), "well-formed program rejected: {d:?}");
        let floor = cost_model(m.config(), &p).cycle_floor;
        for engine in [ExecEngine::Tape, ExecEngine::Interp] {
            let (mut m, p) = build(name, records_per_lane, use_lookup, salt);
            m.set_engine(engine);
            let cycles = m.run(&p).cycles;
            prop_assert!(
                floor <= cycles,
                "floor {floor} exceeds simulated {cycles} on {name} under {engine:?}"
            );
        }
    }

    #[test]
    fn propagation_flags_exactly_the_oob_constants(c in 0i64..512) {
        let (m, p) = build_pair(c);
        let d = Verifier::new().verify(m.config(), &m.verify_env(), &p);
        if c > 63 {
            // Everywhere in the OOB region the verdict (and the exact
            // propagated interval) must hold — widening the constant can
            // never lose the finding.
            prop_assert_eq!(d.len(), 1, "{:?}", &d);
            prop_assert_eq!(&d[0].code, codes::PROPAGATED_INDEX_OOB);
            let want = format!("[{c}, {c}]");
            prop_assert!(d[0].message.contains(&want), "{}", &d[0]);
        } else {
            prop_assert!(d.is_empty(), "in-bounds constant flagged: {:?}", &d);
        }
    }
}
