//! Gather-pattern negative corpus: the indexed-bounds checks (V301–V303)
//! exercised by the access shapes the sparse workloads introduce —
//! pointer-stream-driven condensed gathers, index streams exceeding the
//! SRF allocation, and unaligned (lane-skewed) cross-lane gathers. Each
//! case asserts the exact finding list and the `.isrf` source line.

use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::sched::{schedule, SchedParams, Schedule};
use isrf_lang::parse_kernel;
use isrf_sim::{Diagnostic, Machine, ProgramVerifier, StreamBinding, StreamProgram};
use isrf_verify::{codes, Check, Verifier};

const G301: &str = include_str!("corpus/g301_gather_on_base.isrf");
const G302: &str = include_str!("corpus/g302_gather_crosslane_disabled.isrf");
const G303_OVERRUN: &str = include_str!("corpus/g303_gather_overrun.isrf");
const G303_UNALIGNED: &str = include_str!("corpus/g303_unaligned_lane_gather.isrf");

fn diags(m: &Machine, p: &StreamProgram, v: &Verifier) -> Vec<Diagnostic> {
    v.verify(m.config(), &m.verify_env(), p)
}

fn codes_of(d: &[Diagnostic]) -> Vec<&str> {
    d.iter().map(|d| d.code.as_str()).collect()
}

/// 1-based line of the first source line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    (src.lines()
        .position(|l| l.contains(needle))
        .expect("needle")
        + 1) as u32
}

fn compile(src: &str, params_from: ConfigName) -> (Arc<isrf_kernel::ir::Kernel>, Schedule) {
    let k = Arc::new(parse_kernel(src).expect("corpus kernel parses"));
    let params = SchedParams::from_machine(&MachineConfig::preset(params_from));
    let s = schedule(&k, &params).expect("corpus kernel schedules");
    (k, s)
}

fn fill(m: &mut Machine, b: &StreamBinding) {
    let data: Vec<Word> = (0..b.words()).map(|k| (k * 5 + 3) as Word).collect();
    m.write_stream(b, &data);
}

/// The full SpMV gather shape (ptr + val + condensed X + out) on a
/// machine built from `cfg`, with the kernel scheduled under
/// `sched_from`'s latencies.
fn gather_case(src: &str, cfg: MachineConfig, sched_from: ConfigName) -> (Machine, StreamProgram) {
    let k = Arc::new(parse_kernel(src).expect("corpus kernel parses"));
    let params = SchedParams::from_machine(&MachineConfig::preset(sched_from));
    let s = schedule(&k, &params).expect("corpus kernel schedules");
    let mut m = Machine::new(cfg).expect("config validates");
    let ptr = m.alloc_stream(1, 64);
    fill(&mut m, &ptr);
    let val = m.alloc_stream(1, 64);
    fill(&mut m, &val);
    let x = m.alloc_stream(1, 256);
    fill(&mut m, &x);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![ptr, val, x, out], 8, &[]);
    (m, p)
}

#[test]
fn gather_on_base_is_v301() {
    // Base parameters cannot be assumed to schedule indexed ops; borrow
    // the ISRF4 latencies — the machine under verification stays Base.
    let (m, p) = gather_case(
        G301,
        MachineConfig::preset(ConfigName::Base),
        ConfigName::Isrf4,
    );
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(
        codes_of(&d),
        [codes::INDEXED_ON_NON_INDEXED_CONFIG],
        "{d:?}"
    );
    assert_eq!(d[0].kernel.as_deref(), Some("spmv_gather"));
    assert_eq!(d[0].line, Some(line_of(G301, "X[")), "{}", d[0]);
    assert!(d[0].message.contains("indexed stream `X`"), "{}", d[0]);
}

#[test]
fn gather_without_crosslane_network_is_v302() {
    let mut cfg = MachineConfig::preset(ConfigName::Isrf1);
    cfg.srf
        .indexed
        .as_mut()
        .expect("ISRF1 is indexed")
        .crosslane = false;
    // Schedule under the same crippled configuration: the latencies are
    // valid, only the network capability differs.
    let k = Arc::new(parse_kernel(G302).expect("corpus kernel parses"));
    let s = schedule(&k, &SchedParams::from_machine(&cfg)).expect("corpus kernel schedules");
    let mut m = Machine::new(cfg).expect("config validates");
    let ptr = m.alloc_stream(1, 64);
    fill(&mut m, &ptr);
    let val = m.alloc_stream(1, 64);
    fill(&mut m, &val);
    let x = m.alloc_stream(1, 256);
    fill(&mut m, &x);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![ptr, val, x, out], 8, &[]);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::CROSS_LANE_WITHOUT_NETWORK], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("spmv_gather"));
    assert_eq!(d[0].line, Some(line_of(G302, "X[")), "{}", d[0]);
}

/// The three-stream shape (no val stream) used by the V303 cases.
fn overrun_case(src: &str) -> (Machine, StreamProgram) {
    let (k, s) = compile(src, ConfigName::Isrf4);
    let mut m = Machine::new(MachineConfig::preset(ConfigName::Isrf4)).expect("preset validates");
    let ptr = m.alloc_stream(1, 64);
    fill(&mut m, &ptr);
    // 256 one-word records across 8 banks: valid cross-lane records
    // 0..=255.
    let x = m.alloc_stream(1, 256);
    fill(&mut m, &x);
    let out = m.alloc_stream(1, 64);
    let mut p = StreamProgram::new();
    p.kernel(k, s, vec![ptr, x, out], 8, &[]);
    (m, p)
}

#[test]
fn gather_overrunning_allocation_is_v303() {
    let (m, p) = overrun_case(G303_OVERRUN);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::INDEX_OUT_OF_BOUNDS], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("spmv_gather"));
    assert_eq!(d[0].line, Some(line_of(G303_OVERRUN, "X[")), "{}", d[0]);
    // The masked-and-biased pointer interval and the allocation bound
    // both appear in the message.
    assert!(d[0].message.contains("[512, 527]"), "{}", d[0]);
    assert!(d[0].message.contains("0..=255"), "{}", d[0]);
}

#[test]
fn unaligned_lane_skewed_gather_is_v303() {
    let (m, p) = overrun_case(G303_UNALIGNED);
    let d = diags(&m, &p, &Verifier::new());
    assert_eq!(codes_of(&d), [codes::INDEX_OUT_OF_BOUNDS], "{d:?}");
    assert_eq!(d[0].kernel.as_deref(), Some("lane_gather"));
    assert_eq!(d[0].line, Some(line_of(G303_UNALIGNED, "X[")), "{}", d[0]);
    assert!(d[0].message.contains("[300, 307]"), "{}", d[0]);
}

#[test]
fn indexed_check_carries_all_gather_findings() {
    // Disabling the Indexed family silences every gather case: the
    // findings come from that one check, not incidental cascades.
    let verifier = Verifier::new().without(Check::Indexed);
    for (m, p) in [
        gather_case(
            G301,
            MachineConfig::preset(ConfigName::Base),
            ConfigName::Isrf4,
        ),
        overrun_case(G303_OVERRUN),
        overrun_case(G303_UNALIGNED),
    ] {
        let d = diags(&m, &p, &verifier);
        assert!(d.is_empty(), "expected no findings, got {d:?}");
    }
}
