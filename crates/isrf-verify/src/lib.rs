//! Static hazard analyzer and cost model for ISRF stream programs.
//!
//! [`Verifier`] implements [`isrf_sim::ProgramVerifier`]: a dataflow
//! analysis over a [`StreamProgram`] and the kernel bodies it invokes that
//! proves, *before* a single cycle is simulated, that the program cannot
//! trip the simulator's runtime hazards. Seven check families:
//!
//! * **Liveness** ([`codes::UNFILLED_READ`], [`codes::UNALLOCATED_BINDING`])
//!   — every stream a kernel or store reads is filled by a memory load, a
//!   kernel output, or pre-existing SRF data on every path; no binding
//!   targets SRF words the allocator never handed out.
//! * **Allocation** ([`codes::BINDING_OVERFLOW`], [`codes::OVERLAP_HAZARD`],
//!   [`codes::CAPACITY_EXCEEDED`]) — bindings fit their ranges, ranges fit
//!   the bank, and no two *unordered* ops touch overlapping SRF words with
//!   at least one writer.
//! * **Indexed** ([`codes::INDEXED_ON_NON_INDEXED_CONFIG`],
//!   [`codes::CROSS_LANE_WITHOUT_NETWORK`], [`codes::INDEX_OUT_OF_BOUNDS`])
//!   — indexed streams only run on configurations with indexed-SRF
//!   hardware, cross-lane streams only where the inter-lane index network
//!   exists, and interval analysis over each kernel body flags index
//!   expressions *provably* outside their stream's record range.
//! * **Propagation** ([`codes::PROPAGATED_INDEX_OOB`],
//!   [`codes::PROPAGATED_WRITE_OOB`], [`codes::GATHER_ADDRESS_WRAP`]) —
//!   whole-program abstract interpretation flows value intervals from
//!   producer kernels through SRF streams into consumer kernels and
//!   memory ops, catching cross-kernel overruns invisible to per-kernel
//!   analysis (see the `prop` module docs for the abstract store).
//! * **Slack** ([`codes::INSUFFICIENT_SLACK`]) — every indexed data read is
//!   scheduled at least the configured address→data separation after its
//!   paired address issue.
//! * **Deadlock** ([`codes::FIFO_DEADLOCK`]) — an event-driven replay of
//!   the modulo schedule's address pushes and data pops proves the address
//!   FIFO + stream buffer can always drain; otherwise the exact blocked op
//!   and kernel cycle are reported.
//! * **Space** ([`codes::DEAD_STREAM`], [`codes::OVER_ALLOCATION`]) —
//!   SRF-space *warnings*: streams that are filled but never read, and
//!   ranges at least twice as large as the records they hold. Warnings
//!   never fail verification; they surface only through [`Verifier::report`].
//!
//! [`Verifier::report`] additionally computes a static [`CostModel`]: a
//! sound whole-program cycle lower bound with per-kernel port pressure and
//! address-FIFO occupancy bounds (see the [`cost`] module docs for the
//! formulas and their soundness arguments).
//!
//! Diagnostics carry `.isrf` source lines whenever the kernel was compiled
//! from source (the `isrf-lang` lowering records a line per op), so a
//! finding points at the offending statement, not just an IR index.
//! Propagation diagnostics also carry `notes` — the derived intervals and
//! the dataflow path (which producer filled which SRF words) that
//! triggered them.
//!
//! The analysis is sound but necessarily incomplete: stream fills are
//! tracked at range granularity, and index bounds are flagged only when
//! *definitely* out of range (a data-dependent index that merely *might*
//! overflow passes statically and is still caught by the simulator's
//! runtime assertions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod prop;

pub mod cost;

use isrf_core::config::MachineConfig;
use isrf_kernel::ir::{Kernel, Opcode, StreamKind};
use isrf_kernel::sched::Schedule;
use isrf_sim::program::{ProgOp, StreamProgram};
use isrf_sim::stream::StreamBinding;
use isrf_sim::verify::{Diagnostic, ProgramVerifier, VerifyEnv};

pub use cost::{cost_model, CostModel, KernelCost, StreamCost};

use interval::{eval_intervals, operand_interval, AbsVal};
use prop::{input_slots_feeding, propagate};

/// Stable diagnostic codes, grouped by check family.
pub mod codes {
    /// A stream is read but never filled (liveness).
    pub const UNFILLED_READ: &str = "V101";
    /// A binding targets SRF words beyond what the allocator handed out.
    pub const UNALLOCATED_BINDING: &str = "V102";
    /// A binding's records do not fit inside its SRF range.
    pub const BINDING_OVERFLOW: &str = "V103";
    /// Two unordered ops touch overlapping SRF words, at least one writing.
    pub const OVERLAP_HAZARD: &str = "V201";
    /// An SRF range extends beyond the bank capacity.
    pub const CAPACITY_EXCEEDED: &str = "V202";
    /// An indexed stream on a configuration without indexed-SRF hardware.
    pub const INDEXED_ON_NON_INDEXED_CONFIG: &str = "V301";
    /// A cross-lane indexed stream where the index network is disabled.
    pub const CROSS_LANE_WITHOUT_NETWORK: &str = "V302";
    /// An index expression provably outside the stream's record range.
    pub const INDEX_OUT_OF_BOUNDS: &str = "V303";
    /// A cross-kernel index overrun: the index is in bounds under
    /// per-kernel analysis (the stream input is unknown), but the interval
    /// propagated from the producing kernel proves it out of range.
    pub const PROPAGATED_INDEX_OOB: &str = "V310";
    /// A cross-kernel indexed *write* overrun, analogous to V310.
    pub const PROPAGATED_WRITE_OOB: &str = "V311";
    /// Every index a gather/scatter reads from the SRF provably wraps the
    /// 32-bit word address space when added to the op's base.
    pub const GATHER_ADDRESS_WRAP: &str = "V312";
    /// An indexed read scheduled closer to its address issue than the
    /// configured address→data separation.
    pub const INSUFFICIENT_SLACK: &str = "V401";
    /// The address FIFO / stream buffer can wedge: the schedule demands
    /// more outstanding records than the hardware can hold.
    pub const FIFO_DEADLOCK: &str = "V501";
    /// A stream is filled but never read by any later op (warning).
    pub const DEAD_STREAM: &str = "W601";
    /// An SRF range at least twice as large as its records need (warning).
    pub const OVER_ALLOCATION: &str = "W602";
}

/// The rule behind a diagnostic code, for `--explain`-style tooling.
/// Returns `None` for unknown codes.
pub fn explain(code: &str) -> Option<&'static str> {
    Some(match code {
        codes::UNFILLED_READ => {
            "Every SRF region a kernel or store reads must be filled first — by a memory \
             load, an earlier kernel's output, or pre-existing SRF data — on every path. \
             Fills are tracked at range granularity over the program's dependence order."
        }
        codes::UNALLOCATED_BINDING => {
            "A binding must stay inside the SRF words the allocator has handed out; reading \
             or writing unallocated words is undefined in hardware and panics the simulator."
        }
        codes::BINDING_OVERFLOW => {
            "A binding's records (records x record_words, laid out record-interleaved \
             across lanes) must fit inside its declared SRF range."
        }
        codes::OVERLAP_HAZARD => {
            "Two program ops with no ordering dependence between them must not touch \
             overlapping SRF words when at least one writes; the simulator may execute \
             them in either order. Memory ops snapshot their SRF sources at issue, so a \
             WAR pair whose read provably precedes the kernel's first write is exempt \
             (double-buffered strip mining relies on this)."
        }
        codes::CAPACITY_EXCEEDED => "An SRF range must fit inside the per-lane bank capacity.",
        codes::INDEXED_ON_NON_INDEXED_CONFIG => {
            "Indexed streams (in-lane or cross-lane) require indexed-SRF hardware; the \
             Base and Cache configurations have none."
        }
        codes::CROSS_LANE_WITHOUT_NETWORK => {
            "Cross-lane indexed streams require the inter-lane index network, which this \
             configuration disables."
        }
        codes::INDEX_OUT_OF_BOUNDS => {
            "Interval analysis over the kernel body (constants, lane/iteration IDs, \
             arithmetic, masking) proves every value this index expression can take is \
             outside the stream's valid records 0..=max. Per-kernel analysis treats stream \
             inputs as unknown, so only locally-provable overruns are flagged."
        }
        codes::PROPAGATED_INDEX_OOB => {
            "Whole-program propagation: value intervals flow from producer kernels through \
             SRF streams (store -> stream -> read) into this kernel's inputs, and with \
             those inputs the index is provably out of bounds — even though per-kernel \
             analysis (inputs unknown) cannot see it. The diagnostic notes list the \
             derived intervals and the producing ops on the dataflow path."
        }
        codes::PROPAGATED_WRITE_OOB => {
            "Same whole-program propagation as V310, for the index operand of an indexed \
             stream write."
        }
        codes::GATHER_ADDRESS_WRAP => {
            "The index stream this gather/scatter reads was produced by a kernel whose \
             propagated value interval proves every element, added to the op's base, \
             wraps the 32-bit word address space — a mis-built index stream, not a \
             plausible sparse access pattern."
        }
        codes::INSUFFICIENT_SLACK => {
            "An indexed data read must be scheduled at least the configured address->data \
             separation after its paired address issue, or the access cannot have \
             completed even without conflicts."
        }
        codes::FIFO_DEADLOCK => {
            "Event-driven replay of the modulo schedule's address pushes and data pops \
             against the address-FIFO and stream-buffer capacities; the schedule must \
             never demand more outstanding records than the hardware can hold, or the \
             all-or-nothing issue group wedges."
        }
        codes::DEAD_STREAM => {
            "Warning: a stream is filled (by a load or a kernel output) but no kernel, \
             store, gather, or scatter ever reads the words — wasted SRF space and \
             memory/compute bandwidth."
        }
        codes::OVER_ALLOCATION => {
            "Warning: an SRF range is at least twice as large as the records bound into \
             it need (and wastes at least 8 words per bank) — SRF capacity is the \
             paper's scarcest resource."
        }
        _ => return None,
    })
}

/// The seven independent check families. Disabling one (for triage, or in
/// the test suite to prove each check is load-bearing) drops exactly its
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// V101/V102: streams are filled before they are read and bindings
    /// stay inside allocated SRF space.
    Liveness,
    /// V103/V201/V202: bindings fit ranges, ranges fit the bank, unordered
    /// ops do not conflict.
    Allocation,
    /// V301/V302/V303: indexed streams match the hardware and index
    /// expressions stay in bounds.
    Indexed,
    /// V310/V311/V312: cross-kernel interval propagation over the SRF.
    Propagation,
    /// V401: address→data decoupling slack is respected.
    Slack,
    /// V501: address FIFOs cannot deadlock.
    Deadlock,
    /// W601/W602: SRF space warnings (report-only, never fail verify).
    Space,
}

impl Check {
    /// All checks, in reporting order.
    pub const ALL: [Check; 7] = [
        Check::Liveness,
        Check::Allocation,
        Check::Indexed,
        Check::Propagation,
        Check::Slack,
        Check::Deadlock,
        Check::Space,
    ];

    fn name(self) -> &'static str {
        match self {
            Check::Liveness => "liveness",
            Check::Allocation => "allocation",
            Check::Indexed => "indexed",
            Check::Propagation => "propagation",
            Check::Slack => "slack",
            Check::Deadlock => "deadlock",
            Check::Space => "space",
        }
    }

    fn bit(self) -> usize {
        match self {
            Check::Liveness => 0,
            Check::Allocation => 1,
            Check::Indexed => 2,
            Check::Propagation => 3,
            Check::Slack => 4,
            Check::Deadlock => 5,
            Check::Space => 6,
        }
    }
}

/// The analyzer: all checks enabled by default.
#[derive(Debug, Clone)]
pub struct Verifier {
    enabled: [bool; 7],
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

/// Everything the analyzer can say about a program: hard findings (the
/// same list [`Verifier::verify`] returns), space warnings, and the static
/// cost model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Hard findings — a non-empty list fails verification.
    pub diagnostics: Vec<Diagnostic>,
    /// W6xx space warnings — advisory only.
    pub warnings: Vec<Diagnostic>,
    /// Static cycle lower bound and per-kernel pressure breakdown.
    pub cost: CostModel,
}

impl Verifier {
    /// A verifier with every check enabled.
    pub fn new() -> Self {
        Verifier { enabled: [true; 7] }
    }

    /// Disable one check family (builder-style).
    pub fn without(mut self, check: Check) -> Self {
        self.enabled[check.bit()] = false;
        self
    }

    fn on(&self, check: Check) -> bool {
        self.enabled[check.bit()]
    }

    /// Full analysis: the diagnostics [`Verifier::verify`] would return,
    /// plus space warnings and the static cost model. Warnings never
    /// appear in `diagnostics` — a warned program still verifies clean.
    pub fn report(&self, cfg: &MachineConfig, env: &VerifyEnv, program: &StreamProgram) -> Report {
        let diagnostics = self.verify(cfg, env, program);
        let ctx = Analysis::new(cfg, env, program);
        let mut warnings = Vec::new();
        if self.on(Check::Space) {
            ctx.check_space(&mut warnings);
        }
        Report {
            diagnostics,
            warnings,
            cost: cost_model(cfg, program),
        }
    }
}

impl ProgramVerifier for Verifier {
    fn verify(
        &self,
        cfg: &MachineConfig,
        env: &VerifyEnv,
        program: &StreamProgram,
    ) -> Vec<Diagnostic> {
        let ctx = Analysis::new(cfg, env, program);
        let mut out = Vec::new();
        if self.on(Check::Liveness) {
            ctx.check_liveness(&mut out);
        }
        if self.on(Check::Allocation) {
            ctx.check_allocation(&mut out);
        }
        if self.on(Check::Indexed) {
            ctx.check_indexed(&mut out);
        }
        if self.on(Check::Propagation) {
            ctx.check_propagation(&mut out);
        }
        if self.on(Check::Slack) {
            ctx.check_slack(&mut out);
        }
        if self.on(Check::Deadlock) {
            ctx.check_deadlock(&mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Shared program model
// ---------------------------------------------------------------------------

/// One SRF access made by a program op: which binding, read or write, and a
/// human label for diagnostics.
struct Access {
    prog_op: usize,
    binding: StreamBinding,
    write: bool,
    indexed: bool,
    label: String,
}

struct Analysis<'a> {
    cfg: &'a MachineConfig,
    env: &'a VerifyEnv,
    program: &'a StreamProgram,
    accesses: Vec<Access>,
    /// `before[i]` is the bitset of ops that must complete before op `i`
    /// starts: explicit dependences, transitively closed, plus the implicit
    /// kernel→kernel program-order chain (the machine has one sequencer).
    before: Vec<Vec<u64>>,
}

fn bit_get(row: &[u64], j: usize) -> bool {
    row[j / 64] & (1 << (j % 64)) != 0
}

/// Per-bank `[lo, hi)` word interval an access through `b` can touch.
/// Indexed accesses may reach the whole range; sequential/conditional
/// accesses are bounded by the records the binding actually covers. `None`
/// for empty bindings.
pub(crate) fn binding_footprint(
    b: &StreamBinding,
    indexed: bool,
    lanes: u32,
) -> Option<(u32, u32)> {
    if indexed {
        return Some((b.range.base, b.range.base + b.range.words_per_bank));
    }
    if b.records == 0 || b.record_words == 0 {
        return None;
    }
    let min_rec = b.absolute_record(0);
    let max_rec = if b.stride_records == 0 {
        // Periodic window: every run re-reads records start..start+run.
        b.start_record + b.run_records.min(b.records) - 1
    } else {
        b.absolute_record(b.records - 1)
    };
    let lo = b.range.base + (min_rec / lanes) * b.record_words;
    let hi = b.range.base + (max_rec / lanes) * b.record_words + b.record_words;
    Some((lo, hi))
}

/// The full SRF range of a binding — the granularity at which fills are
/// tracked (matching `Machine`'s fill bookkeeping).
pub(crate) fn range_interval(b: &StreamBinding) -> (u32, u32) {
    (b.range.base, b.range.base + b.range.words_per_bank)
}

impl<'a> Analysis<'a> {
    fn new(cfg: &'a MachineConfig, env: &'a VerifyEnv, program: &'a StreamProgram) -> Self {
        let n = program.len();
        let wlen = n.div_ceil(64).max(1);
        let mut before: Vec<Vec<u64>> = Vec::with_capacity(n);
        let mut last_kernel: Option<usize> = None;
        for i in 0..n {
            let (op, deps) = program.node(i);
            let mut row = vec![0u64; wlen];
            let mut preds: Vec<usize> = deps.iter().map(|d| d.index()).collect();
            if let ProgOp::Kernel { .. } = op {
                if let Some(k) = last_kernel {
                    preds.push(k);
                }
                last_kernel = Some(i);
            }
            for j in preds {
                row[j / 64] |= 1 << (j % 64);
                for (w, b) in row.iter_mut().zip(&before[j]) {
                    *w |= b;
                }
            }
            before.push(row);
        }

        let mut accesses = Vec::new();
        for i in 0..n {
            let (op, _) = program.node(i);
            let mut push = |binding: StreamBinding, write: bool, indexed: bool, label: String| {
                accesses.push(Access {
                    prog_op: i,
                    binding,
                    write,
                    indexed,
                    label,
                });
            };
            match op {
                ProgOp::Load { dst, .. } => {
                    push(*dst, true, false, format!("load (op {i}) destination"));
                }
                ProgOp::Store { src, .. } => {
                    push(*src, false, false, format!("store (op {i}) source"));
                }
                ProgOp::GatherDyn {
                    index_stream, dst, ..
                } => {
                    push(
                        *index_stream,
                        false,
                        false,
                        format!("gather (op {i}) index stream"),
                    );
                    push(*dst, true, false, format!("gather (op {i}) destination"));
                }
                ProgOp::ScatterDyn {
                    src, index_stream, ..
                } => {
                    push(*src, false, false, format!("scatter (op {i}) source"));
                    push(
                        *index_stream,
                        false,
                        false,
                        format!("scatter (op {i}) index stream"),
                    );
                }
                ProgOp::Kernel {
                    kernel, bindings, ..
                } => {
                    for (decl, b) in kernel.streams.iter().zip(bindings) {
                        let write = matches!(
                            decl.kind,
                            StreamKind::SeqOut | StreamKind::CondOut | StreamKind::IdxInWrite
                        );
                        push(
                            *b,
                            write,
                            decl.kind.is_indexed(),
                            format!("kernel `{}` stream `{}`", kernel.name, decl.name),
                        );
                    }
                }
            }
        }

        Analysis {
            cfg,
            env,
            program,
            accesses,
            before,
        }
    }

    fn bank_words(&self) -> u32 {
        self.cfg.srf.bank_words(self.cfg.lanes) as u32
    }

    fn footprint(&self, a: &Access) -> Option<(u32, u32)> {
        binding_footprint(&a.binding, a.indexed, self.cfg.lanes as u32)
    }

    fn exceeds_bank(&self, b: &StreamBinding) -> bool {
        b.range.base + b.range.words_per_bank > self.bank_words()
    }

    /// Valid record indices for an index into `slot` of `kernel` bound to
    /// `b`: `0..=max`. `None` when the binding has no records.
    fn max_valid_record(
        &self,
        kernel: &Kernel,
        slot: isrf_kernel::ir::StreamSlot,
        b: &StreamBinding,
    ) -> Option<i64> {
        if b.record_words == 0 {
            return None;
        }
        let per_lane = (b.range.words_per_bank / b.record_words) as i64;
        Some(if kernel.stream(slot).kind.is_cross_lane() {
            self.cfg.lanes as i64 * per_lane - 1
        } else {
            per_lane - 1
        })
    }

    // -----------------------------------------------------------------------
    // Liveness: V101 / V102
    // -----------------------------------------------------------------------

    fn check_liveness(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Liveness.name();
        for a in &self.accesses {
            let (lo, hi) = range_interval(&a.binding);
            if self.exceeds_bank(&a.binding) {
                continue; // V202's domain (allocation check)
            }
            if hi > self.env.allocated_words_per_bank {
                out.push(Diagnostic {
                    code: codes::UNALLOCATED_BINDING.into(),
                    check: check.into(),
                    message: format!(
                        "{} is bound to SRF words [{lo}, {hi}) per bank, but only {} words \
                         have been allocated",
                        a.label, self.env.allocated_words_per_bank
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                    notes: Vec::new(),
                });
                continue; // an unallocated stream is trivially also unfilled
            }
            if a.write {
                continue;
            }
            // A read is satisfied by pre-existing data or by writes of ops
            // ordered strictly before this one (a kernel's own outputs do
            // NOT satisfy its own inputs — the hardware provides no such
            // forwarding within an invocation).
            let mut covered: Vec<(u32, u32)> = self.env.filled.clone();
            for w in &self.accesses {
                if w.write && bit_get(&self.before[a.prog_op], w.prog_op) {
                    covered.push(range_interval(&w.binding));
                }
            }
            if !interval_covers(&mut covered, lo, hi) {
                out.push(Diagnostic {
                    code: codes::UNFILLED_READ.into(),
                    check: check.into(),
                    message: format!(
                        "{} reads SRF words [{lo}, {hi}) per bank, but no memory load, \
                         prior kernel output, or pre-existing data fills them",
                        a.label
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                    notes: Vec::new(),
                });
            }
        }
    }

    // -----------------------------------------------------------------------
    // Allocation: V103 / V201 / V202
    // -----------------------------------------------------------------------

    fn check_allocation(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Allocation.name();
        for a in &self.accesses {
            let b = &a.binding;
            if self.exceeds_bank(b) {
                let (lo, hi) = range_interval(b);
                out.push(Diagnostic {
                    code: codes::CAPACITY_EXCEEDED.into(),
                    check: check.into(),
                    message: format!(
                        "{} is bound to SRF words [{lo}, {hi}) per bank, beyond the bank \
                         capacity of {} words",
                        a.label,
                        self.bank_words()
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                    notes: Vec::new(),
                });
                continue;
            }
            // Record extent must fit the range (indexed bindings use their
            // declared addressable record count).
            if b.records > 0 && b.record_words > 0 {
                let max_rec = if !a.indexed && b.stride_records == 0 {
                    b.start_record + b.run_records.min(b.records) - 1
                } else {
                    b.absolute_record(b.records - 1)
                };
                let lanes = self.cfg.lanes as u32;
                let need = (max_rec / lanes) * b.record_words + b.record_words;
                if need > b.range.words_per_bank {
                    out.push(Diagnostic {
                        code: codes::BINDING_OVERFLOW.into(),
                        check: check.into(),
                        message: format!(
                            "{} needs {need} words per bank for its {} records of {} \
                             word(s), but its range holds only {}",
                            a.label, b.records, b.record_words, b.range.words_per_bank
                        ),
                        prog_op: Some(a.prog_op),
                        kernel: None,
                        kernel_op: None,
                        line: None,
                        notes: Vec::new(),
                    });
                }
            }
        }

        // Unordered-pair conflicts. Ops are topologically ordered, so for
        // i < j it suffices that i is not in before[j].
        for j in 0..self.program.len() {
            for i in 0..j {
                if bit_get(&self.before[j], i) {
                    continue;
                }
                // Memory ops snapshot their SRF sources at issue, and ready
                // memory ops issue before the same cycle's kernel dispatch.
                // So a WAR pair — memory op `i` reading what a later kernel
                // `j` overwrites — is benign when everything `i` waits on
                // is also ordered before `j`: the snapshot then provably
                // precedes the kernel's first write. (Double-buffered strip
                // mining relies on exactly this.)
                let war_exempt = {
                    let (op_i, deps_i) = self.program.node(i);
                    let (op_j, _) = self.program.node(j);
                    !matches!(op_i, ProgOp::Kernel { .. })
                        && matches!(op_j, ProgOp::Kernel { .. })
                        && deps_i.iter().all(|d| bit_get(&self.before[j], d.index()))
                };
                let conflict = self
                    .accesses
                    .iter()
                    .filter(|a| a.prog_op == i)
                    .find_map(|a| {
                        self.accesses
                            .iter()
                            .filter(|b| b.prog_op == j)
                            .find(|b| {
                                // Conflict when `i` writes, or `j` writes
                                // and the snapshot exemption does not cover
                                // this read of `i`.
                                (a.write || (b.write && !war_exempt))
                                    && match (self.footprint(a), self.footprint(b)) {
                                        (Some((al, ah)), Some((bl, bh))) => al < bh && bl < ah,
                                        _ => false,
                                    }
                            })
                            .map(|b| (a, b))
                    });
                if let Some((a, b)) = conflict {
                    let (al, ah) = self.footprint(a).expect("checked");
                    let (bl, bh) = self.footprint(b).expect("checked");
                    let (lo, hi) = (al.max(bl), ah.min(bh));
                    out.push(Diagnostic {
                        code: codes::OVERLAP_HAZARD.into(),
                        check: check.into(),
                        message: format!(
                            "{} and {} touch overlapping SRF words [{lo}, {hi}) per bank \
                             with no ordering dependence between ops {i} and {j}",
                            a.label, b.label
                        ),
                        prog_op: Some(j),
                        kernel: None,
                        kernel_op: None,
                        line: None,
                        notes: Vec::new(),
                    });
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Indexed: V301 / V302 / V303
    // -----------------------------------------------------------------------

    fn check_indexed(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Indexed.name();
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let ProgOp::Kernel {
                kernel,
                bindings,
                iters,
                ..
            } = op
            else {
                continue;
            };
            let Some(idx_cfg) = &self.cfg.srf.indexed else {
                // No indexed hardware: one finding per indexed stream slot.
                for (slot, decl) in kernel.streams.iter().enumerate() {
                    if decl.kind.is_indexed() {
                        let kop = kernel
                            .ops
                            .iter()
                            .position(|o| o.opcode.stream().map(|s| s.0 as usize) == Some(slot));
                        out.push(kdiag(
                            codes::INDEXED_ON_NON_INDEXED_CONFIG,
                            check,
                            i,
                            kernel,
                            kop,
                            format!(
                                "kernel `{}` declares indexed stream `{}`, but configuration \
                                 `{:?}` has no indexed-SRF hardware",
                                kernel.name, decl.name, self.cfg.name
                            ),
                        ));
                    }
                }
                continue;
            };
            for (slot, decl) in kernel.streams.iter().enumerate() {
                if decl.kind.is_cross_lane() && !idx_cfg.crosslane {
                    let kop = kernel
                        .ops
                        .iter()
                        .position(|o| o.opcode.stream().map(|s| s.0 as usize) == Some(slot));
                    out.push(kdiag(
                        codes::CROSS_LANE_WITHOUT_NETWORK,
                        check,
                        i,
                        kernel,
                        kop,
                        format!(
                            "kernel `{}` declares cross-lane indexed stream `{}`, but the \
                             configuration's cross-lane index network is disabled",
                            kernel.name, decl.name
                        ),
                    ));
                }
            }

            // Interval analysis over the kernel body: flag indices that are
            // *provably* outside the addressable records of their binding.
            let vals = eval_intervals(kernel, *iters, self.cfg.lanes as i64, &[]);
            for (kop, op) in kernel.ops.iter().enumerate() {
                let (slot, iv) = match op.opcode {
                    Opcode::IdxAddr(s) => (s, vals[kop]),
                    Opcode::IdxWrite(s) => (s, operand_interval(&vals, op, 0)),
                    _ => continue,
                };
                let Some(iv) = iv else { continue };
                let Some(max_valid) =
                    self.max_valid_record(kernel, slot, &bindings[slot.0 as usize])
                else {
                    continue;
                };
                if iv.lo > max_valid || iv.hi < 0 {
                    out.push(kdiag(
                        codes::INDEX_OUT_OF_BOUNDS,
                        check,
                        i,
                        kernel,
                        Some(kop),
                        format!(
                            "index into stream `{}` is provably out of bounds: value in \
                             [{}, {}] but valid records are 0..={max_valid}",
                            kernel.stream(slot).name,
                            iv.lo,
                            iv.hi
                        ),
                    ));
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Propagation: V310 / V311 / V312
    // -----------------------------------------------------------------------

    /// Whole-program abstract interpretation (see `prop`): re-run the
    /// per-kernel interval analysis with stream inputs seeded from the
    /// producing ops, and flag overruns the `&[]`-seeded local pass (V303)
    /// cannot see. Gather/scatter index streams are checked for guaranteed
    /// 32-bit address wrap (the simulator's address arithmetic would
    /// overflow on every element).
    fn check_propagation(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Propagation.name();
        let prop = propagate(self.cfg, self.env, self.program);
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            match op {
                ProgOp::Kernel {
                    kernel,
                    bindings,
                    iters,
                    ..
                } => {
                    if self.cfg.srf.indexed.is_none() {
                        continue; // V301's domain
                    }
                    let slots_in = &prop.kernel_in[i];
                    let stream_in: Vec<AbsVal> = slots_in
                        .iter()
                        .map(|s| s.as_ref().and_then(|f| f.val))
                        .collect();
                    if stream_in.iter().all(|v| v.is_none()) {
                        continue; // nothing propagated: identical to V303
                    }
                    let local = eval_intervals(kernel, *iters, self.cfg.lanes as i64, &[]);
                    let vals = eval_intervals(kernel, *iters, self.cfg.lanes as i64, &stream_in);
                    for (kop, op) in kernel.ops.iter().enumerate() {
                        let (slot, piv, liv, code) = match op.opcode {
                            Opcode::IdxAddr(s) => {
                                (s, vals[kop], local[kop], codes::PROPAGATED_INDEX_OOB)
                            }
                            Opcode::IdxWrite(s) => (
                                s,
                                operand_interval(&vals, op, 0),
                                operand_interval(&local, op, 0),
                                codes::PROPAGATED_WRITE_OOB,
                            ),
                            _ => continue,
                        };
                        let Some(max_valid) =
                            self.max_valid_record(kernel, slot, &bindings[slot.0 as usize])
                        else {
                            continue;
                        };
                        let viol = |v: AbsVal| v.is_some_and(|iv| iv.lo > max_valid || iv.hi < 0);
                        // Locally-provable overruns are V303's finding; here
                        // only the cross-kernel ones.
                        if !viol(piv) || viol(liv) {
                            continue;
                        }
                        let piv = piv.expect("violation implies Some");
                        let mut notes = vec![format!(
                            "propagated index interval [{}, {}]; valid records 0..={max_valid}",
                            piv.lo, piv.hi
                        )];
                        for s in input_slots_feeding(kernel, op.operands[0].value.index()) {
                            let Some(f) = slots_in.get(s).and_then(|f| f.as_ref()) else {
                                continue;
                            };
                            let Some(fv) = f.val else { continue };
                            notes.push(format!(
                                "input `{}` holds values in [{}, {}] from SRF words \
                                 [{}, {}) per bank, filled by {}",
                                kernel.streams[s].name,
                                fv.lo,
                                fv.hi,
                                f.region.0,
                                f.region.1,
                                if f.sources.is_empty() {
                                    "pre-existing data".to_string()
                                } else {
                                    f.sources.join("; ")
                                }
                            ));
                        }
                        let mut d = kdiag(
                            code,
                            check,
                            i,
                            kernel,
                            Some(kop),
                            format!(
                                "index into stream `{}` is out of bounds across kernels: \
                                 propagated value in [{}, {}] but valid records are \
                                 0..={max_valid} (per-kernel analysis cannot see this)",
                                kernel.stream(slot).name,
                                piv.lo,
                                piv.hi
                            ),
                        );
                        d.notes = notes;
                        out.push(d);
                    }
                }
                ProgOp::GatherDyn { base, .. } | ProgOp::ScatterDyn { base, .. } => {
                    let Some(f) = &prop.mem_index[i] else {
                        continue;
                    };
                    let Some(iv) = f.val else { continue };
                    let base_i = *base as i64;
                    // `base + index` is computed in u32: with every index
                    // negative the two's-complement bit pattern adds 2^32,
                    // so the sum wraps exactly when base >= -index; with
                    // every index non-negative it wraps when base + lo
                    // already exceeds u32::MAX.
                    let wraps_all = if iv.hi < 0 {
                        base_i >= -iv.lo
                    } else if iv.lo >= 0 {
                        base_i + iv.lo > u32::MAX as i64
                    } else {
                        false
                    };
                    if !wraps_all {
                        continue;
                    }
                    let kind = if matches!(op, ProgOp::GatherDyn { .. }) {
                        "gather"
                    } else {
                        "scatter"
                    };
                    out.push(Diagnostic {
                        code: codes::GATHER_ADDRESS_WRAP.into(),
                        check: check.into(),
                        message: format!(
                            "{kind} (op {i}): every index in the index stream provably \
                             wraps the 32-bit word address space when added to base {base}"
                        ),
                        prog_op: Some(i),
                        kernel: None,
                        kernel_op: None,
                        line: None,
                        notes: vec![format!(
                            "index stream holds values in [{}, {}] from SRF words \
                             [{}, {}) per bank, filled by {}",
                            iv.lo,
                            iv.hi,
                            f.region.0,
                            f.region.1,
                            if f.sources.is_empty() {
                                "pre-existing data".to_string()
                            } else {
                                f.sources.join("; ")
                            }
                        )],
                    });
                }
                _ => {}
            }
        }
    }

    // -----------------------------------------------------------------------
    // Slack: V401
    // -----------------------------------------------------------------------

    fn check_slack(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Slack.name();
        if !self.cfg.has_indexed_srf() {
            return; // V301 already rejects indexed kernels here
        }
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let ProgOp::Kernel {
                kernel, schedule, ..
            } = op
            else {
                continue;
            };
            for (kop, op) in kernel.ops.iter().enumerate() {
                let Opcode::IdxRead(slot) = op.opcode else {
                    continue;
                };
                let addr = op.operands[0].value.index();
                let sep = if kernel.stream(slot).kind.is_cross_lane() {
                    self.cfg.sched.crosslane_addr_data_separation
                } else {
                    self.cfg.sched.inlane_addr_data_separation
                };
                let (sa, sr) = (schedule.slots[addr], schedule.slots[kop]);
                if sr < sa + sep {
                    out.push(kdiag(
                        codes::INSUFFICIENT_SLACK,
                        check,
                        i,
                        kernel,
                        Some(kop),
                        format!(
                            "indexed read of stream `{}` is scheduled at cycle {sr}, only \
                             {} cycle(s) after its address issue at cycle {sa}; the \
                             configuration requires {sep}",
                            kernel.stream(slot).name,
                            sr - sa
                        ),
                    ));
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Deadlock: V501
    // -----------------------------------------------------------------------

    /// Replays the modulo schedule's address pushes and data pops for each
    /// indexed *read* stream and proves the all-or-nothing issue group can
    /// always make progress. The hardware wedges when, at some kernel cycle,
    /// the group's pops outrun the words the FIFO + buffer can ever deliver,
    /// or its pushes cannot fit even after the buffer drains as far as the
    /// already-popped words allow. Writes drain unconditionally (no buffer
    /// reservation), so write-only streams cannot wedge.
    fn check_deadlock(&self, out: &mut Vec<Diagnostic>) {
        let Some(idx_cfg) = &self.cfg.srf.indexed else {
            return;
        };
        let fifo_cap = idx_cfg.addr_fifo_entries as u64;
        let buf_cap = self.cfg.srf.stream_buffer_words as u64;
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let ProgOp::Kernel {
                kernel,
                schedule,
                bindings,
                iters,
            } = op
            else {
                continue;
            };
            for (slot, decl) in kernel.streams.iter().enumerate() {
                if !decl.kind.is_indexed() || decl.kind == StreamKind::IdxInWrite {
                    continue;
                }
                let rw = bindings[slot].record_words.max(1) as u64;
                let slot = isrf_kernel::ir::StreamSlot(slot as u8);
                if let Some(d) =
                    deadlock_for_stream(kernel, schedule, slot, rw, *iters, (fifo_cap, buf_cap), i)
                {
                    out.push(d);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Space: W601 / W602 (warnings, report-only)
    // -----------------------------------------------------------------------

    fn check_space(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Space.name();
        // W601: a filled region no op ever reads. Any overlapping read —
        // ordered or not, kernel input, store source, or gather/scatter
        // index stream — counts as consumption.
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let mut dead = |region: Option<(u32, u32)>, label: String, d: Option<Diagnostic>| {
                let Some((lo, hi)) = region else { return };
                let read_back = self.accesses.iter().any(|r| {
                    !r.write && matches!(self.footprint(r), Some((rl, rh)) if rl < hi && lo < rh)
                });
                if read_back {
                    return;
                }
                out.push(d.unwrap_or(Diagnostic {
                    code: codes::DEAD_STREAM.into(),
                    check: check.into(),
                    message: format!(
                        "{label} fills SRF words [{lo}, {hi}) per bank, but no kernel, \
                         store, gather, or scatter ever reads them"
                    ),
                    prog_op: Some(i),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                    notes: Vec::new(),
                }));
            };
            match op {
                ProgOp::Load { dst, .. } => {
                    dead(Some(range_interval(dst)), format!("load (op {i})"), None);
                }
                ProgOp::GatherDyn { dst, .. } => {
                    dead(Some(range_interval(dst)), format!("gather (op {i})"), None);
                }
                ProgOp::Kernel {
                    kernel, bindings, ..
                } => {
                    for (si, decl) in kernel.streams.iter().enumerate() {
                        let write = matches!(
                            decl.kind,
                            StreamKind::SeqOut | StreamKind::CondOut | StreamKind::IdxInWrite
                        );
                        if !write {
                            continue;
                        }
                        let b = &bindings[si];
                        let slot = isrf_kernel::ir::StreamSlot(si as u8);
                        let kop = kernel
                            .ops
                            .iter()
                            .position(|o| o.opcode.stream() == Some(slot));
                        let region =
                            binding_footprint(b, decl.kind.is_indexed(), self.cfg.lanes as u32);
                        let (lo, hi) = region.unwrap_or((0, 0));
                        dead(
                            region,
                            String::new(),
                            Some({
                                let mut d = kdiag(
                                    codes::DEAD_STREAM,
                                    check,
                                    i,
                                    kernel,
                                    kop,
                                    format!(
                                        "kernel `{}` output `{}` fills SRF words [{lo}, {hi}) \
                                         per bank, but no kernel, store, gather, or scatter \
                                         ever reads them",
                                        kernel.name, decl.name
                                    ),
                                );
                                d.check = check.into();
                                d
                            }),
                        );
                    }
                }
                _ => {}
            }
        }

        // W602: a range at least twice what its records need, wasting at
        // least 8 words per bank. Indexed bindings address their whole
        // range by definition and are exempt. Deduplicate by range: many
        // ops bind the same buffer.
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for a in &self.accesses {
            let b = &a.binding;
            if a.indexed || b.records == 0 || b.record_words == 0 {
                continue;
            }
            let key = (b.range.base, b.range.words_per_bank);
            if seen.contains(&key) {
                continue;
            }
            let max_rec = if b.stride_records == 0 {
                b.start_record + b.run_records.min(b.records) - 1
            } else {
                b.absolute_record(b.records - 1)
            };
            let lanes = self.cfg.lanes as u32;
            let need = (max_rec / lanes) * b.record_words + b.record_words;
            if b.range.words_per_bank >= 2 * need && b.range.words_per_bank - need >= 8 {
                seen.push(key);
                out.push(Diagnostic {
                    code: codes::OVER_ALLOCATION.into(),
                    check: check.into(),
                    message: format!(
                        "{} uses {need} of the {} words per bank its range holds \
                         ({} wasted) — consider a tighter allocation",
                        a.label,
                        b.range.words_per_bank,
                        b.range.words_per_bank - need
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                    notes: Vec::new(),
                });
            }
        }
    }
}

/// Build a kernel-scoped diagnostic, resolving the source line when known.
fn kdiag(
    code: &str,
    check: &str,
    prog_op: usize,
    kernel: &Kernel,
    kernel_op: Option<usize>,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code: code.into(),
        check: check.into(),
        message,
        prog_op: Some(prog_op),
        kernel: Some(kernel.name.clone()),
        kernel_op,
        line: kernel_op.and_then(|i| kernel.source_line(i)),
        notes: Vec::new(),
    }
}

/// Does the union of `intervals` cover `[lo, hi)`? Sorts in place.
fn interval_covers(intervals: &mut [(u32, u32)], lo: u32, hi: u32) -> bool {
    if lo >= hi {
        return true;
    }
    intervals.sort_unstable();
    let mut need = lo;
    for &(s, e) in intervals.iter() {
        if s > need {
            return false;
        }
        if e > need {
            need = e;
            if need >= hi {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// V501: address-FIFO deadlock detection
// ---------------------------------------------------------------------------

fn deadlock_for_stream(
    kernel: &Kernel,
    schedule: &Schedule,
    slot: isrf_kernel::ir::StreamSlot,
    rw: u64,
    iters: u64,
    (fifo_cap, buf_cap): (u64, u64),
    prog_op: usize,
) -> Option<Diagnostic> {
    let check = Check::Deadlock.name();
    let addr_ops = kernel.stream_addr_ops(slot);
    let data_ops = kernel.stream_data_ops(slot);
    if addr_ops.is_empty() || data_ops.is_empty() {
        return None;
    }

    // Simulate enough iterations for the FIFO/buffer interplay to reach
    // steady state: every op repeats at its slot + j*II, so occupancy is
    // eventually periodic with period II; a window comfortably larger than
    // the capacities plus the pipeline depth suffices.
    let window = fifo_cap + buf_cap + 2 * schedule.stages() as u64 + 8;
    let sim_iters = iters.min(window);
    let mut events: Vec<(u64, usize, bool)> = Vec::new();
    for j in 0..sim_iters {
        for &a in &addr_ops {
            events.push((schedule.slots[a] as u64 + j * schedule.ii as u64, a, true));
        }
        for &r in &data_ops {
            events.push((schedule.slots[r] as u64 + j * schedule.ii as u64, r, false));
        }
    }
    events.sort_unstable();

    // `pushed` counts records queued, `popped` counts words consumed, both
    // *before* the current cycle (the issue group is all-or-nothing with
    // pre-cycle state: same-cycle pushes cannot feed same-cycle pops).
    let mut pushed: u64 = 0;
    let mut popped: u64 = 0;
    let mut k = 0;
    while k < events.len() {
        let t = events[k].0;
        let mut pushes_at = 0u64;
        let mut pops_at = 0u64;
        let mut first_push = None;
        let mut first_pop = None;
        while k < events.len() && events[k].0 == t {
            let (_, op, is_push) = events[k];
            if is_push {
                pushes_at += 1;
                first_push.get_or_insert(op);
            } else {
                pops_at += 1;
                first_pop.get_or_insert(op);
            }
            k += 1;
        }
        // Words the hardware can ever deliver while the cluster is stalled
        // at cycle `t`: everything pushed so far, bounded by the buffer
        // (popped words free buffer space; stalled pops do not).
        let deliverable = (pushed * rw).min(popped + buf_cap);
        if popped + pops_at > deliverable {
            let op = first_pop.expect("pops_at > 0");
            return Some(kdiag(
                codes::FIFO_DEADLOCK,
                check,
                prog_op,
                kernel,
                Some(op),
                format!(
                    "indexed stream `{}` deadlocks at kernel cycle {t}: the schedule pops \
                     word {} but at most {deliverable} can ever arrive ({pushed} record(s) \
                     pushed, stream buffer holds {buf_cap} words)",
                    kernel.stream(slot).name,
                    popped + pops_at,
                ),
            ));
        }
        // Records the FIFO can shed while stalled: limited by the words the
        // buffer can absorb beyond what was already popped.
        let drainable = pushed.min((popped + buf_cap) / rw);
        if pushed - drainable + pushes_at > fifo_cap {
            let op = first_push.expect("pushes_at > 0");
            return Some(kdiag(
                codes::FIFO_DEADLOCK,
                check,
                prog_op,
                kernel,
                Some(op),
                format!(
                    "indexed stream `{}` deadlocks at kernel cycle {t}: {} record(s) would \
                     be outstanding but the address FIFO holds {fifo_cap} and the stream \
                     buffer {buf_cap} words ({} word(s) per record)",
                    kernel.stream(slot).name,
                    pushed - drainable + pushes_at,
                    rw
                ),
            ));
        }
        pushed += pushes_at;
        popped += pops_at;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_covers_checks_gaps() {
        let mut iv1 = vec![(0u32, 10u32), (20, 30)];
        assert!(interval_covers(&mut iv1.clone(), 0, 10));
        assert!(interval_covers(&mut iv1.clone(), 25, 30));
        assert!(!interval_covers(&mut iv1, 5, 25));
        let mut iv2 = vec![(10, 20), (0, 12)];
        assert!(interval_covers(&mut iv2, 0, 20), "unsorted overlapping");
    }

    #[test]
    fn explain_covers_every_code() {
        for code in [
            "V101", "V102", "V103", "V201", "V202", "V301", "V302", "V303", "V310", "V311", "V312",
            "V401", "V501", "W601", "W602",
        ] {
            assert!(explain(code).is_some(), "no rule text for {code}");
        }
        assert!(explain("V999").is_none());
    }
}
