//! Static hazard analyzer for ISRF stream programs.
//!
//! [`Verifier`] implements [`isrf_sim::ProgramVerifier`]: a dataflow
//! analysis over a [`StreamProgram`] and the kernel bodies it invokes that
//! proves, *before* a single cycle is simulated, that the program cannot
//! trip the simulator's runtime hazards. Five check families:
//!
//! * **Liveness** ([`codes::UNFILLED_READ`], [`codes::UNALLOCATED_BINDING`])
//!   — every stream a kernel or store reads is filled by a memory load, a
//!   kernel output, or pre-existing SRF data on every path; no binding
//!   targets SRF words the allocator never handed out.
//! * **Allocation** ([`codes::BINDING_OVERFLOW`], [`codes::OVERLAP_HAZARD`],
//!   [`codes::CAPACITY_EXCEEDED`]) — bindings fit their ranges, ranges fit
//!   the bank, and no two *unordered* ops touch overlapping SRF words with
//!   at least one writer.
//! * **Indexed** ([`codes::INDEXED_ON_NON_INDEXED_CONFIG`],
//!   [`codes::CROSS_LANE_WITHOUT_NETWORK`], [`codes::INDEX_OUT_OF_BOUNDS`])
//!   — indexed streams only run on configurations with indexed-SRF
//!   hardware, cross-lane streams only where the inter-lane index network
//!   exists, and interval analysis over each kernel body flags index
//!   expressions *provably* outside their stream's record range.
//! * **Slack** ([`codes::INSUFFICIENT_SLACK`]) — every indexed data read is
//!   scheduled at least the configured address→data separation after its
//!   paired address issue.
//! * **Deadlock** ([`codes::FIFO_DEADLOCK`]) — an event-driven replay of
//!   the modulo schedule's address pushes and data pops proves the address
//!   FIFO + stream buffer can always drain; otherwise the exact blocked op
//!   and kernel cycle are reported.
//!
//! Diagnostics carry `.isrf` source lines whenever the kernel was compiled
//! from source (the `isrf-lang` lowering records a line per op), so a
//! finding points at the offending statement, not just an IR index.
//!
//! The analysis is sound but necessarily incomplete: stream fills are
//! tracked at range granularity, and index bounds are flagged only when
//! *definitely* out of range (a data-dependent index that merely *might*
//! overflow passes statically and is still caught by the simulator's
//! runtime assertions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use isrf_core::config::MachineConfig;
use isrf_kernel::ir::{Kernel, Op, Opcode, StreamKind};
use isrf_kernel::sched::Schedule;
use isrf_sim::program::{ProgOp, StreamProgram};
use isrf_sim::stream::StreamBinding;
use isrf_sim::verify::{Diagnostic, ProgramVerifier, VerifyEnv};

/// Stable diagnostic codes, grouped by check family.
pub mod codes {
    /// A stream is read but never filled (liveness).
    pub const UNFILLED_READ: &str = "V101";
    /// A binding targets SRF words beyond what the allocator handed out.
    pub const UNALLOCATED_BINDING: &str = "V102";
    /// A binding's records do not fit inside its SRF range.
    pub const BINDING_OVERFLOW: &str = "V103";
    /// Two unordered ops touch overlapping SRF words, at least one writing.
    pub const OVERLAP_HAZARD: &str = "V201";
    /// An SRF range extends beyond the bank capacity.
    pub const CAPACITY_EXCEEDED: &str = "V202";
    /// An indexed stream on a configuration without indexed-SRF hardware.
    pub const INDEXED_ON_NON_INDEXED_CONFIG: &str = "V301";
    /// A cross-lane indexed stream where the index network is disabled.
    pub const CROSS_LANE_WITHOUT_NETWORK: &str = "V302";
    /// An index expression provably outside the stream's record range.
    pub const INDEX_OUT_OF_BOUNDS: &str = "V303";
    /// An indexed read scheduled closer to its address issue than the
    /// configured address→data separation.
    pub const INSUFFICIENT_SLACK: &str = "V401";
    /// The address FIFO / stream buffer can wedge: the schedule demands
    /// more outstanding records than the hardware can hold.
    pub const FIFO_DEADLOCK: &str = "V501";
}

/// The five independent check families. Disabling one (for triage, or in
/// the test suite to prove each check is load-bearing) drops exactly its
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// V101/V102: streams are filled before they are read and bindings
    /// stay inside allocated SRF space.
    Liveness,
    /// V103/V201/V202: bindings fit ranges, ranges fit the bank, unordered
    /// ops do not conflict.
    Allocation,
    /// V301/V302/V303: indexed streams match the hardware and index
    /// expressions stay in bounds.
    Indexed,
    /// V401: address→data decoupling slack is respected.
    Slack,
    /// V501: address FIFOs cannot deadlock.
    Deadlock,
}

impl Check {
    /// All checks, in reporting order.
    pub const ALL: [Check; 5] = [
        Check::Liveness,
        Check::Allocation,
        Check::Indexed,
        Check::Slack,
        Check::Deadlock,
    ];

    fn name(self) -> &'static str {
        match self {
            Check::Liveness => "liveness",
            Check::Allocation => "allocation",
            Check::Indexed => "indexed",
            Check::Slack => "slack",
            Check::Deadlock => "deadlock",
        }
    }

    fn bit(self) -> usize {
        match self {
            Check::Liveness => 0,
            Check::Allocation => 1,
            Check::Indexed => 2,
            Check::Slack => 3,
            Check::Deadlock => 4,
        }
    }
}

/// The analyzer: all checks enabled by default.
#[derive(Debug, Clone)]
pub struct Verifier {
    enabled: [bool; 5],
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// A verifier with every check enabled.
    pub fn new() -> Self {
        Verifier { enabled: [true; 5] }
    }

    /// Disable one check family (builder-style).
    pub fn without(mut self, check: Check) -> Self {
        self.enabled[check.bit()] = false;
        self
    }

    fn on(&self, check: Check) -> bool {
        self.enabled[check.bit()]
    }
}

impl ProgramVerifier for Verifier {
    fn verify(
        &self,
        cfg: &MachineConfig,
        env: &VerifyEnv,
        program: &StreamProgram,
    ) -> Vec<Diagnostic> {
        let ctx = Analysis::new(cfg, env, program);
        let mut out = Vec::new();
        if self.on(Check::Liveness) {
            ctx.check_liveness(&mut out);
        }
        if self.on(Check::Allocation) {
            ctx.check_allocation(&mut out);
        }
        if self.on(Check::Indexed) {
            ctx.check_indexed(&mut out);
        }
        if self.on(Check::Slack) {
            ctx.check_slack(&mut out);
        }
        if self.on(Check::Deadlock) {
            ctx.check_deadlock(&mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Shared program model
// ---------------------------------------------------------------------------

/// One SRF access made by a program op: which binding, read or write, and a
/// human label for diagnostics.
struct Access {
    prog_op: usize,
    binding: StreamBinding,
    write: bool,
    indexed: bool,
    label: String,
}

struct Analysis<'a> {
    cfg: &'a MachineConfig,
    env: &'a VerifyEnv,
    program: &'a StreamProgram,
    accesses: Vec<Access>,
    /// `before[i]` is the bitset of ops that must complete before op `i`
    /// starts: explicit dependences, transitively closed, plus the implicit
    /// kernel→kernel program-order chain (the machine has one sequencer).
    before: Vec<Vec<u64>>,
}

fn bit_get(row: &[u64], j: usize) -> bool {
    row[j / 64] & (1 << (j % 64)) != 0
}

impl<'a> Analysis<'a> {
    fn new(cfg: &'a MachineConfig, env: &'a VerifyEnv, program: &'a StreamProgram) -> Self {
        let n = program.len();
        let wlen = n.div_ceil(64).max(1);
        let mut before: Vec<Vec<u64>> = Vec::with_capacity(n);
        let mut last_kernel: Option<usize> = None;
        for i in 0..n {
            let (op, deps) = program.node(i);
            let mut row = vec![0u64; wlen];
            let mut preds: Vec<usize> = deps.iter().map(|d| d.index()).collect();
            if let ProgOp::Kernel { .. } = op {
                if let Some(k) = last_kernel {
                    preds.push(k);
                }
                last_kernel = Some(i);
            }
            for j in preds {
                row[j / 64] |= 1 << (j % 64);
                for (w, b) in row.iter_mut().zip(&before[j]) {
                    *w |= b;
                }
            }
            before.push(row);
        }

        let mut accesses = Vec::new();
        for i in 0..n {
            let (op, _) = program.node(i);
            let mut push = |binding: StreamBinding, write: bool, indexed: bool, label: String| {
                accesses.push(Access {
                    prog_op: i,
                    binding,
                    write,
                    indexed,
                    label,
                });
            };
            match op {
                ProgOp::Load { dst, .. } => {
                    push(*dst, true, false, format!("load (op {i}) destination"));
                }
                ProgOp::Store { src, .. } => {
                    push(*src, false, false, format!("store (op {i}) source"));
                }
                ProgOp::GatherDyn {
                    index_stream, dst, ..
                } => {
                    push(
                        *index_stream,
                        false,
                        false,
                        format!("gather (op {i}) index stream"),
                    );
                    push(*dst, true, false, format!("gather (op {i}) destination"));
                }
                ProgOp::ScatterDyn {
                    src, index_stream, ..
                } => {
                    push(*src, false, false, format!("scatter (op {i}) source"));
                    push(
                        *index_stream,
                        false,
                        false,
                        format!("scatter (op {i}) index stream"),
                    );
                }
                ProgOp::Kernel {
                    kernel, bindings, ..
                } => {
                    for (decl, b) in kernel.streams.iter().zip(bindings) {
                        let write = matches!(
                            decl.kind,
                            StreamKind::SeqOut | StreamKind::CondOut | StreamKind::IdxInWrite
                        );
                        push(
                            *b,
                            write,
                            decl.kind.is_indexed(),
                            format!("kernel `{}` stream `{}`", kernel.name, decl.name),
                        );
                    }
                }
            }
        }

        Analysis {
            cfg,
            env,
            program,
            accesses,
            before,
        }
    }

    fn bank_words(&self) -> u32 {
        self.cfg.srf.bank_words(self.cfg.lanes) as u32
    }

    /// Per-bank `[lo, hi)` word interval an access can touch. Indexed
    /// accesses may reach the whole range; sequential/conditional accesses
    /// are bounded by the records the binding actually covers. `None` for
    /// empty bindings.
    fn footprint(&self, a: &Access) -> Option<(u32, u32)> {
        let b = &a.binding;
        if a.indexed {
            return Some((b.range.base, b.range.base + b.range.words_per_bank));
        }
        if b.records == 0 || b.record_words == 0 {
            return None;
        }
        let min_rec = b.absolute_record(0);
        let max_rec = if b.stride_records == 0 {
            // Periodic window: every run re-reads records start..start+run.
            b.start_record + b.run_records.min(b.records) - 1
        } else {
            b.absolute_record(b.records - 1)
        };
        let lanes = self.cfg.lanes as u32;
        let lo = b.range.base + (min_rec / lanes) * b.record_words;
        let hi = b.range.base + (max_rec / lanes) * b.record_words + b.record_words;
        Some((lo, hi))
    }

    /// The full SRF range of a binding — the granularity at which fills
    /// are tracked (matching `Machine`'s fill bookkeeping).
    fn range_interval(b: &StreamBinding) -> (u32, u32) {
        (b.range.base, b.range.base + b.range.words_per_bank)
    }

    fn exceeds_bank(&self, b: &StreamBinding) -> bool {
        b.range.base + b.range.words_per_bank > self.bank_words()
    }

    // -----------------------------------------------------------------------
    // Liveness: V101 / V102
    // -----------------------------------------------------------------------

    fn check_liveness(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Liveness.name();
        for a in &self.accesses {
            let (lo, hi) = Self::range_interval(&a.binding);
            if self.exceeds_bank(&a.binding) {
                continue; // V202's domain (allocation check)
            }
            if hi > self.env.allocated_words_per_bank {
                out.push(Diagnostic {
                    code: codes::UNALLOCATED_BINDING.into(),
                    check: check.into(),
                    message: format!(
                        "{} is bound to SRF words [{lo}, {hi}) per bank, but only {} words \
                         have been allocated",
                        a.label, self.env.allocated_words_per_bank
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                });
                continue; // an unallocated stream is trivially also unfilled
            }
            if a.write {
                continue;
            }
            // A read is satisfied by pre-existing data or by writes of ops
            // ordered strictly before this one (a kernel's own outputs do
            // NOT satisfy its own inputs — the hardware provides no such
            // forwarding within an invocation).
            let mut covered: Vec<(u32, u32)> = self.env.filled.clone();
            for w in &self.accesses {
                if w.write && bit_get(&self.before[a.prog_op], w.prog_op) {
                    covered.push(Self::range_interval(&w.binding));
                }
            }
            if !interval_covers(&mut covered, lo, hi) {
                out.push(Diagnostic {
                    code: codes::UNFILLED_READ.into(),
                    check: check.into(),
                    message: format!(
                        "{} reads SRF words [{lo}, {hi}) per bank, but no memory load, \
                         prior kernel output, or pre-existing data fills them",
                        a.label
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                });
            }
        }
    }

    // -----------------------------------------------------------------------
    // Allocation: V103 / V201 / V202
    // -----------------------------------------------------------------------

    fn check_allocation(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Allocation.name();
        for a in &self.accesses {
            let b = &a.binding;
            if self.exceeds_bank(b) {
                let (lo, hi) = Self::range_interval(b);
                out.push(Diagnostic {
                    code: codes::CAPACITY_EXCEEDED.into(),
                    check: check.into(),
                    message: format!(
                        "{} is bound to SRF words [{lo}, {hi}) per bank, beyond the bank \
                         capacity of {} words",
                        a.label,
                        self.bank_words()
                    ),
                    prog_op: Some(a.prog_op),
                    kernel: None,
                    kernel_op: None,
                    line: None,
                });
                continue;
            }
            // Record extent must fit the range (indexed bindings use their
            // declared addressable record count).
            if b.records > 0 && b.record_words > 0 {
                let max_rec = if !a.indexed && b.stride_records == 0 {
                    b.start_record + b.run_records.min(b.records) - 1
                } else {
                    b.absolute_record(b.records - 1)
                };
                let lanes = self.cfg.lanes as u32;
                let need = (max_rec / lanes) * b.record_words + b.record_words;
                if need > b.range.words_per_bank {
                    out.push(Diagnostic {
                        code: codes::BINDING_OVERFLOW.into(),
                        check: check.into(),
                        message: format!(
                            "{} needs {need} words per bank for its {} records of {} \
                             word(s), but its range holds only {}",
                            a.label, b.records, b.record_words, b.range.words_per_bank
                        ),
                        prog_op: Some(a.prog_op),
                        kernel: None,
                        kernel_op: None,
                        line: None,
                    });
                }
            }
        }

        // Unordered-pair conflicts. Ops are topologically ordered, so for
        // i < j it suffices that i is not in before[j].
        for j in 0..self.program.len() {
            for i in 0..j {
                if bit_get(&self.before[j], i) {
                    continue;
                }
                // Memory ops snapshot their SRF sources at issue, and ready
                // memory ops issue before the same cycle's kernel dispatch.
                // So a WAR pair — memory op `i` reading what a later kernel
                // `j` overwrites — is benign when everything `i` waits on
                // is also ordered before `j`: the snapshot then provably
                // precedes the kernel's first write. (Double-buffered strip
                // mining relies on exactly this.)
                let war_exempt = {
                    let (op_i, deps_i) = self.program.node(i);
                    let (op_j, _) = self.program.node(j);
                    !matches!(op_i, ProgOp::Kernel { .. })
                        && matches!(op_j, ProgOp::Kernel { .. })
                        && deps_i.iter().all(|d| bit_get(&self.before[j], d.index()))
                };
                let conflict = self
                    .accesses
                    .iter()
                    .filter(|a| a.prog_op == i)
                    .find_map(|a| {
                        self.accesses
                            .iter()
                            .filter(|b| b.prog_op == j)
                            .find(|b| {
                                // Conflict when `i` writes, or `j` writes
                                // and the snapshot exemption does not cover
                                // this read of `i`.
                                (a.write || (b.write && !war_exempt))
                                    && match (self.footprint(a), self.footprint(b)) {
                                        (Some((al, ah)), Some((bl, bh))) => al < bh && bl < ah,
                                        _ => false,
                                    }
                            })
                            .map(|b| (a, b))
                    });
                if let Some((a, b)) = conflict {
                    let (al, ah) = self.footprint(a).expect("checked");
                    let (bl, bh) = self.footprint(b).expect("checked");
                    let (lo, hi) = (al.max(bl), ah.min(bh));
                    out.push(Diagnostic {
                        code: codes::OVERLAP_HAZARD.into(),
                        check: check.into(),
                        message: format!(
                            "{} and {} touch overlapping SRF words [{lo}, {hi}) per bank \
                             with no ordering dependence between ops {i} and {j}",
                            a.label, b.label
                        ),
                        prog_op: Some(j),
                        kernel: None,
                        kernel_op: None,
                        line: None,
                    });
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Indexed: V301 / V302 / V303
    // -----------------------------------------------------------------------

    fn check_indexed(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Indexed.name();
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let ProgOp::Kernel {
                kernel,
                bindings,
                iters,
                ..
            } = op
            else {
                continue;
            };
            let Some(idx_cfg) = &self.cfg.srf.indexed else {
                // No indexed hardware: one finding per indexed stream slot.
                for (slot, decl) in kernel.streams.iter().enumerate() {
                    if decl.kind.is_indexed() {
                        let kop = kernel
                            .ops
                            .iter()
                            .position(|o| o.opcode.stream().map(|s| s.0 as usize) == Some(slot));
                        out.push(kdiag(
                            codes::INDEXED_ON_NON_INDEXED_CONFIG,
                            check,
                            i,
                            kernel,
                            kop,
                            format!(
                                "kernel `{}` declares indexed stream `{}`, but configuration \
                                 `{:?}` has no indexed-SRF hardware",
                                kernel.name, decl.name, self.cfg.name
                            ),
                        ));
                    }
                }
                continue;
            };
            for (slot, decl) in kernel.streams.iter().enumerate() {
                if decl.kind.is_cross_lane() && !idx_cfg.crosslane {
                    let kop = kernel
                        .ops
                        .iter()
                        .position(|o| o.opcode.stream().map(|s| s.0 as usize) == Some(slot));
                    out.push(kdiag(
                        codes::CROSS_LANE_WITHOUT_NETWORK,
                        check,
                        i,
                        kernel,
                        kop,
                        format!(
                            "kernel `{}` declares cross-lane indexed stream `{}`, but the \
                             configuration's cross-lane index network is disabled",
                            kernel.name, decl.name
                        ),
                    ));
                }
            }

            // Interval analysis over the kernel body: flag indices that are
            // *provably* outside the addressable records of their binding.
            let vals = eval_intervals(kernel, *iters, self.cfg.lanes as i64);
            for (kop, op) in kernel.ops.iter().enumerate() {
                let (slot, iv) = match op.opcode {
                    Opcode::IdxAddr(s) => (s, vals[kop]),
                    Opcode::IdxWrite(s) => (s, operand_interval(&vals, op, 0)),
                    _ => continue,
                };
                let Some(iv) = iv else { continue };
                let b = &bindings[slot.0 as usize];
                if b.record_words == 0 {
                    continue;
                }
                let per_lane = (b.range.words_per_bank / b.record_words) as i64;
                let max_valid = if kernel.stream(slot).kind.is_cross_lane() {
                    self.cfg.lanes as i64 * per_lane - 1
                } else {
                    per_lane - 1
                };
                if iv.lo > max_valid || iv.hi < 0 {
                    out.push(kdiag(
                        codes::INDEX_OUT_OF_BOUNDS,
                        check,
                        i,
                        kernel,
                        Some(kop),
                        format!(
                            "index into stream `{}` is provably out of bounds: value in \
                             [{}, {}] but valid records are 0..={max_valid}",
                            kernel.stream(slot).name,
                            iv.lo,
                            iv.hi
                        ),
                    ));
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Slack: V401
    // -----------------------------------------------------------------------

    fn check_slack(&self, out: &mut Vec<Diagnostic>) {
        let check = Check::Slack.name();
        if !self.cfg.has_indexed_srf() {
            return; // V301 already rejects indexed kernels here
        }
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let ProgOp::Kernel {
                kernel, schedule, ..
            } = op
            else {
                continue;
            };
            for (kop, op) in kernel.ops.iter().enumerate() {
                let Opcode::IdxRead(slot) = op.opcode else {
                    continue;
                };
                let addr = op.operands[0].value.index();
                let sep = if kernel.stream(slot).kind.is_cross_lane() {
                    self.cfg.sched.crosslane_addr_data_separation
                } else {
                    self.cfg.sched.inlane_addr_data_separation
                };
                let (sa, sr) = (schedule.slots[addr], schedule.slots[kop]);
                if sr < sa + sep {
                    out.push(kdiag(
                        codes::INSUFFICIENT_SLACK,
                        check,
                        i,
                        kernel,
                        Some(kop),
                        format!(
                            "indexed read of stream `{}` is scheduled at cycle {sr}, only \
                             {} cycle(s) after its address issue at cycle {sa}; the \
                             configuration requires {sep}",
                            kernel.stream(slot).name,
                            sr - sa
                        ),
                    ));
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Deadlock: V501
    // -----------------------------------------------------------------------

    /// Replays the modulo schedule's address pushes and data pops for each
    /// indexed *read* stream and proves the all-or-nothing issue group can
    /// always make progress. The hardware wedges when, at some kernel cycle,
    /// the group's pops outrun the words the FIFO + buffer can ever deliver,
    /// or its pushes cannot fit even after the buffer drains as far as the
    /// already-popped words allow. Writes drain unconditionally (no buffer
    /// reservation), so write-only streams cannot wedge.
    fn check_deadlock(&self, out: &mut Vec<Diagnostic>) {
        let Some(idx_cfg) = &self.cfg.srf.indexed else {
            return;
        };
        let fifo_cap = idx_cfg.addr_fifo_entries as u64;
        let buf_cap = self.cfg.srf.stream_buffer_words as u64;
        for i in 0..self.program.len() {
            let (op, _) = self.program.node(i);
            let ProgOp::Kernel {
                kernel,
                schedule,
                bindings,
                iters,
            } = op
            else {
                continue;
            };
            for (slot, decl) in kernel.streams.iter().enumerate() {
                if !decl.kind.is_indexed() || decl.kind == StreamKind::IdxInWrite {
                    continue;
                }
                let rw = bindings[slot].record_words.max(1) as u64;
                let slot = isrf_kernel::ir::StreamSlot(slot as u8);
                if let Some(d) =
                    deadlock_for_stream(kernel, schedule, slot, rw, *iters, (fifo_cap, buf_cap), i)
                {
                    out.push(d);
                }
            }
        }
    }
}

/// Build a kernel-scoped diagnostic, resolving the source line when known.
fn kdiag(
    code: &str,
    check: &str,
    prog_op: usize,
    kernel: &Kernel,
    kernel_op: Option<usize>,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code: code.into(),
        check: check.into(),
        message,
        prog_op: Some(prog_op),
        kernel: Some(kernel.name.clone()),
        kernel_op,
        line: kernel_op.and_then(|i| kernel.source_line(i)),
    }
}

/// Does the union of `intervals` cover `[lo, hi)`? Sorts in place.
fn interval_covers(intervals: &mut [(u32, u32)], lo: u32, hi: u32) -> bool {
    if lo >= hi {
        return true;
    }
    intervals.sort_unstable();
    let mut need = lo;
    for &(s, e) in intervals.iter() {
        if s > need {
            return false;
        }
        if e > need {
            need = e;
            if need >= hi {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// V501: address-FIFO deadlock detection
// ---------------------------------------------------------------------------

fn deadlock_for_stream(
    kernel: &Kernel,
    schedule: &Schedule,
    slot: isrf_kernel::ir::StreamSlot,
    rw: u64,
    iters: u64,
    (fifo_cap, buf_cap): (u64, u64),
    prog_op: usize,
) -> Option<Diagnostic> {
    let check = Check::Deadlock.name();
    let addr_ops = kernel.stream_addr_ops(slot);
    let data_ops = kernel.stream_data_ops(slot);
    if addr_ops.is_empty() || data_ops.is_empty() {
        return None;
    }

    // Simulate enough iterations for the FIFO/buffer interplay to reach
    // steady state: every op repeats at its slot + j*II, so occupancy is
    // eventually periodic with period II; a window comfortably larger than
    // the capacities plus the pipeline depth suffices.
    let window = fifo_cap + buf_cap + 2 * schedule.stages() as u64 + 8;
    let sim_iters = iters.min(window);
    let mut events: Vec<(u64, usize, bool)> = Vec::new();
    for j in 0..sim_iters {
        for &a in &addr_ops {
            events.push((schedule.slots[a] as u64 + j * schedule.ii as u64, a, true));
        }
        for &r in &data_ops {
            events.push((schedule.slots[r] as u64 + j * schedule.ii as u64, r, false));
        }
    }
    events.sort_unstable();

    // `pushed` counts records queued, `popped` counts words consumed, both
    // *before* the current cycle (the issue group is all-or-nothing with
    // pre-cycle state: same-cycle pushes cannot feed same-cycle pops).
    let mut pushed: u64 = 0;
    let mut popped: u64 = 0;
    let mut k = 0;
    while k < events.len() {
        let t = events[k].0;
        let mut pushes_at = 0u64;
        let mut pops_at = 0u64;
        let mut first_push = None;
        let mut first_pop = None;
        while k < events.len() && events[k].0 == t {
            let (_, op, is_push) = events[k];
            if is_push {
                pushes_at += 1;
                first_push.get_or_insert(op);
            } else {
                pops_at += 1;
                first_pop.get_or_insert(op);
            }
            k += 1;
        }
        // Words the hardware can ever deliver while the cluster is stalled
        // at cycle `t`: everything pushed so far, bounded by the buffer
        // (popped words free buffer space; stalled pops do not).
        let deliverable = (pushed * rw).min(popped + buf_cap);
        if popped + pops_at > deliverable {
            let op = first_pop.expect("pops_at > 0");
            return Some(kdiag(
                codes::FIFO_DEADLOCK,
                check,
                prog_op,
                kernel,
                Some(op),
                format!(
                    "indexed stream `{}` deadlocks at kernel cycle {t}: the schedule pops \
                     word {} but at most {deliverable} can ever arrive ({pushed} record(s) \
                     pushed, stream buffer holds {buf_cap} words)",
                    kernel.stream(slot).name,
                    popped + pops_at,
                ),
            ));
        }
        // Records the FIFO can shed while stalled: limited by the words the
        // buffer can absorb beyond what was already popped.
        let drainable = pushed.min((popped + buf_cap) / rw);
        if pushed - drainable + pushes_at > fifo_cap {
            let op = first_push.expect("pushes_at > 0");
            return Some(kdiag(
                codes::FIFO_DEADLOCK,
                check,
                prog_op,
                kernel,
                Some(op),
                format!(
                    "indexed stream `{}` deadlocks at kernel cycle {t}: {} record(s) would \
                     be outstanding but the address FIFO holds {fifo_cap} and the stream \
                     buffer {buf_cap} words ({} word(s) per record)",
                    kernel.stream(slot).name,
                    pushed - drainable + pushes_at,
                    rw
                ),
            ));
        }
        pushed += pushes_at;
        popped += pops_at;
    }
    None
}

// ---------------------------------------------------------------------------
// V303: interval analysis over kernel bodies
// ---------------------------------------------------------------------------

/// A closed interval over `i64` (wide enough to hold any `i32` arithmetic
/// result exactly before clamping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: i64,
    hi: i64,
}

/// Abstract value: `None` is ⊤ (unknown).
type AbsVal = Option<Iv>;

const I32_MIN: i64 = i32::MIN as i64;
const I32_MAX: i64 = i32::MAX as i64;

fn iv(lo: i64, hi: i64) -> AbsVal {
    // Anything escaping i32 range may wrap at runtime: give up rather than
    // model modular arithmetic.
    if lo < I32_MIN || hi > I32_MAX || lo > hi {
        None
    } else {
        Some(Iv { lo, hi })
    }
}

fn exact(v: i64) -> AbsVal {
    iv(v, v)
}

fn union(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (Some(a), Some(b)) => iv(a.lo.min(b.lo), a.hi.max(b.hi)),
        _ => None,
    }
}

fn lift2(a: AbsVal, b: AbsVal, f: impl Fn(Iv, Iv) -> AbsVal) -> AbsVal {
    match (a, b) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    }
}

fn const_of(v: AbsVal) -> Option<i64> {
    v.filter(|i| i.lo == i.hi).map(|i| i.lo)
}

fn operand_interval(vals: &[AbsVal], op: &Op, k: usize) -> AbsVal {
    let o = &op.operands[k];
    if o.distance > 0 {
        // Loop-carried: the value from a previous iteration, or `init` on
        // early iterations. The producer's interval still bounds it, but
        // `init` must be included too.
        return union(vals[o.value.index()], exact(o.init as i32 as i64));
    }
    vals[o.value.index()]
}

/// Forward interval analysis over a kernel body (ops are in dependence
/// order, so one pass suffices; loop-carried operands fold in the
/// producer's final interval, which is sound because intervals here never
/// depend on the iteration count except through `IterId`).
fn eval_intervals(kernel: &Kernel, iters: u64, lanes: i64) -> Vec<AbsVal> {
    let mut vals: Vec<AbsVal> = Vec::with_capacity(kernel.ops.len());
    // Two passes: loop-carried operands may reference *later* ops, whose
    // interval is unknown on the first pass (treated as ⊤, which is sound);
    // the second pass tightens with every producer computed.
    for pass in 0..2 {
        for (i, op) in kernel.ops.iter().enumerate() {
            let get = |k: usize| -> AbsVal {
                let o = &op.operands[k];
                let produced = if o.distance == 0 || pass > 0 || o.value.index() < i {
                    *vals.get(o.value.index()).unwrap_or(&None)
                } else {
                    None
                };
                if o.distance > 0 {
                    union(produced, exact(o.init as i32 as i64))
                } else {
                    produced
                }
            };
            use Opcode::*;
            let v = match op.opcode {
                Const(w) => exact(w as i32 as i64),
                LaneId => iv(0, lanes - 1),
                LaneCount => exact(lanes),
                IterId => iv(0, (iters.saturating_sub(1)).min(I32_MAX as u64) as i64),
                Mov => get(0),
                Neg => get(0).and_then(|a| iv(-a.hi, -a.lo)),
                Not => get(0).and_then(|a| iv(-a.hi - 1, -a.lo - 1)),
                Add => lift2(get(0), get(1), |a, b| iv(a.lo + b.lo, a.hi + b.hi)),
                Sub => lift2(get(0), get(1), |a, b| iv(a.lo - b.hi, a.hi - b.lo)),
                Mul => lift2(get(0), get(1), |a, b| {
                    let p = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                    iv(*p.iter().min().expect("4"), *p.iter().max().expect("4"))
                }),
                Div => lift2(get(0), get(1), |a, b| {
                    // Only the easy, common case: positive constant divisor.
                    match const_of(Some(b)) {
                        Some(d) if d > 0 => iv(a.lo.div_euclid(d).min(a.lo / d), a.hi / d),
                        _ => None,
                    }
                }),
                Rem => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    Some(d) if d > 0 && a.lo >= 0 => iv(0, (d - 1).min(a.hi)),
                    _ => None,
                }),
                And => {
                    // Masking with a non-negative value bounds the result
                    // even when the other operand is completely unknown.
                    let nonneg = |v: AbsVal| v.filter(|i| i.lo >= 0).map(|i| i.hi);
                    match (nonneg(get(0)), nonneg(get(1))) {
                        (Some(a), Some(b)) => iv(0, a.min(b)),
                        (Some(a), None) => iv(0, a),
                        (None, Some(b)) => iv(0, b),
                        (None, None) => None,
                    }
                }
                Or => lift2(get(0), get(1), |a, b| {
                    if a.lo >= 0 && b.lo >= 0 {
                        // OR cannot clear bits: at least max(lo); cannot set
                        // bits above the highest set bit of either hi.
                        let bits = 64 - (a.hi.max(b.hi) as u64).leading_zeros();
                        iv(a.lo.max(b.lo), (1i64 << bits) - 1)
                    } else {
                        None
                    }
                }),
                Xor => lift2(get(0), get(1), |a, b| {
                    if a.lo >= 0 && b.lo >= 0 {
                        let bits = 64 - (a.hi.max(b.hi) as u64).leading_zeros();
                        iv(0, (1i64 << bits) - 1)
                    } else {
                        None
                    }
                }),
                Shl => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    Some(s) if (0..32).contains(&s) => iv(a.lo << s, a.hi << s),
                    _ => None,
                }),
                Shr => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    // Logical shift: only safe on non-negative values.
                    Some(s) if (0..32).contains(&s) && a.lo >= 0 => iv(a.lo >> s, a.hi >> s),
                    _ => None,
                }),
                Sra => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    Some(s) if (0..32).contains(&s) => iv(a.lo >> s, a.hi >> s),
                    _ => None,
                }),
                Lt | Le | Eq | Ne | ULt | FLt | FLe | FEq => iv(0, 1),
                Min => lift2(get(0), get(1), |a, b| iv(a.lo.min(b.lo), a.hi.min(b.hi))),
                Max => lift2(get(0), get(1), |a, b| iv(a.lo.max(b.lo), a.hi.max(b.hi))),
                Select => union(get(1), get(2)),
                // The address token of IdxAddr *is* the index value.
                IdxAddr(_) => get(0),
                // Everything data-dependent, floating point, or cross-lane.
                FNeg
                | IToF
                | FToI
                | FAdd
                | FSub
                | FMul
                | FDiv
                | FMin
                | FMax
                | SeqRead(_)
                | SeqWrite(_)
                | CondRead(_)
                | CondLaneRead(_)
                | CondWrite(_)
                | IdxRead(_)
                | IdxWrite(_)
                | ScratchRead
                | ScratchWrite
                | Comm { .. }
                | CommXor { .. } => None,
            };
            if pass == 0 {
                vals.push(v);
            } else {
                vals[i] = v;
            }
        }
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_kernel::ir::{KernelBuilder, StreamKind};

    fn intervals_of(build: impl FnOnce(&mut KernelBuilder)) -> Vec<AbsVal> {
        let mut b = KernelBuilder::new("t");
        build(&mut b);
        let k = b.build().expect("valid kernel");
        eval_intervals(&k, 100, 8)
    }

    #[test]
    fn interval_masking_bounds_index() {
        // (x & 63) is in [0, 63] even when x is unknown.
        let vals = intervals_of(|b| {
            let s = b.stream("in", StreamKind::SeqIn);
            let o = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(s);
            let m = b.constant(63);
            let i = b.push(Opcode::And, vec![x.into(), m.into()]);
            b.seq_write(o, i);
        });
        assert_eq!(vals[2], iv(0, 63));
    }

    #[test]
    fn interval_arith_and_compare() {
        let vals = intervals_of(|b| {
            let o = b.stream("out", StreamKind::SeqOut);
            let c = b.constant(10);
            let l = b.lane_id(); // [0, 7]
            let s = b.push(Opcode::Add, vec![c.into(), l.into()]); // [10, 17]
            let m = b.push(Opcode::Mul, vec![s.into(), s.into()]); // [100, 289]
            let d = b.push(Opcode::Sub, vec![m.into(), c.into()]); // [90, 279]
            let q = b.push(Opcode::Lt, vec![d.into(), c.into()]); // [0, 1]
            b.seq_write(o, q);
        });
        assert_eq!(vals[2], iv(10, 17));
        assert_eq!(vals[3], iv(100, 289));
        assert_eq!(vals[4], iv(90, 279));
        assert_eq!(vals[5], iv(0, 1));
    }

    #[test]
    fn interval_stream_reads_are_top() {
        let vals = intervals_of(|b| {
            let s = b.stream("in", StreamKind::SeqIn);
            let o = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(s);
            b.seq_write(o, x);
        });
        assert_eq!(vals[0], None);
    }

    #[test]
    fn interval_carried_operand_includes_init() {
        // acc = acc<1> + 1 with init 5: producer interval is ⊤-free but the
        // union with init keeps 5 inside.
        let vals = intervals_of(|b| {
            let o = b.stream("out", StreamKind::SeqOut);
            let one = b.constant(1);
            let acc = b.push(
                Opcode::Add,
                vec![
                    isrf_kernel::ir::Operand::carried(isrf_kernel::ir::ValueId(1), 1, 5),
                    one.into(),
                ],
            );
            b.seq_write(o, acc);
        });
        // Self-referential sums are unbounded: must be ⊤, not a wrong bound.
        assert_eq!(vals[1], None);
    }

    #[test]
    fn interval_covers_checks_gaps() {
        let mut iv1 = vec![(0u32, 10u32), (20, 30)];
        assert!(interval_covers(&mut iv1.clone(), 0, 10));
        assert!(interval_covers(&mut iv1.clone(), 25, 30));
        assert!(!interval_covers(&mut iv1, 5, 25));
        let mut iv2 = vec![(10, 20), (0, 12)];
        assert!(interval_covers(&mut iv2, 0, 20), "unsorted overlapping");
    }
}
