//! Whole-program interval propagation over the SRF.
//!
//! An abstract store maps per-bank word intervals to value intervals
//! ([`AbsVal`]) plus a provenance label. Program ops are interpreted in
//! topological (issue) order — sound for verifier-clean programs, where
//! every write a read can observe is ordered before it (unordered
//! conflicts are V201's domain) and memory ops snapshot their SRF sources
//! at issue:
//!
//! * `Load`/`GatherDyn` destinations become ⊤ (memory contents are
//!   unknown) over the binding's full range — a *strong* update.
//! * Kernel outputs join the intervals of every value written to the
//!   slot. Sequential outputs that provably cover the whole binding are
//!   strong updates; conditional/indexed writes (data-dependent count or
//!   placement) are weak (join with what was there).
//! * Kernel inputs and gather/scatter index streams read back the join
//!   over their footprint, carrying provenance for diagnostics.
//!
//! Pre-existing SRF data (`VerifyEnv::filled`) is ⊤: the machine records
//! *that* words were filled, not what they hold.

use std::collections::BTreeSet;

use isrf_core::config::MachineConfig;
use isrf_kernel::ir::{Kernel, Opcode, StreamKind};
use isrf_sim::program::{ProgOp, StreamProgram};
use isrf_sim::verify::VerifyEnv;

use crate::interval::{eval_intervals, operand_interval, union, AbsVal};
use crate::{binding_footprint, range_interval};

/// One segment of the abstract SRF store.
#[derive(Debug, Clone)]
struct Seg {
    lo: u32,
    hi: u32,
    val: AbsVal,
    /// Which op's output this interval came from (for dataflow notes).
    src: Option<String>,
}

/// The abstract SRF store: sorted disjoint segments covering one bank.
#[derive(Debug)]
struct SrfStore {
    segs: Vec<Seg>,
}

impl SrfStore {
    fn new(bank_words: u32) -> SrfStore {
        SrfStore {
            segs: vec![Seg {
                lo: 0,
                hi: bank_words.max(1),
                val: None,
                src: None,
            }],
        }
    }

    /// Join of every segment overlapping `[lo, hi)`, with the provenance
    /// labels of the narrow (non-⊤) contributors.
    fn read(&self, lo: u32, hi: u32) -> (AbsVal, Vec<String>) {
        if lo >= hi {
            return (None, Vec::new());
        }
        let mut acc: AbsVal = None;
        let mut first = true;
        let mut sources = Vec::new();
        for seg in &self.segs {
            if seg.hi <= lo || seg.lo >= hi {
                continue;
            }
            acc = if first { seg.val } else { union(acc, seg.val) };
            first = false;
            if seg.val.is_some() {
                if let Some(s) = &seg.src {
                    if !sources.contains(s) {
                        sources.push(s.clone());
                    }
                }
            }
        }
        (acc, sources)
    }

    /// Write `val` over `[lo, hi)`. `strong` replaces; weak joins with the
    /// existing contents (a partial or data-dependent write).
    fn write(&mut self, lo: u32, hi: u32, val: AbsVal, src: Option<&str>, strong: bool) {
        if lo >= hi {
            return;
        }
        let mut out: Vec<Seg> = Vec::with_capacity(self.segs.len() + 2);
        for seg in &self.segs {
            if seg.hi <= lo || seg.lo >= hi {
                out.push(seg.clone());
                continue;
            }
            if seg.lo < lo {
                let mut head = seg.clone();
                head.hi = lo;
                out.push(head);
            }
            let (olo, ohi) = (seg.lo.max(lo), seg.hi.min(hi));
            let (nval, nsrc) = if strong {
                (val, src.map(String::from))
            } else {
                let joined = union(seg.val, val);
                let nsrc = if joined.is_some() {
                    match (&seg.src, src) {
                        (Some(a), Some(b)) if a != b => Some(format!("{a}; {b}")),
                        (Some(a), _) => Some(a.clone()),
                        (None, Some(b)) => Some(b.to_string()),
                        (None, None) => None,
                    }
                } else {
                    None
                };
                (joined, nsrc)
            };
            out.push(Seg {
                lo: olo,
                hi: ohi,
                val: nval,
                src: nsrc,
            });
            if seg.hi > hi {
                let mut tail = seg.clone();
                tail.lo = hi;
                out.push(tail);
            }
        }
        self.segs = out;
    }
}

/// A propagated fact about one stream input (or a gather/scatter index
/// stream): the joined value interval over the region it reads, and where
/// those values came from.
#[derive(Debug, Clone)]
pub(crate) struct SlotIn {
    pub val: AbsVal,
    /// Per-bank `[lo, hi)` word region the fact covers.
    pub region: (u32, u32),
    /// Provenance labels of the producers.
    pub sources: Vec<String>,
}

/// The whole-program propagation result, indexed by program op.
#[derive(Debug)]
pub(crate) struct Prop {
    /// For kernel ops: one entry per stream slot (`None` for outputs and
    /// for non-kernel ops the vec is empty).
    pub kernel_in: Vec<Vec<Option<SlotIn>>>,
    /// For gather/scatter ops: the index-stream fact.
    pub mem_index: Vec<Option<SlotIn>>,
}

/// Is this stream kind read by the kernel (an input)?
fn is_input(kind: StreamKind) -> bool {
    matches!(
        kind,
        StreamKind::SeqIn
            | StreamKind::CondIn
            | StreamKind::CondLaneIn
            | StreamKind::IdxInRead
            | StreamKind::IdxCrossRead
    )
}

/// Ops writing data to `slot`, with the operand index holding the value.
fn write_value_operand(op: &isrf_kernel::ir::Op, slot: usize) -> Option<usize> {
    match op.opcode {
        Opcode::SeqWrite(s) if s.0 as usize == slot => Some(0),
        Opcode::CondWrite(s) if s.0 as usize == slot => Some(1),
        Opcode::IdxWrite(s) if s.0 as usize == slot => Some(1),
        _ => None,
    }
}

/// Interpret `program` over the abstract store.
pub(crate) fn propagate(cfg: &MachineConfig, env: &VerifyEnv, program: &StreamProgram) -> Prop {
    let lanes = cfg.lanes as u32;
    let bank_words = cfg.srf.bank_words(cfg.lanes) as u32;
    let mut store = SrfStore::new(bank_words);
    let _ = env; // pre-existing fills are ⊤, the store's initial state
    let n = program.len();
    let mut kernel_in: Vec<Vec<Option<SlotIn>>> = vec![Vec::new(); n];
    let mut mem_index: Vec<Option<SlotIn>> = vec![None; n];

    for i in 0..n {
        let (op, _) = program.node(i);
        match op {
            ProgOp::Load { dst, .. } => {
                let (lo, hi) = range_interval(dst);
                store.write(lo, hi, None, Some(&format!("load (op {i})")), true);
            }
            ProgOp::Store { .. } => {}
            ProgOp::GatherDyn {
                index_stream, dst, ..
            } => {
                mem_index[i] = read_fact(&store, index_stream, false, lanes);
                let (lo, hi) = range_interval(dst);
                store.write(lo, hi, None, Some(&format!("gather (op {i})")), true);
            }
            ProgOp::ScatterDyn { index_stream, .. } => {
                mem_index[i] = read_fact(&store, index_stream, false, lanes);
            }
            ProgOp::Kernel {
                kernel,
                bindings,
                iters,
                ..
            } => {
                // Inputs first: a kernel's own outputs never feed its own
                // inputs within an invocation (no forwarding).
                let mut slots: Vec<Option<SlotIn>> = Vec::with_capacity(kernel.streams.len());
                for (slot, decl) in kernel.streams.iter().enumerate() {
                    if is_input(decl.kind) {
                        slots.push(read_fact(
                            &store,
                            &bindings[slot],
                            decl.kind.is_indexed(),
                            lanes,
                        ));
                    } else {
                        slots.push(None);
                    }
                }
                let stream_in: Vec<AbsVal> = slots
                    .iter()
                    .map(|s| s.as_ref().and_then(|f| f.val))
                    .collect();
                let vals = eval_intervals(kernel, *iters, cfg.lanes as i64, &stream_in);

                for (slot, decl) in kernel.streams.iter().enumerate() {
                    if is_input(decl.kind) {
                        continue;
                    }
                    let b = &bindings[slot];
                    let mut joined: AbsVal = None;
                    let mut first = true;
                    let mut writes: u64 = 0;
                    for kop in &kernel.ops {
                        if let Some(vk) = write_value_operand(kop, slot) {
                            let v = operand_interval(&vals, kop, vk);
                            joined = if first { v } else { union(joined, v) };
                            first = false;
                            writes += 1;
                        }
                    }
                    if writes == 0 {
                        continue;
                    }
                    let Some((lo, hi)) = binding_footprint(b, decl.kind.is_indexed(), lanes) else {
                        continue;
                    };
                    // Strong only when the count and placement of writes is
                    // static (sequential) and provably covers every record.
                    let covered = u64::from(lanes) * iters * writes >= u64::from(b.words());
                    let strong = decl.kind == StreamKind::SeqOut && covered;
                    let src = format!("kernel `{}` (op {i}) output `{}`", kernel.name, decl.name);
                    store.write(lo, hi, joined, Some(&src), strong);
                }
                kernel_in[i] = slots;
            }
        }
    }

    Prop {
        kernel_in,
        mem_index,
    }
}

fn read_fact(
    store: &SrfStore,
    b: &isrf_sim::stream::StreamBinding,
    indexed: bool,
    lanes: u32,
) -> Option<SlotIn> {
    let region = binding_footprint(b, indexed, lanes)?;
    let (val, sources) = store.read(region.0, region.1);
    Some(SlotIn {
        val,
        region,
        sources,
    })
}

/// Which input stream slots the value of kernel op `root` (transitively)
/// depends on — the dataflow cone reported in V310/V311 notes.
pub(crate) fn input_slots_feeding(kernel: &Kernel, root: usize) -> BTreeSet<usize> {
    let mut seen = vec![false; kernel.ops.len()];
    let mut stack = vec![root];
    let mut slots = BTreeSet::new();
    while let Some(k) = stack.pop() {
        if seen[k] {
            continue;
        }
        seen[k] = true;
        let op = &kernel.ops[k];
        if let Opcode::SeqRead(s)
        | Opcode::CondRead(s)
        | Opcode::CondLaneRead(s)
        | Opcode::IdxRead(s) = op.opcode
        {
            slots.insert(s.0 as usize);
        }
        for o in &op.operands {
            stack.push(o.value.index());
        }
    }
    slots
}
