//! The abstract domain: closed `i64` intervals over kernel values, and the
//! forward interval evaluation of a kernel body.
//!
//! `None` is ⊤ (unknown). Intervals that escape `i32` range collapse to ⊤
//! rather than model modular arithmetic. The evaluator takes a per-slot
//! `stream_in` vector so whole-program propagation (see `prop`) can seed
//! stream reads with the producing op's value interval; per-kernel
//! analysis passes an empty slice and every stream read is ⊤.

use isrf_kernel::ir::{Kernel, Op, Opcode};

/// A closed interval over `i64` (wide enough to hold any `i32` arithmetic
/// result exactly before clamping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iv {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// Abstract value: `None` is ⊤ (unknown).
pub type AbsVal = Option<Iv>;

const I32_MIN: i64 = i32::MIN as i64;
const I32_MAX: i64 = i32::MAX as i64;

pub(crate) fn iv(lo: i64, hi: i64) -> AbsVal {
    // Anything escaping i32 range may wrap at runtime: give up rather than
    // model modular arithmetic.
    if lo < I32_MIN || hi > I32_MAX || lo > hi {
        None
    } else {
        Some(Iv { lo, hi })
    }
}

pub(crate) fn exact(v: i64) -> AbsVal {
    iv(v, v)
}

pub(crate) fn union(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (Some(a), Some(b)) => iv(a.lo.min(b.lo), a.hi.max(b.hi)),
        _ => None,
    }
}

fn lift2(a: AbsVal, b: AbsVal, f: impl Fn(Iv, Iv) -> AbsVal) -> AbsVal {
    match (a, b) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    }
}

fn const_of(v: AbsVal) -> Option<i64> {
    v.filter(|i| i.lo == i.hi).map(|i| i.lo)
}

pub(crate) fn operand_interval(vals: &[AbsVal], op: &Op, k: usize) -> AbsVal {
    let o = &op.operands[k];
    if o.distance > 0 {
        // Loop-carried: the value from a previous iteration, or `init` on
        // early iterations. The producer's interval still bounds it, but
        // `init` must be included too.
        return union(vals[o.value.index()], exact(o.init as i32 as i64));
    }
    vals[o.value.index()]
}

/// Forward interval analysis over a kernel body (ops are in dependence
/// order, so one pass suffices; loop-carried operands fold in the
/// producer's final interval, which is sound because intervals here never
/// depend on the iteration count except through `IterId`).
///
/// `stream_in[slot]` seeds the interval returned by stream reads of that
/// slot (⊤ for slots past the end, so `&[]` means "no stream knowledge").
pub(crate) fn eval_intervals(
    kernel: &Kernel,
    iters: u64,
    lanes: i64,
    stream_in: &[AbsVal],
) -> Vec<AbsVal> {
    let slot_in = |s: isrf_kernel::ir::StreamSlot| -> AbsVal {
        stream_in.get(s.0 as usize).copied().flatten()
    };
    let mut vals: Vec<AbsVal> = Vec::with_capacity(kernel.ops.len());
    // Two passes: loop-carried operands may reference *later* ops, whose
    // interval is unknown on the first pass (treated as ⊤, which is sound);
    // the second pass tightens with every producer computed.
    for pass in 0..2 {
        for (i, op) in kernel.ops.iter().enumerate() {
            let get = |k: usize| -> AbsVal {
                let o = &op.operands[k];
                let produced = if o.distance == 0 || pass > 0 || o.value.index() < i {
                    *vals.get(o.value.index()).unwrap_or(&None)
                } else {
                    None
                };
                if o.distance > 0 {
                    union(produced, exact(o.init as i32 as i64))
                } else {
                    produced
                }
            };
            use Opcode::*;
            let v = match op.opcode {
                Const(w) => exact(w as i32 as i64),
                LaneId => iv(0, lanes - 1),
                LaneCount => exact(lanes),
                IterId => iv(0, (iters.saturating_sub(1)).min(I32_MAX as u64) as i64),
                Mov => get(0),
                Neg => get(0).and_then(|a| iv(-a.hi, -a.lo)),
                Not => get(0).and_then(|a| iv(-a.hi - 1, -a.lo - 1)),
                Add => lift2(get(0), get(1), |a, b| iv(a.lo + b.lo, a.hi + b.hi)),
                Sub => lift2(get(0), get(1), |a, b| iv(a.lo - b.hi, a.hi - b.lo)),
                Mul => lift2(get(0), get(1), |a, b| {
                    let p = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                    iv(*p.iter().min().expect("4"), *p.iter().max().expect("4"))
                }),
                Div => lift2(get(0), get(1), |a, b| {
                    // Only the easy, common case: positive constant divisor.
                    match const_of(Some(b)) {
                        Some(d) if d > 0 => iv(a.lo.div_euclid(d).min(a.lo / d), a.hi / d),
                        _ => None,
                    }
                }),
                Rem => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    Some(d) if d > 0 && a.lo >= 0 => iv(0, (d - 1).min(a.hi)),
                    _ => None,
                }),
                And => {
                    // Masking with a non-negative value bounds the result
                    // even when the other operand is completely unknown.
                    let nonneg = |v: AbsVal| v.filter(|i| i.lo >= 0).map(|i| i.hi);
                    match (nonneg(get(0)), nonneg(get(1))) {
                        (Some(a), Some(b)) => iv(0, a.min(b)),
                        (Some(a), None) => iv(0, a),
                        (None, Some(b)) => iv(0, b),
                        (None, None) => None,
                    }
                }
                Or => lift2(get(0), get(1), |a, b| {
                    if a.lo >= 0 && b.lo >= 0 {
                        // OR cannot clear bits: at least max(lo); cannot set
                        // bits above the highest set bit of either hi.
                        let bits = 64 - (a.hi.max(b.hi) as u64).leading_zeros();
                        iv(a.lo.max(b.lo), (1i64 << bits) - 1)
                    } else {
                        None
                    }
                }),
                Xor => lift2(get(0), get(1), |a, b| {
                    if a.lo >= 0 && b.lo >= 0 {
                        let bits = 64 - (a.hi.max(b.hi) as u64).leading_zeros();
                        iv(0, (1i64 << bits) - 1)
                    } else {
                        None
                    }
                }),
                Shl => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    Some(s) if (0..32).contains(&s) => iv(a.lo << s, a.hi << s),
                    _ => None,
                }),
                Shr => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    // Logical shift: only safe on non-negative values.
                    Some(s) if (0..32).contains(&s) && a.lo >= 0 => iv(a.lo >> s, a.hi >> s),
                    _ => None,
                }),
                Sra => lift2(get(0), get(1), |a, b| match const_of(Some(b)) {
                    Some(s) if (0..32).contains(&s) => iv(a.lo >> s, a.hi >> s),
                    _ => None,
                }),
                Lt | Le | Eq | Ne | ULt | FLt | FLe | FEq => iv(0, 1),
                Min => lift2(get(0), get(1), |a, b| iv(a.lo.min(b.lo), a.hi.min(b.hi))),
                Max => lift2(get(0), get(1), |a, b| iv(a.lo.max(b.lo), a.hi.max(b.hi))),
                Select => union(get(1), get(2)),
                // The address token of IdxAddr *is* the index value.
                IdxAddr(_) => get(0),
                // Stream reads: the propagated interval of the bound SRF
                // region, when whole-program analysis supplied one.
                SeqRead(s) | CondRead(s) | CondLaneRead(s) | IdxRead(s) => slot_in(s),
                // Everything data-dependent, floating point, or cross-lane.
                FNeg
                | IToF
                | FToI
                | FAdd
                | FSub
                | FMul
                | FDiv
                | FMin
                | FMax
                | SeqWrite(_)
                | CondWrite(_)
                | IdxWrite(_)
                | ScratchRead
                | ScratchWrite
                | Comm { .. }
                | CommXor { .. } => None,
            };
            if pass == 0 {
                vals.push(v);
            } else {
                vals[i] = v;
            }
        }
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_kernel::ir::{KernelBuilder, StreamKind};

    fn intervals_of(build: impl FnOnce(&mut KernelBuilder)) -> Vec<AbsVal> {
        let mut b = KernelBuilder::new("t");
        build(&mut b);
        let k = b.build().expect("valid kernel");
        eval_intervals(&k, 100, 8, &[])
    }

    #[test]
    fn interval_masking_bounds_index() {
        // (x & 63) is in [0, 63] even when x is unknown.
        let vals = intervals_of(|b| {
            let s = b.stream("in", StreamKind::SeqIn);
            let o = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(s);
            let m = b.constant(63);
            let i = b.push(Opcode::And, vec![x.into(), m.into()]);
            b.seq_write(o, i);
        });
        assert_eq!(vals[2], iv(0, 63));
    }

    #[test]
    fn interval_arith_and_compare() {
        let vals = intervals_of(|b| {
            let o = b.stream("out", StreamKind::SeqOut);
            let c = b.constant(10);
            let l = b.lane_id(); // [0, 7]
            let s = b.push(Opcode::Add, vec![c.into(), l.into()]); // [10, 17]
            let m = b.push(Opcode::Mul, vec![s.into(), s.into()]); // [100, 289]
            let d = b.push(Opcode::Sub, vec![m.into(), c.into()]); // [90, 279]
            let q = b.push(Opcode::Lt, vec![d.into(), c.into()]); // [0, 1]
            b.seq_write(o, q);
        });
        assert_eq!(vals[2], iv(10, 17));
        assert_eq!(vals[3], iv(100, 289));
        assert_eq!(vals[4], iv(90, 279));
        assert_eq!(vals[5], iv(0, 1));
    }

    #[test]
    fn interval_stream_reads_default_to_top() {
        let vals = intervals_of(|b| {
            let s = b.stream("in", StreamKind::SeqIn);
            let o = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(s);
            b.seq_write(o, x);
        });
        assert_eq!(vals[0], None);
    }

    #[test]
    fn interval_stream_reads_take_seeded_input() {
        let mut b = KernelBuilder::new("t");
        let s = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(s);
        let m = b.constant(1);
        let i = b.push(Opcode::Add, vec![x.into(), m.into()]);
        b.seq_write(o, i);
        let k = b.build().expect("valid kernel");
        let vals = eval_intervals(&k, 100, 8, &[iv(3, 9), None]);
        assert_eq!(vals[0], iv(3, 9));
        assert_eq!(vals[2], iv(4, 10));
    }

    /// `outer` contains `inner` (⊤ contains everything).
    fn contains(outer: AbsVal, inner: AbsVal) -> bool {
        match (outer, inner) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(o), Some(i)) => o.lo <= i.lo && i.hi <= o.hi,
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// The abstract transformer is monotone in its stream inputs:
        /// widening a seeded interval can only widen (never shrink or
        /// shift) every derived interval — the property whole-program
        /// propagation relies on to stay sound when producers are joined.
        #[test]
        fn eval_intervals_is_monotone_in_stream_inputs(
            lo in -1000i64..1000,
            len in 0i64..1000,
            dl in 0i64..1000,
            dh in 0i64..1000,
        ) {
            let mut b = KernelBuilder::new("mono");
            let s = b.stream("in", StreamKind::SeqIn);
            let o = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(s);
            let c = b.constant(7);
            let a = b.push(Opcode::Add, vec![x.into(), c.into()]);
            let m = b.push(Opcode::Mul, vec![a.into(), x.into()]);
            let n = b.push(Opcode::And, vec![m.into(), c.into()]);
            let d = b.push(Opcode::Sub, vec![n.into(), x.into()]);
            let l = b.lane_id();
            let q = b.push(Opcode::Lt, vec![d.into(), l.into()]);
            let sel = b.push(Opcode::Select, vec![q.into(), d.into(), a.into()]);
            b.seq_write(o, sel);
            let k = b.build().expect("valid kernel");

            let narrow = eval_intervals(&k, 100, 8, &[iv(lo, lo + len), None]);
            let wide =
                eval_intervals(&k, 100, 8, &[iv(lo - dl, lo + len + dh), None]);
            let top = eval_intervals(&k, 100, 8, &[]);
            for i in 0..narrow.len() {
                proptest::prop_assert!(
                    contains(wide[i], narrow[i]),
                    "op {i}: {:?} does not contain {:?}", wide[i], narrow[i]
                );
                proptest::prop_assert!(
                    contains(top[i], narrow[i]),
                    "op {i}: ⊤-seeded {:?} does not contain {:?}", top[i], narrow[i]
                );
            }
        }
    }

    #[test]
    fn interval_carried_operand_includes_init() {
        // acc = acc<1> + 1 with init 5: producer interval is ⊤-free but the
        // union with init keeps 5 inside.
        let vals = intervals_of(|b| {
            let o = b.stream("out", StreamKind::SeqOut);
            let one = b.constant(1);
            let acc = b.push(
                Opcode::Add,
                vec![
                    isrf_kernel::ir::Operand::carried(isrf_kernel::ir::ValueId(1), 1, 5),
                    one.into(),
                ],
            );
            b.seq_write(o, acc);
        });
        // Self-referential sums are unbounded: must be ⊤, not a wrong bound.
        assert_eq!(vals[1], None);
    }
}
