//! Static cost model: a sound whole-program cycle lower bound plus
//! per-kernel port-pressure and FIFO-occupancy diagnostics.
//!
//! Every quantity here is a *lower bound* (or an occupancy *upper* bound),
//! derived only from the schedule, the access counts, and the machine
//! configuration — never from simulation. Soundness arguments, per
//! component:
//!
//! * **Schedule floor.** A kernel invocation ticks at least
//!   `(iters-1)·II + completion + 1` cycles (the final `+1` is the `Done`
//!   tick), preceded by `kernel_dispatch_cycles` of dispatch. Stalls and
//!   flush cycles only add to this.
//! * **Port floor.** Stage-1 arbitration grants, per tick, either ONE
//!   sequential/conditional stream (moving `m` words per lane) or ALL
//!   indexed streams together. So ticks ≥ sequential grant count + indexed
//!   service cycles. A sequential stream moving `iters·n` words per lane
//!   needs `⌈iters·n / m⌉` grants; conditional streams move a
//!   data-dependent word count and are floored at zero. Indexed service
//!   obeys three hard caps from [`service_indexed`]: at most one access
//!   per stream per lane per cycle, `inlane_words_per_cycle` in-lane
//!   accesses per lane per cycle shared across streams, and for
//!   cross-lane streams both the per-lane issue width and the global
//!   topology budget (crossbar: `lanes`; ring: `min(4, lanes)`) and the
//!   per-bank network ports. In-lane and cross-lane accesses are serviced
//!   in the same indexed cycle, so the indexed floor is the max of the
//!   two groups, not their sum.
//! * **Memory floor.** The channel model charges bandwidth per DRAM
//!   *burst opening*, not per word: words of a transfer landing in the
//!   burst most recently opened by that transfer ride along free (see
//!   `serve_one` in `isrf-mem`). So the floor counts the minimum credit
//!   each op can be charged — static `Load`/`Store` patterns are walked
//!   in stream order for the exact opening count; dynamic gather/scatter
//!   indices could all land in one burst, so they charge a single
//!   opening. Cacheable traffic charges the cache channel exactly one
//!   credit per word (misses additionally charge DRAM, but a warm cache
//!   could make that zero, so misses contribute nothing to the minimum).
//!   Each channel's charge is divided by its peak refill rate, rounded
//!   *up* to milli-words per cycle, after subtracting the largest single
//!   deduction (credits may go briefly negative by one charge). Memory
//!   overlaps kernels, so the program floor is `max(Σ kernel floors,
//!   memory floor)`, not their sum.
//!
//! [`service_indexed`]: ../isrf_sim/index.html

use isrf_core::config::MachineConfig;
use isrf_kernel::ir::{Kernel, StreamKind, StreamSlot};
use isrf_kernel::sched::Schedule;
use isrf_mem::AddrPattern;
use isrf_sim::program::{ProgOp, StreamProgram};

/// Static cost facts for one stream slot of a kernel invocation.
#[derive(Debug, Clone)]
pub struct StreamCost {
    /// Stream name from the kernel declaration.
    pub name: String,
    /// Stream kind, e.g. `seq-in`.
    pub kind: &'static str,
    /// SRF accesses per lane over the whole invocation (for conditional
    /// streams this is the data-dependent *maximum*).
    pub accesses_per_lane: u64,
    /// Sequential port grants the stream needs (0 for conditional and
    /// indexed streams).
    pub port_grants: u64,
    /// Cycles needed to service this stream alone (indexed streams only:
    /// one access per lane per cycle).
    pub service_floor: u64,
    /// Demand over per-stream peak service rate within one II, in percent.
    /// Over 100 means the stream, alone, makes the kernel port-bound.
    pub pressure_pct: u32,
    /// Peak address-FIFO occupancy bound in records (indexed reads).
    pub addr_fifo_peak: u64,
    /// Peak stream-buffer occupancy bound in words (indexed reads).
    pub buffer_peak: u64,
}

/// Static cost facts for one kernel invocation.
#[derive(Debug, Clone)]
pub struct KernelCost {
    /// Kernel name.
    pub name: String,
    /// Index of the invocation in the [`StreamProgram`].
    pub prog_op: usize,
    /// Iterations per lane.
    pub iters: u64,
    /// Initiation interval of the modulo schedule.
    pub ii: u32,
    /// Fixed dispatch overhead in cycles.
    pub dispatch_cycles: u64,
    /// `(iters-1)·II + completion + 1`: cycles the schedule alone needs.
    pub schedule_floor: u64,
    /// Sequential grants plus indexed service cycles the ports alone need.
    pub port_floor: u64,
    /// Sound invocation lower bound:
    /// `dispatch + max(schedule_floor, port_floor)`.
    pub floor: u64,
    /// In-lane indexed demand over sub-array capacity per II, in percent
    /// (bank/sub-array conflict pressure).
    pub inlane_pressure_pct: u32,
    /// Cross-lane demand over interconnect capacity per II, in percent.
    pub crosslane_pressure_pct: u32,
    /// Per-stream breakdown, in slot order.
    pub streams: Vec<StreamCost>,
}

/// The whole-program static cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-invocation costs, in program order.
    pub kernels: Vec<KernelCost>,
    /// Σ kernel floors (kernels serialize on the single sequencer).
    pub kernel_floor: u64,
    /// Total memory demand in words, across all memory ops.
    pub mem_words: u64,
    /// Cycles the memory system alone needs for `mem_words`.
    pub mem_floor: u64,
    /// Sound program cycle lower bound:
    /// `max(kernel_floor, mem_floor)` (memory overlaps kernels).
    pub cycle_floor: u64,
}

fn kind_str(kind: StreamKind) -> &'static str {
    match kind {
        StreamKind::SeqIn => "seq-in",
        StreamKind::SeqOut => "seq-out",
        StreamKind::CondIn => "cond-in",
        StreamKind::CondOut => "cond-out",
        StreamKind::CondLaneIn => "cond-lane-in",
        StreamKind::IdxInRead => "idx-in-read",
        StreamKind::IdxInWrite => "idx-in-write",
        StreamKind::IdxCrossRead => "idx-cross-read",
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    if b == 0 {
        0
    } else {
        a.div_ceil(b)
    }
}

/// Peak address-FIFO (records) and stream-buffer (words) occupancy bounds
/// for one indexed read stream, by replaying the schedule's address pushes
/// and data pops (same event model as the V501 deadlock check): a pushed
/// record is outstanding until all its `rw` words have been popped, and a
/// serviced-but-unpopped word sits in the stream buffer.
fn occupancy_bounds(
    kernel: &Kernel,
    schedule: &Schedule,
    slot: StreamSlot,
    rw: u64,
    iters: u64,
    (fifo_cap, buf_cap): (u64, u64),
) -> (u64, u64) {
    let addr_ops = kernel.stream_addr_ops(slot);
    let data_ops = kernel.stream_data_ops(slot);
    if addr_ops.is_empty() {
        return (0, 0);
    }
    let window = fifo_cap + buf_cap + 2 * schedule.stages() as u64 + 8;
    let sim_iters = iters.min(window);
    let mut events: Vec<(u64, bool)> = Vec::new();
    for j in 0..sim_iters {
        for &a in &addr_ops {
            events.push((schedule.slots[a] as u64 + j * schedule.ii as u64, true));
        }
        for &r in &data_ops {
            events.push((schedule.slots[r] as u64 + j * schedule.ii as u64, false));
        }
    }
    events.sort_unstable();
    let (mut pushed, mut popped) = (0u64, 0u64);
    let (mut fifo_peak, mut buf_peak) = (0u64, 0u64);
    for (_, is_push) in events {
        if is_push {
            pushed += 1;
        } else {
            popped += 1;
        }
        // Records not yet fully consumed are outstanding somewhere in the
        // FIFO + buffer; words serviced ahead of their pop sit buffered.
        let outstanding = pushed.saturating_sub(popped / rw.max(1));
        fifo_peak = fifo_peak.max(outstanding.min(fifo_cap));
        buf_peak = buf_peak.max((pushed * rw).saturating_sub(popped).min(buf_cap));
    }
    (fifo_peak, buf_peak)
}

fn kernel_cost(cfg: &MachineConfig, prog_op: usize, op: &ProgOp) -> Option<KernelCost> {
    let ProgOp::Kernel {
        kernel,
        schedule,
        bindings,
        iters,
    } = op
    else {
        return None;
    };
    let lanes = cfg.lanes as u64;
    let m = cfg.srf.words_per_seq_access.max(1) as u64;
    let ii = schedule.ii.max(1) as u64;
    let (fifo_cap, buf_cap) = (
        cfg.srf
            .indexed
            .as_ref()
            .map_or(0, |i| i.addr_fifo_entries as u64),
        cfg.srf.stream_buffer_words as u64,
    );

    let mut streams = Vec::with_capacity(kernel.streams.len());
    let mut seq_grants = 0u64;
    // (accesses per lane over the run, per-iteration count) per group.
    let mut inlane: Vec<u64> = Vec::new();
    let mut cross: Vec<u64> = Vec::new();
    let (mut inlane_per_iter, mut cross_per_iter) = (0u64, 0u64);
    for (si, decl) in kernel.streams.iter().enumerate() {
        let slot = StreamSlot(si as u8);
        // Indexed streams make one SRF access per *address* issued (IdxAddr
        // for reads, IdxWrite for writes — both address-port ops);
        // sequential/conditional streams move one word per data-port op.
        let n = if decl.kind.is_indexed() {
            kernel.stream_addr_ops(slot).len() as u64
        } else {
            kernel.stream_data_ops(slot).len() as u64
        };
        let apl = iters * n;
        let mut sc = StreamCost {
            name: decl.name.clone(),
            kind: kind_str(decl.kind),
            accesses_per_lane: apl,
            port_grants: 0,
            service_floor: 0,
            pressure_pct: 0,
            addr_fifo_peak: 0,
            buffer_peak: 0,
        };
        match decl.kind {
            StreamKind::SeqIn | StreamKind::SeqOut => {
                sc.port_grants = div_ceil(apl, m);
                seq_grants += sc.port_grants;
                sc.pressure_pct = (100 * n / (ii * m)).min(u32::MAX as u64) as u32;
            }
            StreamKind::CondIn | StreamKind::CondOut | StreamKind::CondLaneIn => {
                // Word count is data-dependent: floor at zero grants, but
                // report the maximum demand as pressure.
                sc.pressure_pct = (100 * n / (ii * m)).min(u32::MAX as u64) as u32;
            }
            StreamKind::IdxInRead | StreamKind::IdxInWrite => {
                sc.service_floor = apl;
                sc.pressure_pct = (100 * n / ii).min(u32::MAX as u64) as u32;
                inlane.push(apl);
                inlane_per_iter += n;
            }
            StreamKind::IdxCrossRead => {
                sc.service_floor = apl;
                sc.pressure_pct = (100 * n / ii).min(u32::MAX as u64) as u32;
                cross.push(apl);
                cross_per_iter += n;
            }
        }
        if matches!(decl.kind, StreamKind::IdxInRead | StreamKind::IdxCrossRead) {
            let rw = bindings[si].record_words.max(1) as u64;
            let (fp, bp) =
                occupancy_bounds(kernel, schedule, slot, rw, *iters, (fifo_cap, buf_cap));
            sc.addr_fifo_peak = fp;
            sc.buffer_peak = bp;
        }
        streams.push(sc);
    }

    let idx = cfg.srf.indexed.as_ref();
    let w_in = idx.map_or(1, |i| i.inlane_words_per_cycle.max(1)) as u64;
    let w_cross = idx.map_or(1, |i| i.crosslane_words_per_cycle.max(1)) as u64;
    let ports = idx.map_or(1, |i| i.network_ports_per_bank.max(1)) as u64;
    let topo_budget = idx.map_or(1, |i| {
        isrf_sim::topology_issue_budget(i.crosslane_topology, cfg.lanes).max(1) as u64
    });

    let inlane_floor = inlane
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(div_ceil(inlane.iter().sum::<u64>(), w_in));
    let cross_sum: u64 = cross.iter().sum();
    // Per-lane issue width, global topology budget, and per-bank network
    // ports each cap a cross-lane service cycle independently.
    let cross_floor = cross
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(div_ceil(cross_sum, w_cross))
        .max(div_ceil(cross_sum * lanes, topo_budget))
        .max(div_ceil(cross_sum, ports));
    // In-lane and cross-lane streams are serviced in the same indexed
    // cycle: the groups overlap, so take the max, not the sum.
    let idx_floor = inlane_floor.max(cross_floor);

    let dispatch = cfg.kernel_dispatch_cycles as u64;
    let schedule_floor = if *iters == 0 {
        0
    } else {
        (iters - 1) * ii + schedule.completion as u64 + 1
    };
    let port_floor = seq_grants + idx_floor;
    let floor = if *iters == 0 {
        0
    } else {
        dispatch + schedule_floor.max(port_floor)
    };
    Some(KernelCost {
        name: kernel.name.clone(),
        prog_op,
        iters: *iters,
        ii: schedule.ii,
        dispatch_cycles: dispatch,
        schedule_floor,
        port_floor,
        floor,
        inlane_pressure_pct: (100 * inlane_per_iter / (ii * w_in)).min(u32::MAX as u64) as u32,
        crosslane_pressure_pct: {
            let cap = topo_budget.min(ports * lanes).min(w_cross * lanes).max(1);
            (100 * cross_per_iter * lanes / (ii * cap)).min(u32::MAX as u64) as u32
        },
        streams,
    })
}

/// Minimum DRAM credit a non-cacheable transfer of `p` is charged: one
/// `burst_words` deduction per burst *opening*, walking the pattern in
/// stream order (the channel tracks only the most recent burst per
/// transfer, so revisiting a burst after leaving it pays again).
fn burst_charge(p: &AddrPattern, burst_words: u64) -> u64 {
    let n = p.len();
    if n == 0 {
        return 0;
    }
    let mut openings = 1u64;
    let mut last = u64::from(p.addr_at(0)) / burst_words;
    for i in 1..n {
        let b = u64::from(p.addr_at(i)) / burst_words;
        if b != last {
            openings += 1;
            last = b;
        }
    }
    openings * burst_words
}

/// Compute the static cost model for `program` on `cfg`.
pub fn cost_model(cfg: &MachineConfig, program: &StreamProgram) -> CostModel {
    let mut kernels = Vec::new();
    let mut mem_words = 0u64;
    let burst = u64::from(cfg.dram.burst_words.max(1));
    let has_cache = cfg.cache.is_some();
    // Minimum credit charged per channel (see module docs).
    let mut dram_charge = 0u64;
    let mut cache_words = 0u64;
    for i in 0..program.len() {
        let (op, _) = program.node(i);
        match op {
            ProgOp::Load {
                pattern, cacheable, ..
            }
            | ProgOp::Store {
                pattern, cacheable, ..
            } => {
                let w = pattern.len() as u64;
                mem_words += w;
                if *cacheable && has_cache {
                    cache_words += w;
                } else {
                    dram_charge += burst_charge(pattern, burst);
                }
            }
            ProgOp::GatherDyn {
                index_stream,
                cacheable,
                ..
            }
            | ProgOp::ScatterDyn {
                index_stream,
                cacheable,
                ..
            } => {
                let w = index_stream.words() as u64;
                mem_words += w;
                if *cacheable && has_cache {
                    cache_words += w;
                } else if w > 0 {
                    // Index values are dynamic: every address could land in
                    // one burst, so the provable minimum is one opening.
                    dram_charge += burst;
                }
            }
            ProgOp::Kernel { .. } => {
                if let Some(kc) = kernel_cost(cfg, i, op) {
                    kernels.push(kc);
                }
            }
        }
    }
    let kernel_floor: u64 = kernels.iter().map(|k| k.floor).sum();
    // Per-channel floors: charge over peak refill rate, rounded UP to
    // milli-words/cycle so integer division keeps the bound an
    // underestimate. Credits may go briefly negative (a serve is gated on
    // `credit > 0` *before* the deduction, and a cacheable miss with
    // writeback deducts two line fills at once), so subtract the largest
    // possible end-of-run debt from the demand first.
    let line = cfg.cache.as_ref().map_or(0, |c| c.line_words as u64);
    let dram_debt = 2 * burst.max(line);
    let dram_rate_milli = ((cfg.dram.words_per_cycle(cfg.clock_ghz) * 1000.0).ceil() as u64).max(1);
    let dram_floor = dram_charge.saturating_sub(dram_debt) * 1000 / dram_rate_milli;
    let cache_floor = cfg.cache.as_ref().map_or(0, |c| {
        let rate_milli = ((c.words_per_cycle(cfg.clock_ghz) * 1000.0).ceil() as u64).max(1);
        cache_words.saturating_sub(1) * 1000 / rate_milli
    });
    let mem_floor = dram_floor.max(cache_floor);
    CostModel {
        kernels,
        kernel_floor,
        mem_words,
        mem_floor,
        cycle_floor: kernel_floor.max(mem_floor),
    }
}
