//! Figure and table regeneration for the HPCA 2004 indexed-SRF paper.
//!
//! Every evaluation artifact of the paper has a generator here returning
//! structured data; the `figures` binary renders them as text tables, and
//! the Criterion benches time the underlying simulations. See DESIGN.md
//! for the experiment index and EXPERIMENTS.md for paper-vs-measured
//! numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use isrf_apps::common::set_separation_override;
use isrf_apps::{fft2d, filter, igraph, micro, rijndael, sort};
use isrf_check::run_parallel;
use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::stats::RunStats;
use isrf_kernel::ir::Kernel;
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_sram::{AreaModel, EnergyModel, SrfGeometry, SrfVariant};

pub mod perf;

/// The application benchmarks of Section 5.2, in the paper's figure order.
pub const BENCHMARKS: [&str; 8] = [
    "FFT 2D", "Rijndael", "Sort", "Filter", "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
];

pub use isrf_apps::{prepare_app, Profile};

/// The distinct applications, re-exported from the
/// [`isrf_apps::registry`] under the name the differential suite and the
/// trace/verify binaries historically used.
pub const DIFF_APPS: [&str; 8] = isrf_apps::APPS;

/// Run one named benchmark on one configuration.
///
/// # Panics
///
/// Panics on an unknown benchmark name or a functional-verification
/// failure inside the benchmark (they all self-check).
pub fn run_benchmark(name: &str, cfg: ConfigName, profile: Profile) -> RunStats {
    let small = profile == Profile::Small;
    match name {
        "FFT 2D" => fft2d::run(
            cfg,
            &fft2d::Fft2dParams {
                reps: if small { 1 } else { 2 },
                ..Default::default()
            },
        ),
        "Rijndael" => rijndael::run(
            cfg,
            &rijndael::RijndaelParams {
                chains_per_lane: if small { 2 } else { 8 },
                waves: if small { 2 } else { 4 },
                strips: if small { 2 } else { 4 },
                ..Default::default()
            },
        ),
        "Sort" => sort::run(
            cfg,
            &sort::SortParams {
                keys_per_lane: if small { 64 } else { 512 },
                ..Default::default()
            },
        ),
        "Filter" => filter::run(
            cfg,
            &filter::FilterParams {
                rows: if small { 32 } else { 256 },
                ..Default::default()
            },
        ),
        ig => {
            let mut ds = igraph::dataset(ig);
            if small {
                // Shrink the graph, keeping strip structure intact.
                ds.nodes /= if ds.degree == 4 { 4 } else { 2 };
            }
            igraph::run(cfg, &ds)
        }
    }
}

/// Figure 11: off-chip memory traffic of ISRF and Cache normalized to Base.
///
/// All benchmark × config points run concurrently via the sweep driver;
/// results are grouped back per benchmark in input order, so the output is
/// identical to a serial sweep.
pub fn fig11(profile: Profile) -> Vec<(String, f64, f64)> {
    const CFGS: [ConfigName; 3] = [ConfigName::Base, ConfigName::Isrf4, ConfigName::Cache];
    let points: Vec<(&str, ConfigName)> = BENCHMARKS
        .iter()
        .flat_map(|&name| CFGS.iter().map(move |&cfg| (name, cfg)))
        .collect();
    let stats = run_parallel(&points, |&(name, cfg)| run_benchmark(name, cfg, profile));
    BENCHMARKS
        .iter()
        .zip(stats.chunks_exact(CFGS.len()))
        .map(|(&name, s)| {
            let (base, isrf, cache) = (&s[0], &s[1], &s[2]);
            (
                name.to_string(),
                isrf.mem.normalized_to(&base.mem),
                cache.mem.normalized_to(&base.mem),
            )
        })
        .collect()
}

/// One Figure 12 row: a config's execution-time breakdown normalized to
/// its benchmark's Base total.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Machine configuration.
    pub config: ConfigName,
    /// `[kernel loop, memory stall, SRF stall, overheads]`, as fractions
    /// of the Base configuration's total cycles.
    pub parts: [f64; 4],
    /// Absolute cycle count of this config's run.
    pub cycles: u64,
    /// The un-normalized breakdown, same component order as `parts`.
    pub raw: [u64; 4],
    /// Off-chip bytes moved (reads + writes).
    pub mem_bytes: u64,
}

impl Fig12Row {
    /// Total normalized execution time.
    pub fn total(&self) -> f64 {
        self.parts.iter().sum()
    }
}

/// Figure 12: execution-time breakdowns for all benchmarks and configs,
/// with every benchmark × config point simulated concurrently.
pub fn fig12(profile: Profile) -> Vec<Fig12Row> {
    let points: Vec<(&str, ConfigName)> = BENCHMARKS
        .iter()
        .flat_map(|&name| ConfigName::ALL.iter().map(move |&cfg| (name, cfg)))
        .collect();
    let stats = run_parallel(&points, |&(name, cfg)| run_benchmark(name, cfg, profile));
    let mut rows = Vec::new();
    for (group, per_cfg) in BENCHMARKS
        .iter()
        .zip(stats.chunks_exact(ConfigName::ALL.len()))
    {
        let base = per_cfg[ConfigName::ALL
            .iter()
            .position(|&c| c == ConfigName::Base)
            .expect("Base is a config")];
        let d = base.cycles.max(1) as f64;
        for (&cfg, stats) in ConfigName::ALL.iter().zip(per_cfg) {
            let b = stats.breakdown;
            rows.push(Fig12Row {
                benchmark: group.to_string(),
                config: cfg,
                parts: [
                    b.kernel_loop as f64 / d,
                    b.mem_stall as f64 / d,
                    b.srf_stall as f64 / d,
                    b.overhead as f64 / d,
                ],
                cycles: stats.cycles,
                raw: [b.kernel_loop, b.mem_stall, b.srf_stall, b.overhead],
                mem_bytes: stats.mem.total(),
            });
        }
    }
    rows
}

/// Figure 13: sustained SRF bandwidth demands (words/cycle/lane) per
/// benchmark on ISRF4, split `[sequential, cross-lane, in-lane]`.
pub fn fig13(profile: Profile) -> Vec<(String, [f64; 3])> {
    run_parallel(&BENCHMARKS, |&name| {
        let s = run_benchmark(name, ConfigName::Isrf4, profile);
        (
            name.to_string(),
            s.srf.per_cycle_per_lane(s.main_loop_cycles, 8),
        )
    })
}

/// The kernels of the Figure 14–16 studies, by paper name.
fn study_kernel(name: &str) -> Kernel {
    let rk = isrf_apps::aes::key_expansion(&isrf_apps::aes::FIPS_KEY);
    match name {
        "FFT2D" => fft2d::build_bf_idx_kernel(8),
        "Rijndael" => rijndael::build_isrf_kernel(&rk, 1),
        "Sort1" => sort::sort1_kernel(),
        "Sort2" => sort::sort2_kernel(),
        "Filter" => filter::build_isrf_kernel(),
        "IGraph1" => igraph::build_kernel(&igraph::dataset("IG_DMS"), true),
        "IGraph2" => igraph::build_kernel(&igraph::dataset("IG_DCS"), true),
        _ => panic!("unknown study kernel {name}"),
    }
}

/// The in-lane kernels of Figures 14/15.
pub const INLANE_KERNELS: [&str; 5] = ["FFT2D", "Rijndael", "Sort1", "Sort2", "Filter"];
/// The cross-lane kernels of Figures 14/16.
pub const CROSSLANE_KERNELS: [&str; 2] = ["IGraph1", "IGraph2"];

/// Figure 14: static schedule length (II) of each kernel's inner loop as
/// the address/data separation grows, normalized to the shortest
/// separation. Returns `(kernel, Vec<(separation, normalized II)>)`.
pub fn fig14() -> Vec<(String, Vec<(u32, f64)>)> {
    let base = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4));
    let mut out = Vec::new();
    for &name in INLANE_KERNELS.iter().chain(CROSSLANE_KERNELS.iter()) {
        let k = study_kernel(name);
        let cross = CROSSLANE_KERNELS.contains(&name);
        let seps: Vec<u32> = if cross {
            (2..=24).step_by(2).collect()
        } else {
            (2..=10).collect()
        };
        let mut pts = Vec::new();
        let mut first = None;
        for &sep in &seps {
            let p = if cross {
                base.clone().with_separations(6, sep)
            } else {
                base.clone().with_separations(sep, 20)
            };
            let ii = schedule(&k, &p).expect("study kernels schedule").ii as f64;
            let f = *first.get_or_insert(ii);
            pts.push((sep, ii / f));
        }
        out.push((name.to_string(), pts));
    }
    out
}

/// Figure 15: execution time of the in-lane-indexed benchmarks as the
/// in-lane separation sweeps, normalized to each benchmark's minimum.
/// Returns `(benchmark, Vec<(separation, normalized cycles)>)`.
pub fn fig15(profile: Profile) -> Vec<(String, Vec<(u32, f64)>)> {
    separation_sweep(
        &["FFT 2D", "Rijndael", "Sort", "Filter"],
        &(2..=10u32).step_by(2).collect::<Vec<_>>(),
        |sep| (sep, 20),
        profile,
    )
}

/// Figure 16: execution time of the cross-lane-indexed benchmarks as the
/// cross-lane separation sweeps, normalized to each benchmark's minimum.
pub fn fig16(profile: Profile) -> Vec<(String, Vec<(u32, f64)>)> {
    separation_sweep(
        &["IG_DMS", "IG_DCS"],
        &(4..=28u32).step_by(4).collect::<Vec<_>>(),
        |sep| (6, sep),
        profile,
    )
}

/// Shared driver for the Figure 15/16 separation sweeps: every
/// (benchmark, separation) point is its own parallel work item. The
/// address/data separation override is thread-local, so each worker sets
/// it just for its point and clears it before returning the stats.
fn separation_sweep(
    names: &[&str],
    seps: &[u32],
    over: impl Fn(u32) -> (u32, u32) + Sync,
    profile: Profile,
) -> Vec<(String, Vec<(u32, f64)>)> {
    let points: Vec<(&str, u32)> = names
        .iter()
        .flat_map(|&name| seps.iter().map(move |&sep| (name, sep)))
        .collect();
    let cycles = run_parallel(&points, |&(name, sep)| {
        set_separation_override(Some(over(sep)));
        let s = run_benchmark(name, ConfigName::Isrf4, profile);
        set_separation_override(None);
        s.cycles as f64
    });
    names
        .iter()
        .zip(cycles.chunks_exact(seps.len()))
        .map(|(&name, c)| {
            let min = c.iter().copied().fold(f64::MAX, f64::min);
            (
                name.to_string(),
                seps.iter().zip(c).map(|(&s, &cy)| (s, cy / min)).collect(),
            )
        })
        .collect()
}

/// Figure 17: in-lane indexed throughput vs sub-arrays and FIFO depth.
/// Returns `(subarrays, Vec<(fifo, words/cycle/lane)>)`.
pub fn fig17(cycles: u64) -> Vec<(usize, Vec<(usize, f64)>)> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&s| {
            let pts = [1usize, 2, 4, 6, 8]
                .iter()
                .map(|&f| (f, micro::inlane_throughput(s, f, 8, cycles)))
                .collect();
            (s, pts)
        })
        .collect()
}

/// Figure 18: cross-lane throughput vs network ports per bank and
/// inter-cluster communication occupancy.
/// Returns `(ports, Vec<(occupancy%, words/cycle/lane)>)`.
pub fn fig18(cycles: u64) -> Vec<(usize, Vec<(u32, f64)>)> {
    [1usize, 2, 4]
        .iter()
        .map(|&ports| {
            let pts = (0..=80u32)
                .step_by(10)
                .map(|c| (c, micro::crosslane_throughput(ports, c, cycles)))
                .collect();
            (ports, pts)
        })
        .collect()
}

/// Section 4.6 area results: `(variant, SRF overhead, die overhead)`.
pub fn area_table() -> Vec<(SrfVariant, f64, f64)> {
    let model = AreaModel::default();
    let geom = SrfGeometry::paper_default();
    SrfVariant::ALL
        .iter()
        .skip(1) // sequential is the baseline
        .map(|&v| {
            (
                v,
                model.overhead_vs_sequential(&geom, v),
                model.die_overhead(&geom, v),
            )
        })
        .collect()
}

/// Section 4.5 energy results in nJ: sequential word, in-lane indexed
/// word, cross-lane indexed word, DRAM access.
pub fn energy_table() -> (f64, f64, f64, f64) {
    let m = EnergyModel::default();
    let g = SrfGeometry::paper_default();
    (
        m.seq_word_nj(&g),
        m.indexed_word_nj(&g),
        m.crosslane_word_nj(&g),
        m.dram_access_nj(),
    )
}

/// Headline summary: per benchmark, ISRF4 speedup over Base, traffic
/// reduction (Section 1's 1.03x–4.1x and up-to-95% claims), and the
/// data-movement energy ratio implied by the Section 4.5 model.
pub fn summary(profile: Profile) -> Vec<(String, f64, f64, f64)> {
    let em = EnergyModel::default();
    let geom = SrfGeometry::paper_default();
    run_parallel(&BENCHMARKS, |&name| {
        let base = run_benchmark(name, ConfigName::Base, profile);
        let isrf = run_benchmark(name, ConfigName::Isrf4, profile);
        (
            name.to_string(),
            isrf.speedup_over(&base),
            1.0 - isrf.mem.normalized_to(&base.mem),
            em.run_energy_nj(&geom, &isrf) / em.run_energy_nj(&geom, &base).max(1e-9),
        )
    })
}

/// Render a list of JSON objects (already-rendered `"key": value` field
/// strings per row) as a pretty-printed JSON array.
fn json_array(rows: Vec<Vec<String>>) -> String {
    let body: Vec<String> = rows
        .into_iter()
        .map(|fields| format!("  {{{}}}", fields.join(", ")))
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

fn json_str(name: &str, v: &str) -> String {
    format!("\"{name}\": \"{}\"", isrf_trace::json::escaped(v))
}

fn json_f64(name: &str, v: f64) -> String {
    // Finite by construction; fixed precision keeps output diff-stable.
    format!("\"{name}\": {v:.6}")
}

fn json_u64(name: &str, v: u64) -> String {
    format!("\"{name}\": {v}")
}

/// Figure 11 rows as machine-readable JSON.
pub fn fig11_json(rows: &[(String, f64, f64)]) -> String {
    json_array(
        rows.iter()
            .map(|(name, isrf, cache)| {
                vec![
                    json_str("benchmark", name),
                    json_f64("isrf", *isrf),
                    json_f64("cache", *cache),
                ]
            })
            .collect(),
    )
}

/// Figure 12 rows as machine-readable JSON, including the absolute cycle
/// counts and raw breakdown behind the normalized fractions.
pub fn fig12_json(rows: &[Fig12Row]) -> String {
    json_array(
        rows.iter()
            .map(|r| {
                vec![
                    json_str("benchmark", &r.benchmark),
                    json_str("config", &r.config.to_string()),
                    json_f64("kernel_loop", r.parts[0]),
                    json_f64("mem_stall", r.parts[1]),
                    json_f64("srf_stall", r.parts[2]),
                    json_f64("overhead", r.parts[3]),
                    json_f64("total", r.total()),
                    json_u64("cycles", r.cycles),
                    json_u64("raw_kernel_loop", r.raw[0]),
                    json_u64("raw_mem_stall", r.raw[1]),
                    json_u64("raw_srf_stall", r.raw[2]),
                    json_u64("raw_overhead", r.raw[3]),
                    json_u64("mem_bytes", r.mem_bytes),
                ]
            })
            .collect(),
    )
}

/// Figure 13 rows as machine-readable JSON.
pub fn fig13_json(rows: &[(String, [f64; 3])]) -> String {
    json_array(
        rows.iter()
            .map(|(name, [seq, xl, inl])| {
                vec![
                    json_str("benchmark", name),
                    json_f64("sequential", *seq),
                    json_f64("crosslane", *xl),
                    json_f64("inlane", *inl),
                ]
            })
            .collect(),
    )
}

/// Headline-summary rows as machine-readable JSON.
pub fn summary_json(rows: &[(String, f64, f64, f64)]) -> String {
    json_array(
        rows.iter()
            .map(|(name, sp, cut, er)| {
                vec![
                    json_str("benchmark", name),
                    json_f64("speedup", *sp),
                    json_f64("traffic_cut", *cut),
                    json_f64("energy_ratio", *er),
                ]
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_shape_matches_paper() {
        let rows = fig11(Profile::Small);
        let get = |n: &str| rows.iter().find(|r| r.0 == n).unwrap().clone();
        // Rijndael and FFT 2D save big; Sort and Filter save nothing.
        assert!(get("Rijndael").1 < 0.15);
        assert!(get("FFT 2D").1 < 0.5);
        assert!((0.9..=1.1).contains(&get("Sort").1));
        assert!((0.85..=1.15).contains(&get("Filter").1));
        for ig in ["IG_SML", "IG_DMS", "IG_DCS", "IG_SCL"] {
            assert!(get(ig).1 < 0.9, "{ig}: {}", get(ig).1);
        }
    }

    #[test]
    fn cache_captures_more_ig_locality_than_isrf() {
        // Section 5.3: "Cache outperforms ISRF in terms of locality
        // capture for the irregular (IG) benchmarks as it is also able to
        // capture inter-strip reuse".
        let rows = fig11(Profile::Small);
        for ig in ["IG_DMS", "IG_DCS"] {
            let (_, isrf, cache) = rows.iter().find(|r| r.0 == ig).unwrap();
            assert!(cache < isrf, "{ig}: cache {cache:.3} vs isrf {isrf:.3}");
        }
    }

    #[test]
    fn fig14_shapes_match_paper() {
        let rows = fig14();
        let get = |n: &str| rows.iter().find(|r| r.0 == n).unwrap().1.clone();
        // Recurrence kernels grow; software-pipelined kernels stay flat.
        let rij = get("Rijndael");
        assert!(rij.last().unwrap().1 > 1.2, "Rijndael grows: {rij:?}");
        let s2 = get("Sort2");
        assert!(s2.last().unwrap().1 > 1.2, "Sort2 grows: {s2:?}");
        let s1 = get("Sort1");
        assert!(
            s1.last().unwrap().1 > 1.05 && s1.last().unwrap().1 < s2.last().unwrap().1,
            "Sort1 grows mildly: {s1:?}"
        );
        for flat in ["FFT2D", "Filter", "IGraph1", "IGraph2"] {
            let pts = get(flat);
            assert!(
                pts.last().unwrap().1 < 1.15,
                "{flat} should stay flat: {pts:?}"
            );
        }
    }

    #[test]
    fn area_and_energy_match_section_4() {
        let area = area_table();
        assert!((0.09..=0.13).contains(&area[0].1), "ISRF1 {:.3}", area[0].1);
        assert!((0.16..=0.20).contains(&area[1].1), "ISRF4 {:.3}", area[1].1);
        assert!((0.20..=0.24).contains(&area[2].1), "XL {:.3}", area[2].1);
        let (seq, inl, _xl, dram) = energy_table();
        assert!((0.08..=0.12).contains(&inl));
        assert!(inl / seq > 2.5);
        assert!(dram / inl > 10.0);
    }
}
