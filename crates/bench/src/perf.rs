//! Simulator-throughput basket behind the `perf` binary and the
//! `machine_hot_loop` / `sweep_throughput` Criterion benches.
//!
//! The basket is a fixed workload — every differential app on every
//! machine configuration, run serially and timed — plus two synthetic
//! points: a single-kernel hot loop with no memory traffic (the pure
//! cycle-loop cost) and the parallel Figure 12 sweep (the end-to-end
//! sweep throughput the ROADMAP cares about). `perf` writes the results
//! to `results/BENCH_perf.json`; `ci.sh --check` compares a fresh run
//! against that committed baseline and fails on a >25% sim-cycles/sec
//! regression (see EXPERIMENTS.md, "Performance").

use std::sync::Arc;
use std::time::Instant;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::ir::{KernelBuilder, StreamKind};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;

use crate::{fig12, json_f64, json_str, json_u64, prepare_app, Profile, DIFF_APPS};

/// The fraction of baseline sim-cycles/sec below which `--check` fails.
pub const REGRESSION_BUDGET: f64 = 0.75;

/// One timed point of the perf basket.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Point name (`app/config`, `machine_hot_loop`, `sweep_throughput`).
    pub name: String,
    /// Cycles simulated by the point.
    pub cycles: u64,
    /// Best-of-`runs` wall time in seconds.
    pub wall_s: f64,
}

impl PerfEntry {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s.max(1e-9)
    }
}

/// A full basket measurement plus its aggregate throughput.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Workload profile the basket ran at.
    pub profile: Profile,
    /// Wall-time repeats per point (best is kept).
    pub runs: u32,
    /// Every timed point.
    pub entries: Vec<PerfEntry>,
    /// Peak resident set size in kB (0 when `/proc` is unavailable).
    pub peak_rss_kb: u64,
}

impl PerfReport {
    /// Total cycles across the serial app × config points.
    pub fn basket_cycles(&self) -> u64 {
        self.serial_entries().map(|e| e.cycles).sum()
    }

    /// Total wall time across the serial app × config points.
    pub fn basket_wall_s(&self) -> f64 {
        self.serial_entries().map(|e| e.wall_s).sum()
    }

    /// The headline number `--check` guards: aggregate sim-cycles/sec
    /// over the serial app × config basket.
    pub fn basket_cycles_per_sec(&self) -> f64 {
        self.basket_cycles() as f64 / self.basket_wall_s().max(1e-9)
    }

    fn serial_entries(&self) -> impl Iterator<Item = &PerfEntry> {
        self.entries.iter().filter(|e| e.name.contains('/'))
    }
}

/// Build the hot-loop point: one modulo-scheduled ALU kernel over
/// SRF-resident streams, zero memory traffic — nothing but the cycle
/// loop, kernel tick, and sequential stream machinery.
///
/// # Panics
///
/// Panics if the preset config or the kernel fails to validate, which
/// would be a bug in this crate.
pub fn hot_loop_prepared() -> (Machine, StreamProgram) {
    let cfg = MachineConfig::preset(ConfigName::Base);
    let lanes = cfg.lanes as u32;
    let iters: u64 = 1024;
    let mut machine = Machine::new(cfg.clone()).expect("preset config is valid");

    let mut b = KernelBuilder::new("hot_loop");
    let s_in = b.stream("in", StreamKind::SeqIn);
    let s_out = b.stream("out", StreamKind::SeqOut);
    let a = b.seq_read(s_in);
    let sq = b.mul(a, a);
    let s1 = b.add(sq, a);
    let s2 = b.mul(s1, s1);
    let s3 = b.add(s2, sq);
    b.seq_write(s_out, s3);
    let kernel = Arc::new(b.build().expect("hot-loop kernel is well-formed"));
    let sched = schedule(&kernel, &SchedParams::from_machine(&cfg)).expect("hot-loop schedules");

    let records = iters as u32 * lanes;
    let input = machine.alloc_stream(1, records);
    let output = machine.alloc_stream(1, records);
    let data: Vec<u32> = (0..records).map(|i| i.wrapping_mul(2654435761)).collect();
    machine.write_stream(&input, &data);

    let mut p = StreamProgram::new();
    p.kernel(kernel, sched, vec![input, output], iters, &[]);
    (machine, p)
}

/// Run the basket: every differential app × config serially (timed one
/// by one), then the hot loop, then the parallel Figure 12 sweep. Each
/// point's wall time is the best of `runs` repeats.
pub fn perf_basket(profile: Profile, runs: u32) -> PerfReport {
    let runs = runs.max(1);
    let mut entries = Vec::new();
    for app in DIFF_APPS {
        for cfg in ConfigName::ALL {
            let mut cycles = 0;
            let mut best = f64::MAX;
            for _ in 0..runs {
                let mut pr = prepare_app(app, cfg, profile);
                let t = Instant::now();
                let stats = pr.machine.run(&pr.program);
                best = best.min(t.elapsed().as_secs_f64());
                cycles = stats.cycles;
            }
            entries.push(PerfEntry {
                name: format!("{app}/{cfg}"),
                cycles,
                wall_s: best,
            });
        }
    }
    entries.push(time_point("machine_hot_loop", runs, || {
        let (mut m, p) = hot_loop_prepared();
        let t = Instant::now();
        let stats = m.run(&p);
        (stats.cycles, t.elapsed().as_secs_f64())
    }));
    entries.push(time_point("sweep_throughput", runs, || {
        let t = Instant::now();
        let rows = fig12(profile);
        let wall = t.elapsed().as_secs_f64();
        (rows.iter().map(|r| r.cycles).sum(), wall)
    }));
    PerfReport {
        profile,
        runs,
        entries,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn time_point(name: &str, runs: u32, mut f: impl FnMut() -> (u64, f64)) -> PerfEntry {
    let mut cycles = 0;
    let mut best = f64::MAX;
    for _ in 0..runs {
        let (c, wall) = f();
        cycles = c;
        best = best.min(wall);
    }
    PerfEntry {
        name: name.to_string(),
        cycles,
        wall_s: best,
    }
}

/// Peak resident set size of this process in kB, from `/proc/self/status`
/// (`VmHWM`); 0 on platforms without procfs.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

/// Render a report as the `results/BENCH_perf.json` document.
pub fn perf_json(r: &PerfReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  {},\n", json_str("schema", "isrf-perf-v1")));
    out.push_str(&format!(
        "  {},\n",
        json_str(
            "profile",
            match r.profile {
                Profile::Small => "small",
                Profile::Paper => "paper",
            }
        )
    ));
    out.push_str(&format!("  {},\n", json_u64("runs", r.runs as u64)));
    out.push_str(&format!("  {},\n", json_u64("peak_rss_kb", r.peak_rss_kb)));
    out.push_str(&format!(
        "  {},\n",
        json_u64("basket_cycles", r.basket_cycles())
    ));
    out.push_str(&format!(
        "  {},\n",
        json_f64("basket_wall_s", r.basket_wall_s())
    ));
    out.push_str(&format!(
        "  {},\n",
        json_f64("basket_cycles_per_sec", r.basket_cycles_per_sec())
    ));
    out.push_str("  \"entries\": [\n");
    let rows: Vec<String> = r
        .entries
        .iter()
        .map(|e| {
            format!(
                "    {{{}, {}, {}, {}}}",
                json_str("name", &e.name),
                json_u64("cycles", e.cycles),
                json_f64("wall_s", e.wall_s),
                json_f64("cycles_per_sec", e.cycles_per_sec())
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extract the `basket_cycles_per_sec` field from a baseline document
/// written by [`perf_json`]. Returns `None` when the field is missing or
/// malformed — callers should treat that as "no usable baseline".
pub fn baseline_cycles_per_sec(json: &str) -> Option<f64> {
    num_after(json, "\"basket_cycles_per_sec\":")
}

/// Extract `(name, cycles, cycles_per_sec)` for every entry of a baseline
/// document written by [`perf_json`], so a failed regression check can
/// print a per-entry delta table. Malformed entries are skipped.
pub fn baseline_entries(json: &str) -> Vec<(String, u64, f64)> {
    let Some(at) = json.find("\"entries\"") else {
        return Vec::new();
    };
    json[at..]
        .split('{')
        .skip(1)
        .filter_map(|seg| {
            let name = str_after(seg, "\"name\":")?;
            let cycles = num_after(seg, "\"cycles\":")? as u64;
            let cps = num_after(seg, "\"cycles_per_sec\":")?;
            Some((name, cycles, cps))
        })
        .collect()
}

/// The JSON number following `key`, if present and well-formed.
fn num_after(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The JSON string following `key` (no escape handling — [`perf_json`]
/// never emits escapes in entry names).
fn str_after(json: &str, key: &str) -> Option<String> {
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_loop_runs_and_produces_cycles() {
        let (mut m, p) = hot_loop_prepared();
        let stats = m.run(&p);
        assert!(stats.cycles > 1024, "hot loop too short: {}", stats.cycles);
        assert_eq!(stats.mem.total(), 0, "hot loop must not touch memory");
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let report = PerfReport {
            profile: Profile::Small,
            runs: 1,
            entries: vec![
                PerfEntry {
                    name: "sort/Base".into(),
                    cycles: 1000,
                    wall_s: 0.5,
                },
                PerfEntry {
                    name: "machine_hot_loop".into(),
                    cycles: 77,
                    wall_s: 0.1,
                },
            ],
            peak_rss_kb: 42,
        };
        let json = perf_json(&report);
        let got = baseline_cycles_per_sec(&json).expect("field present");
        assert!((got - report.basket_cycles_per_sec()).abs() < 1e-6);
        // The aggregate covers only the serial app/config points.
        assert_eq!(report.basket_cycles(), 1000);
        // Per-entry extraction round-trips names, cycles, and rates.
        let entries = baseline_entries(&json);
        assert_eq!(entries.len(), report.entries.len());
        for (got, want) in entries.iter().zip(&report.entries) {
            assert_eq!(got.0, want.name);
            assert_eq!(got.1, want.cycles);
            assert!((got.2 - want.cycles_per_sec()).abs() < 1e-6);
        }
    }
}
