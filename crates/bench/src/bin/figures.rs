//! Regenerate every evaluation figure and table of the paper as text.
//!
//! Usage: `figures [all|table3|table4|area|energy|fig11|fig12|fig13|fig14|
//! fig15|fig16|fig17|fig18|summary] [--paper] [--list]`
//!
//! `--paper` uses the paper's workload sizes (slower); the default uses
//! reduced sizes with the same shapes. `--list` prints the known targets,
//! one per line, and exits. The benchmark-driven figures (11, 12, 13,
//! summary) additionally write machine-readable JSON next to the text
//! tables, under `results/bench_<fig>.json`.

use isrf_bench as figs;
use isrf_bench::Profile;
use isrf_core::config::{ConfigName, MachineConfig};

fn profile(args: &[String]) -> Profile {
    if args.iter().any(|a| a == "--paper") {
        Profile::Paper
    } else {
        Profile::Small
    }
}

/// Write a figure's JSON rendering to `results/bench_<fig>.json`.
fn write_json(fig: &str, json: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("bench_{fig}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn table3() {
    println!("== Table 3: machine parameters ==");
    for name in ConfigName::ALL {
        let m = MachineConfig::preset(name);
        print!(
            "{name:<6} lanes={} clock={} GHz peak={} GFLOPs SRF={} KB seq-bw={} w/c",
            m.lanes,
            m.clock_ghz,
            m.peak_gflops(),
            m.srf.capacity_bytes / 1024,
            m.srf.seq_words_per_cycle(m.lanes),
        );
        if let Some(i) = &m.srf.indexed {
            print!(
                " | idx: inlane={}w/c xl={}w/c lat={}/{} fifo={}",
                i.inlane_words_per_cycle,
                i.crosslane_words_per_cycle,
                i.inlane_latency,
                i.crosslane_latency,
                i.addr_fifo_entries
            );
        }
        if let Some(c) = &m.cache {
            print!(
                " | cache: {} KB {}-way {} banks {}w lines",
                c.capacity_bytes / 1024,
                c.associativity,
                c.banks,
                c.line_words
            );
        }
        println!();
    }
}

fn table4() {
    println!("== Table 4: IG dataset parameters ==");
    println!(
        "{:<8} {:>6} {:>7} {:>7} {:>16} {:>16}",
        "dataset", "FP/nbr", "degree", "nodes", "base strip(nbrs)", "isrf strip(nbrs)"
    );
    for ds in &isrf_apps::igraph::DATASETS {
        println!(
            "{:<8} {:>6} {:>7} {:>7} {:>16} {:>16}",
            ds.name,
            ds.fp_ops,
            ds.degree,
            ds.nodes,
            ds.base_strip_nodes * ds.degree,
            ds.isrf_strip_nodes * ds.degree,
        );
    }
}

fn area() {
    println!("== Section 4.6: SRF area overheads (paper: 11% / 18% / 22%) ==");
    for (v, srf, die) in figs::area_table() {
        println!("{v:?}: SRF +{:.1}%  die +{:.2}%", srf * 100.0, die * 100.0);
    }
}

fn energy() {
    let (seq, inl, xl, dram) = figs::energy_table();
    println!("== Section 4.5: access energy (paper: ~0.1 nJ indexed, ~4x seq, ~5 nJ DRAM) ==");
    println!("sequential word  {seq:.4} nJ");
    println!(
        "in-lane indexed  {inl:.4} nJ ({:.1}x sequential)",
        inl / seq
    );
    println!("cross-lane       {xl:.4} nJ");
    println!("DRAM access      {dram:.2} nJ ({:.0}x indexed)", dram / inl);
}

fn fig11(p: Profile) {
    println!("== Figure 11: off-chip traffic normalized to Base ==");
    println!("{:<10} {:>8} {:>8}", "benchmark", "ISRF", "Cache");
    let rows = figs::fig11(p);
    for (name, isrf, cache) in &rows {
        println!("{name:<10} {isrf:>8.3} {cache:>8.3}");
    }
    write_json("fig11", &figs::fig11_json(&rows));
}

fn fig12(p: Profile) {
    println!("== Figure 12: execution time normalized to Base ==");
    println!(
        "{:<10} {:<6} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "config", "loop", "mem", "srf", "ovh", "total"
    );
    let rows = figs::fig12(p);
    for r in &rows {
        println!(
            "{:<10} {:<6} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            r.benchmark,
            r.config.to_string(),
            r.parts[0],
            r.parts[1],
            r.parts[2],
            r.parts[3],
            r.total()
        );
    }
    write_json("fig12", &figs::fig12_json(&rows));
}

fn fig13(p: Profile) {
    println!("== Figure 13: sustained SRF bandwidth on ISRF4 (words/cycle/lane) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>8}",
        "benchmark", "sequential", "cross-lane", "in-lane", "total"
    );
    let rows = figs::fig13(p);
    for (name, [seq, xl, inl]) in &rows {
        println!(
            "{name:<10} {seq:>10.3} {xl:>10.3} {inl:>10.3} {:>8.3}",
            seq + xl + inl
        );
    }
    write_json("fig13", &figs::fig13_json(&rows));
}

fn sweep_table(rows: &[(String, Vec<(u32, f64)>)]) {
    for (name, pts) in rows {
        print!("{name:<10}");
        for (x, y) in pts {
            print!(" {x:>2}:{y:<5.2}");
        }
        println!();
    }
}

fn fig14() {
    println!("== Figure 14: static schedule length vs address/data separation (normalized) ==");
    sweep_table(&figs::fig14());
}

fn fig15(p: Profile) {
    println!("== Figure 15: in-lane benchmark time vs separation (normalized to min) ==");
    sweep_table(&figs::fig15(p));
}

fn fig16(p: Profile) {
    println!("== Figure 16: cross-lane benchmark time vs separation (normalized to min) ==");
    sweep_table(&figs::fig16(p));
}

fn fig17() {
    println!("== Figure 17: in-lane indexed throughput (words/cycle/lane) ==");
    println!("{:<12} FIFO size : throughput", "sub-arrays");
    for (s, pts) in figs::fig17(4000) {
        print!("{s:<12}");
        for (f, t) in pts {
            print!(" {f}:{t:<6.3}");
        }
        println!();
    }
}

fn fig18() {
    println!("== Figure 18: cross-lane throughput vs comm occupancy (words/cycle/lane) ==");
    println!("{:<12} occupancy% : throughput", "ports/bank");
    for (ports, pts) in figs::fig18(4000) {
        print!("{ports:<12}");
        for (c, t) in pts {
            print!(" {c}:{t:<6.3}");
        }
        println!();
    }
}

fn summary(p: Profile) {
    println!("== Headline: ISRF4 vs Base (paper: 1.03x-4.1x speedup, up to 95% traffic cut) ==");
    println!(
        "{:<10} {:>8} {:>12} {:>13}",
        "benchmark", "speedup", "traffic cut", "energy ratio"
    );
    let rows = figs::summary(p);
    for (name, sp, cut, er) in &rows {
        println!("{name:<10} {sp:>7.2}x {:>11.1}% {er:>13.2}", cut * 100.0);
    }
    write_json("summary", &figs::summary_json(&rows));
}

const TARGETS: [&str; 14] = [
    "all", "table3", "table4", "area", "energy", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "summary",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for t in TARGETS {
            println!("{t}");
        }
        return;
    }
    let p = profile(&args);
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    if !TARGETS.contains(&what) {
        eprintln!(
            "unknown target `{what}`; expected one of: {}",
            TARGETS.join(" ")
        );
        std::process::exit(2);
    }
    let all = what == "all";
    if all || what == "table3" {
        table3();
        println!();
    }
    if all || what == "table4" {
        table4();
        println!();
    }
    if all || what == "area" {
        area();
        println!();
    }
    if all || what == "energy" {
        energy();
        println!();
    }
    if all || what == "fig11" {
        fig11(p);
        println!();
    }
    if all || what == "fig12" {
        fig12(p);
        println!();
    }
    if all || what == "fig13" {
        fig13(p);
        println!();
    }
    if all || what == "fig14" {
        fig14();
        println!();
    }
    if all || what == "fig15" {
        fig15(p);
        println!();
    }
    if all || what == "fig16" {
        fig16(p);
        println!();
    }
    if all || what == "fig17" {
        fig17();
        println!();
    }
    if all || what == "fig18" {
        fig18();
        println!();
    }
    if all || what == "summary" {
        summary(p);
    }
}
