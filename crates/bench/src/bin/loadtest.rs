//! `loadtest`: drive the isrf-serve batch server under concurrent load
//! and verify every served result word-for-word against a direct
//! in-process run.
//!
//! ```text
//! loadtest load  [--jobs N] [--clients C] [--workers W] [--out PATH]
//! loadtest smoke --bin PATH/TO/isrf-serve
//! ```
//!
//! `load` starts an in-process server on an ephemeral port, fires `N`
//! jobs from `C` real TCP clients over a mixed app×config basket (unique
//! nonces defeat the result cache so every job simulates), checks each
//! payload against the oracle, then measures the memoized path (repeat
//! submissions of an identical spec) and writes jobs/sec + p50/p99 and
//! the cache speedup to `results/BENCH_serve.json`.
//!
//! `smoke` is the CI stage: it spawns the given `isrf-serve` binary as a
//! child process with a tiny queue, checks the one-shot-vs-served diff,
//! elicits a 429, exercises cancel and the memoized path, and shuts the
//! child down via `POST /shutdown`.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isrf_apps::{prepare_app, Profile};
use isrf_core::config::ConfigName;
use isrf_serve::{Client, Json, Server, ServerConfig};

/// The mixed basket: every registered app on every preset configuration,
/// Small profile.
fn basket() -> Vec<(&'static str, ConfigName)> {
    let mut b = Vec::new();
    for app in isrf_apps::APPS {
        for cfg in ConfigName::ALL {
            b.push((app, cfg));
        }
    }
    b
}

/// Oracle outputs for one basket entry, as `u64` words per output region.
fn oracle(app: &str, cfg: ConfigName) -> (u64, Vec<Vec<u64>>) {
    let mut pr = prepare_app(app, cfg, Profile::Small);
    let stats = pr.machine.run(&pr.program);
    let outs = pr
        .outputs
        .iter()
        .map(|&(base, words)| {
            pr.machine
                .mem()
                .memory()
                .read_block(base, words as usize)
                .into_iter()
                .map(u64::from)
                .collect()
        })
        .collect();
    (stats.cycles, outs)
}

fn result_words(result: &Json) -> Option<(u64, Vec<Vec<u64>>)> {
    let point = result.get("points")?.as_arr()?.first()?;
    let cycles = point.get("cycles")?.as_u64()?;
    let outs = point
        .get("outputs")?
        .as_arr()?
        .iter()
        .map(|o| {
            o.get("words")
                .and_then(Json::as_arr)
                .map(|ws| ws.iter().filter_map(Json::as_u64).collect())
        })
        .collect::<Option<Vec<Vec<u64>>>>()?;
    Some((cycles, outs))
}

fn submit_and_wait(
    client: &mut Client,
    body: &str,
    timeout: Duration,
) -> Result<(Json, Duration), String> {
    let t0 = Instant::now();
    let resp = client.post("/jobs", body).map_err(|e| format!("{e}"))?;
    if resp.status != 200 && resp.status != 202 {
        return Err(format!(
            "submit rejected with {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let id = resp
        .json()?
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("no id in submit response")?;
    let st = client.wait_job(id, timeout).map_err(|e| format!("{e}"))?;
    if st.get("status").and_then(Json::as_str) != Some("done") {
        return Err(format!("job {id} ended as {}", st.render()));
    }
    let resp = client
        .get(&format!("/jobs/{id}/result"))
        .map_err(|e| format!("{e}"))?;
    if resp.status != 200 {
        return Err(format!("result fetch failed with {}", resp.status));
    }
    Ok((resp.json()?, t0.elapsed()))
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

#[allow(clippy::too_many_lines)]
fn load_mode(jobs: usize, clients: usize, workers: usize, out: &str) -> ExitCode {
    let basket = basket();
    eprintln!(
        "loadtest: {jobs} jobs, {clients} clients, {workers} workers, basket of {} points",
        basket.len()
    );

    // Oracle pass (parallel, deterministic): one direct run per basket
    // entry — the reference every served result must match word-for-word.
    let t0 = Instant::now();
    let expected = isrf_check::run_parallel(&basket, |&(app, cfg)| oracle(app, cfg));
    eprintln!(
        "loadtest: oracle pass done in {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap: jobs + clients, // measure throughput, not admission
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Warm the compile memos so the measured phase reflects steady state
    // (the paper server is long-running; cold compiles are a one-time cost).
    {
        let mut c = Client::new(addr);
        for (i, (app, cfg)) in basket.iter().enumerate() {
            let body = format!(r#"{{"app":"{app}","config":"{cfg}","nonce":"warmup-{i}"}}"#);
            submit_and_wait(&mut c, &body, Duration::from_secs(120)).expect("warmup job");
        }
    }

    // Measured phase: C client threads race through N cold jobs.
    let cursor = Arc::new(AtomicUsize::new(0));
    let divergences = Arc::new(AtomicUsize::new(0));
    let wall0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..clients {
        let cursor = Arc::clone(&cursor);
        let divergences = Arc::clone(&divergences);
        let basket = basket.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::new(addr);
            let mut latencies_ms: Vec<f64> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::SeqCst);
                if i >= jobs {
                    return latencies_ms;
                }
                let (app, cfg) = basket[i % basket.len()];
                let body = format!(r#"{{"app":"{app}","config":"{cfg}","nonce":"load-{t}-{i}"}}"#);
                match submit_and_wait(&mut client, &body, Duration::from_secs(300)) {
                    Ok((result, latency)) => {
                        latencies_ms.push(latency.as_secs_f64() * 1e3);
                        let got = result_words(&result);
                        if got.as_ref() != Some(&expected[i % basket.len()]) {
                            eprintln!("loadtest: DIVERGENCE on {app}/{cfg} (job {i})");
                            divergences.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    Err(e) => {
                        eprintln!("loadtest: job {i} failed: {e}");
                        divergences.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }));
    }
    let mut latencies_ms: Vec<f64> = Vec::new();
    for h in handles {
        latencies_ms.extend(h.join().expect("client thread"));
    }
    let wall_s = wall0.elapsed().as_secs_f64();
    let diverged = divergences.load(Ordering::SeqCst);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let jobs_per_sec = jobs as f64 / wall_s;
    let p50 = percentile(&latencies_ms, 0.50);
    let p99 = percentile(&latencies_ms, 0.99);

    // Memoized path: one cold run of a fixed spec, then repeats of the
    // identical spec served from the result cache.
    let mut c = Client::new(addr);
    let memo_body = r#"{"app":"sort","config":"ISRF4","nonce":"memo-bench"}"#;
    let (_, cold) =
        submit_and_wait(&mut c, memo_body, Duration::from_secs(120)).expect("cold memo job");
    let mut warm_ms: Vec<f64> = Vec::new();
    for _ in 0..50 {
        let (result, warm) =
            submit_and_wait(&mut c, memo_body, Duration::from_secs(30)).expect("warm memo job");
        assert_eq!(
            result.get("cached").and_then(Json::as_bool),
            Some(true),
            "repeat submission must be served from cache"
        );
        warm_ms.push(warm.as_secs_f64() * 1e3);
    }
    warm_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let cold_ms = cold.as_secs_f64() * 1e3;
    let warm_p50 = percentile(&warm_ms, 0.50);
    let speedup = cold_ms / warm_p50.max(1e-6);

    server.stop();

    println!("loadtest: {jobs} jobs in {wall_s:.2}s = {jobs_per_sec:.1} jobs/sec");
    println!("loadtest: latency p50 {p50:.1} ms, p99 {p99:.1} ms");
    println!("loadtest: memoized repeat {warm_p50:.2} ms vs cold {cold_ms:.1} ms = {speedup:.0}x");
    println!("loadtest: {diverged} divergences");

    let json = format!(
        "{{\n  \"jobs\": {jobs},\n  \"clients\": {clients},\n  \"workers\": {workers},\n  \
         \"wall_s\": {wall_s:.3},\n  \"jobs_per_sec\": {jobs_per_sec:.1},\n  \
         \"p50_ms\": {p50:.2},\n  \"p99_ms\": {p99:.2},\n  \"divergences\": {diverged},\n  \
         \"memo_cold_ms\": {cold_ms:.2},\n  \"memo_warm_p50_ms\": {warm_p50:.3},\n  \
         \"memo_speedup\": {speedup:.1}\n}}\n"
    );
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(out, json).expect("write report");
    println!("loadtest: wrote {out}");

    if diverged > 0 {
        eprintln!("loadtest: FAIL — served results diverged from direct runs");
        return ExitCode::FAILURE;
    }
    if speedup < 10.0 {
        eprintln!("loadtest: FAIL — memoized path only {speedup:.1}x faster than cold");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Kills and reaps the spawned server on every exit path, so a failed
/// smoke run never leaves a zombie behind.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn smoke_mode(bin: &str) -> ExitCode {
    let tmp = std::env::temp_dir().join(format!("isrf-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create smoke dir");
    let port_file = tmp.join("port");

    // Tiny queue so backpressure is easy to elicit.
    let mut child = std::process::Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-cap",
            "2",
            "--chunk",
            "5000",
            "--port-file",
        ])
        .arg(&port_file)
        .spawn()
        .map(ChildGuard)
        .expect("spawn isrf-serve");

    // Wait for the listener.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr: SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(a) = text.trim().parse() {
                break a;
            }
        }
        if Instant::now() > deadline {
            eprintln!("smoke: server never wrote its port file");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut client = Client::new(addr);

    // 1. Served results match the one-shot path word-for-word.
    for (app, cfg) in [("sort", ConfigName::Isrf4), ("filter", ConfigName::Base)] {
        let body = format!(r#"{{"app":"{app}","config":"{cfg}"}}"#);
        let (result, _) = match submit_and_wait(&mut client, &body, Duration::from_secs(120)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("smoke: {app}/{cfg} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if result_words(&result).as_ref() != Some(&oracle(app, cfg)) {
            eprintln!("smoke: {app}/{cfg} diverged from the one-shot run");
            return ExitCode::FAILURE;
        }
        println!("smoke: {app}/{cfg} matches the one-shot run");
    }

    // 2. Identical resubmission is served from the cache.
    let resp = client
        .post("/jobs", r#"{"app":"sort","config":"ISRF4"}"#)
        .expect("resubmit");
    let cached = resp
        .json()
        .ok()
        .and_then(|v| v.get("cached").and_then(Json::as_bool));
    if resp.status != 200 || cached != Some(true) {
        eprintln!("smoke: resubmission was not served from cache");
        return ExitCode::FAILURE;
    }
    println!("smoke: memoized resubmission served from cache");

    // 3. Flood Paper-profile jobs to trip the queue bound.
    let mut flooded = Vec::new();
    let mut saw_429 = false;
    for i in 0..8 {
        let body = format!(r#"{{"app":"sort","profile":"paper","nonce":"flood-{i}"}}"#);
        let resp = client.post("/jobs", &body).expect("flood submit");
        match resp.status {
            202 => flooded.push(
                resp.json()
                    .unwrap()
                    .get("id")
                    .and_then(Json::as_u64)
                    .unwrap(),
            ),
            429 => {
                if resp.header("retry-after").is_none() {
                    eprintln!("smoke: 429 without Retry-After");
                    return ExitCode::FAILURE;
                }
                saw_429 = true;
            }
            other => {
                eprintln!("smoke: flood submit got {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !saw_429 {
        eprintln!("smoke: queue bound never produced a 429");
        return ExitCode::FAILURE;
    }
    println!("smoke: queue bound produced 429 + Retry-After");

    // 4. Cancel the flood (exercises DELETE mid-run).
    for id in &flooded {
        let resp = client.delete(&format!("/jobs/{id}")).expect("cancel");
        if resp.status != 200 {
            eprintln!("smoke: cancel of job {id} got {}", resp.status);
            return ExitCode::FAILURE;
        }
    }
    println!("smoke: cancelled {} flooded jobs", flooded.len());

    // 5. Clean shutdown via the API; the child must exit 0.
    let resp = client.post("/shutdown", "").expect("shutdown");
    if resp.status != 200 {
        eprintln!("smoke: shutdown got {}", resp.status);
        return ExitCode::FAILURE;
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.0.try_wait().expect("wait on child") {
            Some(status) if status.success() => break,
            Some(status) => {
                eprintln!("smoke: server exited with {status}");
                return ExitCode::FAILURE;
            }
            None if Instant::now() > deadline => {
                eprintln!("smoke: server did not exit after shutdown");
                return ExitCode::FAILURE;
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
    println!("smoke: server drained and exited cleanly");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("loadtest: {msg}");
    eprintln!(
        "usage: loadtest load [--jobs N] [--clients C] [--workers W] [--out PATH]\n\
         \u{20}      loadtest smoke --bin PATH"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("load") | None => {
            let mut jobs = 400;
            let mut clients = 8;
            let mut workers = std::thread::available_parallelism().map_or(4, |n| n.get());
            let mut out = String::from("results/BENCH_serve.json");
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match (a.as_str(), it.next()) {
                    ("--jobs", Some(v)) => match v.parse() {
                        Ok(n) => jobs = n,
                        Err(_) => return usage("--jobs needs a number"),
                    },
                    ("--clients", Some(v)) => match v.parse() {
                        Ok(n) => clients = n,
                        Err(_) => return usage("--clients needs a number"),
                    },
                    ("--workers", Some(v)) => match v.parse() {
                        Ok(n) => workers = n,
                        Err(_) => return usage("--workers needs a number"),
                    },
                    ("--out", Some(v)) => out = v.clone(),
                    (other, _) => return usage(&format!("unknown argument {other}")),
                }
            }
            load_mode(jobs, clients, workers, &out)
        }
        Some("smoke") => {
            let mut bin = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match (a.as_str(), it.next()) {
                    ("--bin", Some(v)) => bin = Some(v.clone()),
                    (other, _) => return usage(&format!("unknown argument {other}")),
                }
            }
            match bin {
                Some(b) => smoke_mode(&b),
                None => usage("smoke needs --bin PATH"),
            }
        }
        Some(other) => usage(&format!("unknown mode {other}")),
    }
}
