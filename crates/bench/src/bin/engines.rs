//! Differential engine check: run benchmark configurations under both
//! kernel-execution engines — the compiled-tape engine and the
//! graph-walking interpreter — and require identical observable behavior:
//! the same `RunStats`, a word-for-word identical recorded trace stream,
//! and identical output memory.
//!
//! Usage: `engines [APP CONFIG]...` — pairs of benchmark app
//! (`fft2d|rijndael|sort|filter|igraph|spmv|stencil|bfs`) and
//! configuration (`Base|ISRF1|ISRF4|Cache`). With no arguments, checks
//! the CI suite: `sort ISRF4` (conditional streams), `filter Base` (the
//! indexed landing path), `spmv ISRF4` (cross-lane gather), `stencil
//! ISRF4` (in-lane halo reuse), and `bfs Base` (irregular frontiers on
//! the replication path).
//!
//! Exits nonzero on any mismatch.

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_sim::ExecEngine;
use isrf_trace::{TraceEvent, Tracer};

fn parse_config(s: &str) -> ConfigName {
    ConfigName::ALL
        .into_iter()
        .find(|c| format!("{c}").eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown configuration {s:?} (expected one of Base|ISRF1|ISRF4|Cache)");
            std::process::exit(2);
        })
}

struct Observed {
    stats: RunStats,
    events: Vec<(u64, TraceEvent)>,
    outputs: Vec<(u32, Vec<Word>)>,
}

fn run(app: &str, cfg: ConfigName, engine: ExecEngine) -> Observed {
    let mut pr = isrf_bench::prepare_app(app, cfg, isrf_bench::Profile::Small);
    pr.machine.set_engine(engine);
    pr.machine.set_tracer(Tracer::recording(1 << 20));
    let stats = pr.machine.run(&pr.program);
    let events = pr
        .machine
        .take_tracer()
        .into_recorder()
        .expect("recording tracer")
        .ring()
        .iter()
        .cloned()
        .collect();
    let outputs = pr
        .outputs
        .iter()
        .map(|&(base, words)| {
            (
                base,
                pr.machine.mem().memory().read_block(base, words as usize),
            )
        })
        .collect();
    Observed {
        stats,
        events,
        outputs,
    }
}

/// Compare one point; prints a verdict line and any mismatch detail.
fn check(app: &str, cfg: ConfigName) -> bool {
    let tape = run(app, cfg, ExecEngine::Tape);
    let interp = run(app, cfg, ExecEngine::Interp);
    let mut ok = true;

    if tape.stats != interp.stats {
        ok = false;
        eprintln!(
            "  stats mismatch:\n    tape:   {:?}\n    interp: {:?}",
            tape.stats, interp.stats
        );
    }
    if tape.events.len() != interp.events.len() {
        ok = false;
        eprintln!(
            "  trace length mismatch: tape {} events, interp {}",
            tape.events.len(),
            interp.events.len()
        );
    }
    for (i, (t, r)) in tape.events.iter().zip(&interp.events).enumerate() {
        if t != r {
            ok = false;
            eprintln!("  trace diverges at event {i}:\n    tape:   {t:?}\n    interp: {r:?}");
            break;
        }
    }
    for ((base, t), (_, r)) in tape.outputs.iter().zip(&interp.outputs) {
        if let Some(i) = (0..t.len()).find(|&i| t[i] != r[i]) {
            ok = false;
            eprintln!(
                "  output memory diverges at {:#x}: tape {:#010x}, interp {:#010x}",
                base + i as u32,
                t[i],
                r[i]
            );
        }
    }
    println!(
        "{} {:<8} {:<6} {:>9} cycles, {:>7} events, {} output words",
        if ok { "PASS" } else { "FAIL" },
        app,
        format!("{cfg}"),
        tape.stats.cycles,
        tape.events.len(),
        tape.outputs.iter().map(|(_, w)| w.len()).sum::<usize>(),
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let points: Vec<(String, ConfigName)> = if args.is_empty() {
        vec![
            ("sort".into(), ConfigName::Isrf4),
            ("filter".into(), ConfigName::Base),
            ("spmv".into(), ConfigName::Isrf4),
            ("stencil".into(), ConfigName::Isrf4),
            ("bfs".into(), ConfigName::Base),
        ]
    } else {
        if !args.len().is_multiple_of(2) {
            eprintln!("usage: engines [APP CONFIG]...");
            std::process::exit(2);
        }
        args.chunks(2)
            .map(|p| (p[0].clone(), parse_config(&p[1])))
            .collect()
    };
    let mut all_ok = true;
    for (app, cfg) in &points {
        all_ok &= check(app, *cfg);
    }
    if !all_ok {
        eprintln!("engine differential FAILED");
        std::process::exit(1);
    }
    println!(
        "engine differential: all {} point(s) identical",
        points.len()
    );
}
