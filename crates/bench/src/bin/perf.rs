//! `perf`: run the simulator-throughput basket and write
//! `results/BENCH_perf.json`, or check a fresh run against the committed
//! baseline (`--check`), failing on a >25% sim-cycles/sec regression.
//!
//! ```text
//! perf [--out PATH] [--paper] [--runs N]        measure and write JSON
//! perf --check [BASELINE] [--paper] [--runs N]  compare against baseline
//! ```
//!
//! In `--check` mode an explicit `--out PATH` additionally writes the
//! fresh measurement there (the baseline is never overwritten), so CI can
//! archive what was actually measured alongside the pass/fail verdict.

use std::process::ExitCode;

use isrf_bench::perf::{
    baseline_cycles_per_sec, baseline_entries, perf_basket, perf_json, REGRESSION_BUDGET,
};
use isrf_bench::Profile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut profile = Profile::Small;
    let mut runs: u32 = 3;

    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {
                let path = match it.peek() {
                    Some(p) if !p.starts_with("--") => it.next().unwrap().clone(),
                    _ => String::from("results/BENCH_perf.json"),
                };
                check = Some(path);
            }
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            "--paper" => profile = Profile::Paper,
            "--runs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => runs = n,
                None => return usage("--runs needs a number"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let report = perf_basket(profile, runs);
    println!(
        "{:<24} {:>12} {:>10} {:>14}",
        "point", "cycles", "wall (s)", "cycles/sec"
    );
    for e in &report.entries {
        println!(
            "{:<24} {:>12} {:>10.4} {:>14.0}",
            e.name,
            e.cycles,
            e.wall_s,
            e.cycles_per_sec()
        );
    }
    println!(
        "basket aggregate: {} cycles in {:.4}s = {:.0} sim-cycles/sec (peak RSS {} kB)",
        report.basket_cycles(),
        report.basket_wall_s(),
        report.basket_cycles_per_sec(),
        report.peak_rss_kb
    );

    if let Some(path) = out.clone().or_else(|| {
        check
            .is_none()
            .then(|| String::from("results/BENCH_perf.json"))
    }) {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("perf: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(&path, perf_json(&report)) {
            eprintln!("perf: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    match check {
        None => ExitCode::SUCCESS,
        Some(baseline_path) => {
            let doc = match std::fs::read_to_string(&baseline_path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("perf --check: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(base) = baseline_cycles_per_sec(&doc) else {
                eprintln!("perf --check: no basket_cycles_per_sec in {baseline_path}");
                return ExitCode::FAILURE;
            };
            let now = report.basket_cycles_per_sec();
            let floor = base * REGRESSION_BUDGET;
            println!(
                "baseline {base:.0} cycles/sec, current {now:.0}, floor {floor:.0} \
                 ({:.0}% of baseline)",
                REGRESSION_BUDGET * 100.0
            );
            if now < floor {
                // Per-entry delta table: which points slowed down, and
                // whether any cycle count drifted from the baseline
                // (a correctness smell, not just a perf one).
                let base_by_name: std::collections::BTreeMap<String, (u64, f64)> =
                    baseline_entries(&doc)
                        .into_iter()
                        .map(|(n, c, r)| (n, (c, r)))
                        .collect();
                eprintln!(
                    "{:<24} {:>12} {:>14} {:>14} {:>8}",
                    "point", "cycles", "base cyc/s", "now cyc/s", "delta"
                );
                for e in &report.entries {
                    match base_by_name.get(&e.name) {
                        Some(&(bc, bcps)) => {
                            let delta = (e.cycles_per_sec() / bcps - 1.0) * 100.0;
                            let drift = if bc != e.cycles {
                                format!("  CYCLES DRIFTED (baseline {bc})")
                            } else {
                                String::new()
                            };
                            eprintln!(
                                "{:<24} {:>12} {:>14.0} {:>14.0} {:>+7.1}%{drift}",
                                e.name,
                                e.cycles,
                                bcps,
                                e.cycles_per_sec(),
                                delta
                            );
                        }
                        None => eprintln!(
                            "{:<24} {:>12} {:>14} {:>14.0} {:>8}",
                            e.name,
                            e.cycles,
                            "(new)",
                            e.cycles_per_sec(),
                            "-"
                        ),
                    }
                }
                eprintln!(
                    "perf --check FAILED: throughput regressed {:.1}% (budget is {:.0}%)",
                    (1.0 - now / base) * 100.0,
                    (1.0 - REGRESSION_BUDGET) * 100.0
                );
                ExitCode::FAILURE
            } else {
                println!("perf --check OK");
                ExitCode::SUCCESS
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("perf: {err}");
    eprintln!("usage: perf [--check [BASELINE]] [--out PATH] [--paper] [--runs N]");
    ExitCode::FAILURE
}
