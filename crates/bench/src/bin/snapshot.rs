//! Snapshot/resume check: pause a benchmark run mid-flight at cycle
//! granularity, serialize the complete machine state, restore it into a
//! *fresh* machine, resume, and require the stitched run to be
//! byte-identical to an uninterrupted one — same `RunStats`, same recorded
//! trace stream, same output memory — under both execution engines
//! (DESIGN.md §12).
//!
//! Usage:
//!
//! * `snapshot [APP CONFIG]...` — pairs of benchmark app and configuration
//!   (`Base|ISRF1|ISRF4|Cache`); defaults to `sort ISRF4`, the CI point.
//! * `snapshot negative` — prove the harness has teeth: run two copies of
//!   the CI point in lockstep, inject a single-word SRF corruption at a
//!   known mid-run cycle into one of them, and require the first-divergence
//!   bisector to report exactly that cycle with the damage localized to
//!   the `srf` snapshot section.
//!
//! Exits nonzero on any mismatch (or, for `negative`, any mislocalization).

use isrf_check::{first_divergence, PerturbAt};
use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_sim::{ExecEngine, Machine};
use isrf_trace::{TraceEvent, Tracer};

fn parse_config(s: &str) -> ConfigName {
    ConfigName::ALL
        .into_iter()
        .find(|c| format!("{c}").eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown configuration {s:?} (expected one of Base|ISRF1|ISRF4|Cache)");
            std::process::exit(2);
        })
}

struct Observed {
    stats: RunStats,
    events: Vec<(u64, TraceEvent)>,
    outputs: Vec<(u32, Vec<Word>)>,
}

fn prepare(app: &str, cfg: ConfigName, engine: ExecEngine) -> isrf_apps::common::Prepared {
    let mut pr = isrf_bench::prepare_app(app, cfg, isrf_bench::Profile::Small);
    pr.machine.set_engine(engine);
    pr
}

fn drain_events(m: &mut Machine) -> Vec<(u64, TraceEvent)> {
    m.take_tracer()
        .into_recorder()
        .expect("recording tracer")
        .ring()
        .iter()
        .cloned()
        .collect()
}

fn read_outputs(m: &Machine, outputs: &[(u32, u32)]) -> Vec<(u32, Vec<Word>)> {
    outputs
        .iter()
        .map(|&(base, words)| (base, m.mem().memory().read_block(base, words as usize)))
        .collect()
}

/// One uninterrupted run with a recording tracer.
fn straight(app: &str, cfg: ConfigName, engine: ExecEngine) -> Observed {
    let mut pr = prepare(app, cfg, engine);
    pr.machine.set_tracer(Tracer::recording(1 << 20));
    let stats = pr.machine.run(&pr.program);
    let events = drain_events(&mut pr.machine);
    let outputs = read_outputs(&pr.machine, &pr.outputs);
    Observed {
        stats,
        events,
        outputs,
    }
}

/// Run to cycle `at`, snapshot, restore into a fresh machine, resume to
/// completion, and stitch the two trace halves together.
fn paused(app: &str, cfg: ConfigName, engine: ExecEngine, at: u64) -> (Observed, usize) {
    let mut pr = prepare(app, cfg, engine);
    pr.machine.set_tracer(Tracer::recording(1 << 20));
    assert!(
        pr.machine.run_for(&pr.program, at).is_none(),
        "{app} {cfg} finished before the pause cycle {at}"
    );
    let snapshot = pr.machine.save_state(&pr.program);
    let mut events = drain_events(&mut pr.machine);

    let mut fresh = prepare(app, cfg, engine);
    fresh
        .machine
        .restore_state(&fresh.program, &snapshot)
        .expect("snapshot restores into an identically prepared machine");
    fresh.machine.set_tracer(Tracer::recording(1 << 20));
    let stats = fresh
        .machine
        .run_for(&fresh.program, u64::MAX)
        .expect("resumed run completes");
    events.extend(drain_events(&mut fresh.machine));
    let outputs = read_outputs(&fresh.machine, &fresh.outputs);
    (
        Observed {
            stats,
            events,
            outputs,
        },
        snapshot.len(),
    )
}

/// Compare straight vs. snapshot/resume for one point under one engine.
fn check(app: &str, cfg: ConfigName, engine: ExecEngine) -> bool {
    let base = straight(app, cfg, engine);
    let at = base.stats.cycles / 2;
    let (resumed, snap_bytes) = paused(app, cfg, engine, at);
    let mut ok = true;

    if base.stats != resumed.stats {
        ok = false;
        eprintln!(
            "  stats mismatch:\n    straight: {:?}\n    resumed:  {:?}",
            base.stats, resumed.stats
        );
    }
    if base.events.len() != resumed.events.len() {
        ok = false;
        eprintln!(
            "  trace length mismatch: straight {} events, resumed {}",
            base.events.len(),
            resumed.events.len()
        );
    }
    if let Some(i) = base
        .events
        .iter()
        .zip(&resumed.events)
        .position(|(a, b)| a != b)
    {
        ok = false;
        eprintln!(
            "  trace diverges at event {i}:\n    straight: {:?}\n    resumed:  {:?}",
            base.events[i], resumed.events[i]
        );
    }
    for ((addr, a), (_, b)) in base.outputs.iter().zip(&resumed.outputs) {
        if let Some(i) = (0..a.len()).find(|&i| a[i] != b[i]) {
            ok = false;
            eprintln!(
                "  output memory diverges at {:#x}: straight {:#010x}, resumed {:#010x}",
                addr + i as u32,
                a[i],
                b[i]
            );
        }
    }
    println!(
        "{} {:<8} {:<6} {:<6} paused at {:>7}/{:<7}, {:>7}-byte snapshot, {:>6} events",
        if ok { "PASS" } else { "FAIL" },
        app,
        format!("{cfg}"),
        format!("{engine:?}"),
        at,
        base.stats.cycles,
        snap_bytes,
        base.events.len(),
    );
    ok
}

/// Negative mode: the bisector must localize an injected single-word SRF
/// corruption to exactly the cycle it was injected at.
fn negative(app: &str, cfg: ConfigName) -> bool {
    let engine = ExecEngine::Tape;
    let total = {
        let mut pr = prepare(app, cfg, engine);
        pr.machine.run(&pr.program).cycles
    };
    let mut a = prepare(app, cfg, engine);
    let b = prepare(app, cfg, engine);
    let (mut bm, bp) = (b.machine, b.program);
    // Corrupt the first SRF word above the allocator high-water mark: no
    // stream transfer ever touches it, so the damage persists in
    // architectural state from the injection cycle onward.
    let srf = bm.srf();
    assert!(srf.free_words() > 0, "{app} {cfg} fills the entire SRF");
    let offset = srf.bank_words() - srf.free_words();
    let inject = total / 2;
    let perturb = PerturbAt {
        cycle: inject,
        lane: 0,
        offset,
        xor: 0x5a5a_5a5a,
    };
    let found = first_divergence(&mut a.machine, &mut bm, &bp, 256, Some(perturb))
        .expect("lockstep snapshots restore");
    let ok = match &found {
        Some(d) if d.cycle == inject && d.diffs.iter().any(|x| x.path == "srf") => true,
        Some(d) => {
            eprintln!("  expected divergence at cycle {inject} in `srf`, got:\n{d}");
            false
        }
        None => {
            eprintln!("  injected corruption at cycle {inject} went undetected");
            false
        }
    };
    println!(
        "{} {:<8} {:<6} bisected injected fault at cycle {:>7}/{:<7} (srf bank 0 word {})",
        if ok { "PASS" } else { "FAIL" },
        app,
        format!("{cfg}"),
        inject,
        total,
        offset,
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("negative") {
        if !negative("sort", ConfigName::Isrf4) {
            eprintln!("bisector localization FAILED");
            std::process::exit(1);
        }
        return;
    }
    let points: Vec<(String, ConfigName)> = if args.is_empty() {
        vec![("sort".into(), ConfigName::Isrf4)]
    } else {
        if !args.len().is_multiple_of(2) {
            eprintln!("usage: snapshot [negative | APP CONFIG...]");
            std::process::exit(2);
        }
        args.chunks(2)
            .map(|p| (p[0].clone(), parse_config(&p[1])))
            .collect()
    };
    let mut all_ok = true;
    for (app, cfg) in &points {
        for engine in [ExecEngine::Tape, ExecEngine::Interp] {
            all_ok &= check(app, *cfg, engine);
        }
    }
    if !all_ok {
        eprintln!("snapshot/resume differential FAILED");
        std::process::exit(1);
    }
    println!(
        "snapshot/resume differential: all {} point(s) identical under both engines",
        points.len()
    );
}
