//! Trace any application × configuration to a Chrome trace-event file.
//!
//! Usage: `trace [app|all] [config|all] [--paper] [--out-dir DIR]
//! [--events N] [--timeline]`, or `trace --validate FILE` to only check an
//! existing trace file for JSON validity (used by CI when no external JSON
//! tool is available).
//!
//! Runs the chosen points under a recording tracer, writes
//! `<out-dir>/<app>_<config>.trace.json` (loadable in Perfetto or
//! `chrome://tracing`), prints the metrics-registry summary, and
//! cross-checks the event stream against the machine's reported Figure-12
//! cycle breakdown. Exits non-zero if any point fails the audit or
//! produces invalid JSON.
//!
//! Apps: `fft2d rijndael sort filter igraph`. Configs: `base isrf1 isrf4
//! cache`. `--events N` bounds the event ring (default 1M; the audit
//! stays exact even when the ring wraps, but the exported trace then only
//! covers the tail of the run). `--timeline` also prints a plain-text
//! strip chart of cycle attribution and memory activity.

use isrf_bench::{prepare_app, Profile, DIFF_APPS};
use isrf_core::config::ConfigName;
use isrf_trace::{chrome, json, timeline, Tracer};

const DEFAULT_EVENTS: usize = 1 << 20;

struct Options {
    apps: Vec<&'static str>,
    configs: Vec<ConfigName>,
    profile: Profile,
    out_dir: std::path::PathBuf,
    events: usize,
    timeline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace [app|all] [config|all] [--paper] [--out-dir DIR] \
         [--events N] [--timeline]\n  apps: {}  all\n  configs: base \
         isrf1 isrf4 cache all",
        DIFF_APPS.join(" ")
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Options {
    let mut opts = Options {
        apps: vec![],
        configs: vec![],
        profile: Profile::Small,
        out_dir: std::path::PathBuf::from("results/traces"),
        events: DEFAULT_EVENTS,
        timeline: false,
    };
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => opts.profile = Profile::Paper,
            "--timeline" => opts.timeline = true,
            "--out-dir" => match it.next() {
                Some(d) => opts.out_dir = d.into(),
                None => usage(),
            },
            "--events" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => opts.events = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            pos => positional.push(pos),
        }
    }
    let app_sel = positional.first().copied().unwrap_or("all");
    let cfg_sel = positional.get(1).copied().unwrap_or("all");
    if positional.len() > 2 {
        usage();
    }
    opts.apps = if app_sel == "all" {
        DIFF_APPS.to_vec()
    } else {
        match DIFF_APPS.iter().find(|&&a| a == app_sel) {
            Some(&a) => vec![a],
            None => usage(),
        }
    };
    opts.configs = if cfg_sel == "all" {
        ConfigName::ALL.to_vec()
    } else {
        match ConfigName::ALL
            .iter()
            .find(|c| c.to_string().eq_ignore_ascii_case(cfg_sel))
        {
            Some(&c) => vec![c],
            None => usage(),
        }
    };
    opts
}

/// Trace one point; returns false on audit or JSON failure.
fn trace_point(app: &str, cfg: ConfigName, opts: &Options) -> bool {
    let mut pr = prepare_app(app, cfg, opts.profile);
    pr.machine.set_tracer(Tracer::recording(opts.events));
    let stats = pr.machine.run(&pr.program);
    let rec = pr
        .machine
        .take_tracer()
        .into_recorder()
        .expect("recording tracer was installed");

    println!("== {app} on {cfg} ==");
    println!(
        "cycles={} events={} (dropped {})",
        stats.cycles,
        rec.ring().len(),
        rec.ring().dropped()
    );

    let mut ok = true;
    let mismatches = rec.audit().verify(&stats.breakdown);
    if mismatches.is_empty() {
        println!("audit: PASS (events reconstruct the Figure-12 breakdown)");
    } else {
        ok = false;
        println!("audit: FAIL");
        for m in &mismatches {
            println!("  {m}");
        }
    }

    let events: Vec<_> = rec.ring().iter().cloned().collect();
    let trace_json = chrome::export(&events);
    if let Err((pos, what)) = json::validate(&trace_json) {
        ok = false;
        println!("chrome JSON: INVALID at byte {pos}: {what}");
    }
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("cannot create {}: {e}", opts.out_dir.display());
        return false;
    }
    let path = opts.out_dir.join(format!(
        "{app}_{}.trace.json",
        cfg.to_string().to_lowercase()
    ));
    if let Err(e) = std::fs::write(&path, &trace_json) {
        eprintln!("cannot write {}: {e}", path.display());
        return false;
    }
    println!("[wrote {}]", path.display());

    if opts.timeline {
        print!("{}", timeline::render(&events, 100));
    }
    println!("{}", rec.registry().render());
    ok
}

/// `--validate FILE`: check JSON validity with the built-in validator.
fn validate_file(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match json::validate(&text) {
        Ok(()) => {
            println!("{path}: valid JSON");
            std::process::exit(0);
        }
        Err((pos, what)) => {
            eprintln!("{path}: INVALID at byte {pos}: {what}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--validate") {
        match args.get(1) {
            Some(path) if args.len() == 2 => validate_file(path),
            _ => usage(),
        }
    }
    let opts = parse(&args);
    let mut failures = 0;
    for &app in &opts.apps {
        for &cfg in &opts.configs {
            if !trace_point(app, cfg, &opts) {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} point(s) failed");
        std::process::exit(1);
    }
}
