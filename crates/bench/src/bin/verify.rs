//! Statically verify every application × configuration point.
//!
//! Usage: `verify [app|all] [config|all] [--paper] [--report FILE]
//! [--check FILE] [--cycles] [--explain CODE]`
//!
//! Builds each benchmark exactly as the harness would run it, then runs the
//! `isrf-verify` analyzer over the prepared program instead of simulating
//! it. Prints every diagnostic and exits non-zero if any point fails — the
//! CI gate proving all shipped programs are hazard-free on all four paper
//! configurations.
//!
//! Modes beyond the plain gate:
//!
//! * `--report FILE` — write the full analyzer report (diagnostics,
//!   warnings, static cycle floor) for every point as canonical JSON to
//!   `FILE` (`-` for stdout).
//! * `--check FILE` — regenerate the report and diff it against the
//!   committed golden `FILE`; exit non-zero on drift.
//! * `--cycles` — additionally *simulate* each point under both engines
//!   and check the static cycle floor is a true lower bound (and not
//!   uselessly loose: floor ≥ `MIN_FLOOR_PCT`% of the simulated cycles).
//! * `--explain CODE` — print the rule behind a diagnostic code, then any
//!   findings with that code across the selected points, including the
//!   derived intervals and dataflow path notes.
//!
//! Apps: `fft2d rijndael sort filter igraph spmv stencil bfs`. Configs:
//! `base isrf1 isrf4 cache`.

use std::fmt::Write as _;
use std::sync::Arc;

use isrf_bench::{prepare_app, Profile, DIFF_APPS};
use isrf_core::config::ConfigName;
use isrf_sim::ExecEngine;
use isrf_verify::{explain, Report, Verifier};

/// The static floor must recover at least this percentage of the simulated
/// cycle count on every app × config point (both profiles). Committed so
/// CI catches the model drifting uselessly loose, not just unsound.
const MIN_FLOOR_PCT: u64 = 10;

fn usage() -> ! {
    eprintln!(
        "usage: verify [app|all] [config|all] [--paper] [--report FILE] [--check FILE] \
         [--cycles] [--explain CODE]\n  apps: {}  all\n  \
         configs: base isrf1 isrf4 cache all",
        DIFF_APPS.join(" ")
    );
    std::process::exit(2);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn diag_json(d: &isrf_sim::Diagnostic) -> String {
    let mut s = format!(
        "{{\"code\":\"{}\",\"check\":\"{}\",\"message\":\"{}\"",
        json_escape(&d.code),
        json_escape(&d.check),
        json_escape(&d.message)
    );
    if let Some(op) = d.prog_op {
        let _ = write!(s, ",\"prog_op\":{op}");
    }
    if let Some(k) = &d.kernel {
        let _ = write!(s, ",\"kernel\":\"{}\"", json_escape(k));
    }
    if let Some(line) = d.line {
        let _ = write!(s, ",\"line\":{line}");
    }
    s.push('}');
    s
}

/// One analyzer point rendered as a canonical JSON object (keys in fixed
/// order, streams elided — the golden tracks program-level behavior).
fn point_json(app: &str, cfg: ConfigName, report: &Report) -> String {
    let mut s = format!("    {{\"app\":\"{app}\",\"config\":\"{cfg}\",");
    let diags: Vec<String> = report.diagnostics.iter().map(diag_json).collect();
    let warns: Vec<String> = report.warnings.iter().map(diag_json).collect();
    let _ = write!(
        s,
        "\"diagnostics\":[{}],\"warnings\":[{}],",
        diags.join(","),
        warns.join(",")
    );
    let c = &report.cost;
    let kernels: Vec<String> = c
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{{\"name\":\"{}\",\"prog_op\":{},\"iters\":{},\"ii\":{},\"floor\":{},\
                 \"schedule_floor\":{},\"port_floor\":{},\"inlane_pressure_pct\":{},\
                 \"crosslane_pressure_pct\":{}}}",
                json_escape(&k.name),
                k.prog_op,
                k.iters,
                k.ii,
                k.floor,
                k.schedule_floor,
                k.port_floor,
                k.inlane_pressure_pct,
                k.crosslane_pressure_pct
            )
        })
        .collect();
    let _ = write!(
        s,
        "\"cycle_floor\":{},\"kernel_floor\":{},\"mem_words\":{},\"mem_floor\":{},\
         \"kernels\":[{}]}}",
        c.cycle_floor,
        c.kernel_floor,
        c.mem_words,
        c.mem_floor,
        kernels.join(",")
    );
    s
}

struct Point {
    app: &'static str,
    cfg: ConfigName,
    report: Report,
}

fn analyze(apps: &[&'static str], configs: &[ConfigName], profile: Profile) -> Vec<Point> {
    let verifier = Verifier::new();
    let mut out = Vec::new();
    for &app in apps {
        for &cfg in configs {
            let pr = prepare_app(app, cfg, profile);
            let report =
                verifier.report(pr.machine.config(), &pr.machine.verify_env(), &pr.program);
            out.push(Point { app, cfg, report });
        }
    }
    out
}

fn render_report(points: &[Point], profile: Profile) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"profile\": \"{}\",",
        if profile == Profile::Paper {
            "paper"
        } else {
            "small"
        }
    );
    s.push_str("  \"points\": [\n");
    let rows: Vec<String> = points
        .iter()
        .map(|p| point_json(p.app, p.cfg, &p.report))
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Small;
    let mut positional: Vec<&str> = Vec::new();
    let mut report_to: Option<String> = None;
    let mut check_against: Option<String> = None;
    let mut cycles = false;
    let mut explain_code: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => profile = Profile::Paper,
            "--report" => report_to = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--check" => check_against = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--cycles" => cycles = true,
            "--explain" => explain_code = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            pos => positional.push(pos),
        }
    }
    if positional.len() > 2 {
        usage();
    }
    let app_sel = positional.first().copied().unwrap_or("all");
    let cfg_sel = positional.get(1).copied().unwrap_or("all");
    let apps: Vec<&'static str> = if app_sel == "all" {
        DIFF_APPS.to_vec()
    } else {
        match DIFF_APPS.iter().find(|&&a| a == app_sel) {
            Some(&a) => vec![a],
            None => usage(),
        }
    };
    let configs: Vec<ConfigName> = if cfg_sel == "all" {
        ConfigName::ALL.to_vec()
    } else {
        match ConfigName::ALL
            .iter()
            .find(|c| c.to_string().eq_ignore_ascii_case(cfg_sel))
        {
            Some(&c) => vec![c],
            None => usage(),
        }
    };

    if let Some(code) = &explain_code {
        let code = code.to_uppercase();
        match explain(&code) {
            Some(rule) => println!("{code}: {rule}\n"),
            None => {
                eprintln!("unknown diagnostic code `{code}`");
                std::process::exit(2);
            }
        }
        let mut hits = 0;
        for p in analyze(&apps, &configs, profile) {
            for d in p.report.diagnostics.iter().chain(&p.report.warnings) {
                if d.code != code {
                    continue;
                }
                hits += 1;
                println!("{} on {}: {d}", p.app, p.cfg);
                for note in &d.notes {
                    println!("    note: {note}");
                }
            }
        }
        if hits == 0 {
            println!(
                "no {code} findings across {} point(s) — the rule above is the check",
                apps.len() * configs.len()
            );
        }
        return;
    }

    if report_to.is_some() || check_against.is_some() {
        let points = analyze(&apps, &configs, profile);
        let rendered = render_report(&points, profile);
        if let Some(path) = &report_to {
            if path == "-" {
                print!("{rendered}");
            } else {
                std::fs::write(path, &rendered).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!(
                    "wrote analyzer report for {} point(s) to {path}",
                    points.len()
                );
            }
        }
        if let Some(path) = &check_against {
            let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read golden report {path}: {e}");
                std::process::exit(1);
            });
            if golden != rendered {
                let first_diff = golden
                    .lines()
                    .zip(rendered.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| golden.lines().count().min(rendered.lines().count()) + 1);
                eprintln!(
                    "analyzer report drifted from {path} (first differing line {first_diff}); \
                     regenerate with `verify --report {path}` and review the diff"
                );
                std::process::exit(1);
            }
            println!("analyzer report matches {path} ({} point(s))", points.len());
        }
        return;
    }

    let mut failures = 0;
    for &app in &apps {
        for &cfg in &configs {
            let mut pr = prepare_app(app, cfg, profile);
            // Install the analyzer explicitly: a machine without one would
            // verify vacuously, and this gate must never pass vacuously.
            pr.machine.set_verifier(Some(Arc::new(Verifier::new())));
            match pr.machine.verify_program(&pr.program) {
                Ok(()) => {
                    if !cycles {
                        println!("{app} on {cfg}: clean ({} program op(s))", pr.program.len());
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!("{app} on {cfg}: {} finding(s)", e.diagnostics.len());
                    for d in &e.diagnostics {
                        println!("  {d}");
                    }
                    continue;
                }
            }
            if !cycles {
                continue;
            }
            // Cross-validate the static floor against both engines.
            let floor = isrf_verify::cost_model(pr.machine.config(), &pr.program).cycle_floor;
            let mut sim = Vec::new();
            for engine in [ExecEngine::Tape, ExecEngine::Interp] {
                let mut pr = prepare_app(app, cfg, profile);
                pr.machine.set_engine(engine);
                sim.push(pr.machine.run(&pr.program).cycles);
            }
            let (tape, interp) = (sim[0], sim[1]);
            let worst = tape.min(interp);
            let pct = (floor * 100).checked_div(worst).unwrap_or(100);
            let ok = floor <= worst && pct >= MIN_FLOOR_PCT;
            println!(
                "{app} on {cfg}: floor {floor} <= tape {tape} / interp {interp} ({pct}% of \
                 simulated){}",
                if ok { "" } else { "  UNSOUND OR TOO LOOSE" }
            );
            if !ok {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} point(s) failed static verification");
        std::process::exit(1);
    }
}
