//! Statically verify every application × configuration point.
//!
//! Usage: `verify [app|all] [config|all] [--paper]`
//!
//! Builds each benchmark exactly as the harness would run it, then runs the
//! `isrf-verify` hazard analyzer over the prepared program instead of
//! simulating it. Prints every diagnostic and exits non-zero if any point
//! fails — the CI gate proving all shipped programs are hazard-free on all
//! four paper configurations.
//!
//! Apps: `fft2d rijndael sort filter igraph`. Configs: `base isrf1 isrf4
//! cache`.

use std::sync::Arc;

use isrf_bench::{prepare_app, Profile, DIFF_APPS};
use isrf_core::config::ConfigName;
use isrf_verify::Verifier;

fn usage() -> ! {
    eprintln!(
        "usage: verify [app|all] [config|all] [--paper]\n  apps: {}  all\n  \
         configs: base isrf1 isrf4 cache all",
        DIFF_APPS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Small;
    let mut positional: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--paper" => profile = Profile::Paper,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            pos => positional.push(pos),
        }
    }
    if positional.len() > 2 {
        usage();
    }
    let app_sel = positional.first().copied().unwrap_or("all");
    let cfg_sel = positional.get(1).copied().unwrap_or("all");
    let apps: Vec<&str> = if app_sel == "all" {
        DIFF_APPS.to_vec()
    } else {
        match DIFF_APPS.iter().find(|&&a| a == app_sel) {
            Some(&a) => vec![a],
            None => usage(),
        }
    };
    let configs: Vec<ConfigName> = if cfg_sel == "all" {
        ConfigName::ALL.to_vec()
    } else {
        match ConfigName::ALL
            .iter()
            .find(|c| c.to_string().eq_ignore_ascii_case(cfg_sel))
        {
            Some(&c) => vec![c],
            None => usage(),
        }
    };

    let mut failures = 0;
    for &app in &apps {
        for &cfg in &configs {
            let mut pr = prepare_app(app, cfg, profile);
            // Install the analyzer explicitly: a machine without one would
            // verify vacuously, and this gate must never pass vacuously.
            pr.machine.set_verifier(Some(Arc::new(Verifier::new())));
            match pr.machine.verify_program(&pr.program) {
                Ok(()) => {
                    println!("{app} on {cfg}: clean ({} program op(s))", pr.program.len());
                }
                Err(e) => {
                    failures += 1;
                    println!("{app} on {cfg}: {} finding(s)", e.diagnostics.len());
                    for d in &e.diagnostics {
                        println!("  {d}");
                    }
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} point(s) failed static verification");
        std::process::exit(1);
    }
}
