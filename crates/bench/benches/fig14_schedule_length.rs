//! Figure 14 bench: times the modulo scheduler on the study kernels and
//! prints the schedule-length curves once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_apps::{rijndael, sort};
use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::sched::{schedule, SchedParams};

fn bench(c: &mut Criterion) {
    let params = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4));
    let rk = isrf_apps::aes::key_expansion(&isrf_apps::aes::FIPS_KEY);
    let rij = rijndael::build_isrf_kernel(&rk, 1);
    let s2 = sort::sort2_kernel();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("schedule_rijndael_750_ops", |b| {
        b.iter(|| schedule(&rij, &params).unwrap())
    });
    g.bench_function("schedule_sort2", |b| {
        b.iter(|| schedule(&s2, &params).unwrap())
    });
    g.finish();
    println!("\nFigure 14 (normalized II vs separation):");
    for (name, pts) in isrf_bench::fig14() {
        print!("  {name:<10}");
        for (s, v) in pts {
            print!(" {s}:{v:.2}");
        }
        println!();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
