//! Section 4.5/4.6 bench: times the Cacti-style area model and prints the
//! overhead/energy tables once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_sram::{AreaModel, SrfGeometry, SrfVariant};

fn bench(c: &mut Criterion) {
    let model = AreaModel::default();
    let geom = SrfGeometry::paper_default();
    c.bench_function("area_model_all_variants", |b| {
        b.iter(|| {
            SrfVariant::ALL
                .iter()
                .map(|&v| model.srf_area_um2(&geom, v))
                .sum::<f64>()
        })
    });
    println!("\nSection 4.6 (SRF area overhead, die overhead):");
    for (v, srf, die) in isrf_bench::area_table() {
        println!(
            "  {v:?}: +{:.1}% SRF, +{:.2}% die",
            srf * 100.0,
            die * 100.0
        );
    }
    let (seq, inl, xl, dram) = isrf_bench::energy_table();
    println!("Section 4.5 energy: seq {seq:.4} nJ, in-lane {inl:.4} nJ, cross-lane {xl:.4} nJ, DRAM {dram:.1} nJ");
}

criterion_group!(benches, bench);
criterion_main!(benches);
