//! End-to-end sweep throughput: the full Figure 12 grid (8 benchmarks ×
//! 4 configurations, simulated in parallel) per iteration — the number
//! the ROADMAP's "sweep far bigger spaces" goal lives or dies by. The
//! same workload is the `perf` binary's `sweep_throughput` JSON entry.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_bench::{fig12, Profile};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_throughput");
    g.sample_size(10);
    g.bench_function("fig12_grid_small", |b| b.iter(|| fig12(Profile::Small)));
    g.finish();

    let rows = fig12(Profile::Small);
    let cycles: u64 = rows.iter().map(|r| r.cycles).sum();
    println!(
        "\nsweep_throughput: {cycles} total cycles across {} points",
        rows.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
