//! Figure 16 bench: times one cross-lane sweep point and prints the
//! cross-lane sweep curves once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_apps::common::set_separation_override;
use isrf_bench::{fig16, run_benchmark, Profile};
use isrf_core::config::ConfigName;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("ig_dms_sep4", |b| {
        b.iter(|| {
            set_separation_override(Some((6, 4)));
            let s = run_benchmark("IG_DMS", ConfigName::Isrf4, Profile::Small);
            set_separation_override(None);
            s
        })
    });
    g.finish();
    println!("\nFigure 16 (normalized time vs cross-lane separation):");
    for (name, pts) in fig16(Profile::Small) {
        print!("  {name:<10}");
        for (s, v) in pts {
            print!(" {s}:{v:.2}");
        }
        println!();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
