//! Figure 13 bench: times ISRF4 runs (the bandwidth measurements) and
//! prints sustained SRF bandwidth per benchmark once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_bench::{fig13, run_benchmark, Profile};
use isrf_core::config::ConfigName;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for name in ["Filter", "IG_SML"] {
        g.bench_function(name, |b| {
            b.iter(|| run_benchmark(name, ConfigName::Isrf4, Profile::Small))
        });
    }
    g.finish();
    println!("\nFigure 13 (seq / cross-lane / in-lane words per cycle per lane):");
    for (name, [s, x, i]) in fig13(Profile::Small) {
        println!("  {name:<10} {s:.3} {x:.3} {i:.3}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
