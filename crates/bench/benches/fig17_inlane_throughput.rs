//! Figure 17 bench: times the in-lane random-access microbenchmark and
//! prints the sub-array x FIFO sweep once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_apps::micro::inlane_throughput;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17");
    for s in [1usize, 4, 8] {
        g.bench_function(format!("subarrays_{s}"), |b| {
            b.iter(|| inlane_throughput(s, 8, 8, 2000))
        });
    }
    g.finish();
    println!("\nFigure 17 (words/cycle/lane):");
    for (s, pts) in isrf_bench::fig17(2000) {
        print!("  {s} sub-arrays:");
        for (f, t) in pts {
            print!(" fifo{f}={t:.2}");
        }
        println!();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
