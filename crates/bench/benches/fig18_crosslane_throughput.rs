//! Figure 18 bench: times the cross-lane microbenchmark and prints the
//! ports x occupancy sweep once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_apps::micro::crosslane_throughput;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18");
    for ports in [1usize, 2, 4] {
        g.bench_function(format!("ports_{ports}"), |b| {
            b.iter(|| crosslane_throughput(ports, 40, 2000))
        });
    }
    g.finish();
    println!("\nFigure 18 (words/cycle/lane):");
    for (ports, pts) in isrf_bench::fig18(2000) {
        print!("  {ports} port(s):");
        for (o, t) in pts {
            print!(" {o}%={t:.2}");
        }
        println!();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
