//! Figure 15 bench: times one separation-sweep point and prints the
//! in-lane sweep curves once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_apps::common::set_separation_override;
use isrf_bench::{fig15, run_benchmark, Profile};
use isrf_core::config::ConfigName;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("sort_sep2", |b| {
        b.iter(|| {
            set_separation_override(Some((2, 20)));
            let s = run_benchmark("Sort", ConfigName::Isrf4, Profile::Small);
            set_separation_override(None);
            s
        })
    });
    g.finish();
    println!("\nFigure 15 (normalized time vs in-lane separation):");
    for (name, pts) in fig15(Profile::Small) {
        print!("  {name:<10}");
        for (s, v) in pts {
            print!(" {s}:{v:.2}");
        }
        println!();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
