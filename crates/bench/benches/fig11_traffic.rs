//! Figure 11 bench: times the runs behind the off-chip-traffic comparison
//! (one representative benchmark per traffic class) and prints the figure
//! rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_bench::{fig11, run_benchmark, Profile};
use isrf_core::config::ConfigName;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for (name, cfg) in [
        ("Rijndael", ConfigName::Base),
        ("Rijndael", ConfigName::Isrf4),
        ("FFT 2D", ConfigName::Base),
        ("FFT 2D", ConfigName::Isrf4),
        ("IG_DMS", ConfigName::Isrf4),
    ] {
        g.bench_function(format!("{name}/{cfg}"), |b| {
            b.iter(|| run_benchmark(name, cfg, Profile::Small))
        });
    }
    g.finish();
    println!("\nFigure 11 (ISRF / Cache traffic normalized to Base):");
    for (name, isrf, cache) in fig11(Profile::Small) {
        println!("  {name:<10} {isrf:.3} {cache:.3}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
