//! Micro-bench for the bare cycle loop: one modulo-scheduled ALU kernel
//! over SRF-resident streams, zero memory traffic. This is the same
//! workload the `perf` binary reports as `machine_hot_loop`.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_bench::perf::hot_loop_prepared;
use isrf_sim::ExecEngine;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_hot_loop");
    g.sample_size(20);
    g.bench_function("single_kernel_no_mem", |b| {
        let (mut m, p) = hot_loop_prepared();
        b.iter(|| m.run(&p))
    });
    // The same workload on the graph-walking interpreter: the ratio to
    // `single_kernel_no_mem` is the speedup of the compiled-tape engine.
    g.bench_function("single_kernel_no_mem_interp", |b| {
        let (mut m, p) = hot_loop_prepared();
        m.set_engine(ExecEngine::Interp);
        b.iter(|| m.run(&p))
    });
    g.bench_function("prepare_and_run", |b| {
        b.iter(|| {
            let (mut m, p) = hot_loop_prepared();
            m.run(&p)
        })
    });
    g.finish();

    // Tape vs interpreter on a real benchmark kernel (the filter app's
    // indexed-landing path, Base configuration).
    let mut g = c.benchmark_group("engines_filter_base");
    g.sample_size(10);
    for engine in [ExecEngine::Tape, ExecEngine::Interp] {
        g.bench_function(format!("{engine:?}"), |b| {
            let mut pr = isrf_bench::prepare_app(
                "filter",
                isrf_core::config::ConfigName::Base,
                isrf_bench::Profile::Small,
            );
            pr.machine.set_engine(engine);
            b.iter(|| pr.machine.run(&pr.program))
        });
    }
    g.finish();

    let (mut m, p) = hot_loop_prepared();
    let stats = m.run(&p);
    println!(
        "\nmachine_hot_loop: {} cycles, no memory traffic",
        stats.cycles
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
