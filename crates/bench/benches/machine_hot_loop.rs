//! Micro-bench for the bare cycle loop: one modulo-scheduled ALU kernel
//! over SRF-resident streams, zero memory traffic. This is the same
//! workload the `perf` binary reports as `machine_hot_loop`.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_bench::perf::hot_loop_prepared;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_hot_loop");
    g.sample_size(20);
    g.bench_function("single_kernel_no_mem", |b| {
        let (mut m, p) = hot_loop_prepared();
        b.iter(|| m.run(&p))
    });
    g.bench_function("prepare_and_run", |b| {
        b.iter(|| {
            let (mut m, p) = hot_loop_prepared();
            m.run(&p)
        })
    });
    g.finish();

    let (mut m, p) = hot_loop_prepared();
    let stats = m.run(&p);
    println!(
        "\nmachine_hot_loop: {} cycles, no memory traffic",
        stats.cycles
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
