//! Figure 12 bench: times the full four-configuration sweep of one
//! benchmark and prints the breakdown rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_bench::{fig12, run_benchmark, Profile};
use isrf_core::config::ConfigName;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("sort_all_configs", |b| {
        b.iter(|| {
            for cfg in ConfigName::ALL {
                run_benchmark("Sort", cfg, Profile::Small);
            }
        })
    });
    g.finish();
    println!("\nFigure 12 (normalized execution time, loop/mem/srf/ovh):");
    for r in fig12(Profile::Small) {
        println!(
            "  {:<10} {:<6} {:.3} {:.3} {:.3} {:.3} = {:.3}",
            r.benchmark,
            r.config.to_string(),
            r.parts[0],
            r.parts[1],
            r.parts[2],
            r.parts[3],
            r.total()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
