//! Ablation benches for the design choices DESIGN.md calls out:
//! conditional-stream merge vs a bitonic-network baseline for Sort, DRAM
//! burst granularity (the memory-access-scheduling assumption), and the
//! Section 7 sparse cross-lane interconnect (crossbar vs ring).

use criterion::{criterion_group, criterion_main, Criterion};
use isrf_apps::micro::crosslane_throughput_with_topology;
use isrf_apps::sort::{run_base_bitonic, SortParams};
use isrf_core::config::{ConfigName, CrossLaneTopology, MachineConfig};
use isrf_mem::{AddrPattern, MemorySystem};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let params = SortParams {
        keys_per_lane: 64,
        ..Default::default()
    };
    g.bench_function("sort_base_bitonic", |b| {
        b.iter(|| run_base_bitonic(ConfigName::Base, &params))
    });
    g.bench_function("gather_burst1_vs_burst4", |b| {
        b.iter(|| {
            let mut cycles = [0u64; 2];
            for (i, burst) in [1u32, 4].iter().enumerate() {
                let mut cfg = MachineConfig::preset(ConfigName::Base);
                cfg.dram.burst_words = *burst;
                let mut sys = MemorySystem::new(&cfg);
                let addrs: Vec<u32> = (0..512u32).map(|k| (k * 97) % 4096 * 16).collect();
                let (id, _) = sys.start_read(&AddrPattern::Indexed(addrs), false);
                while !sys.is_complete(id) {
                    sys.tick();
                }
                cycles[i] = sys.now();
            }
            cycles
        })
    });
    for topo in [CrossLaneTopology::Crossbar, CrossLaneTopology::Ring] {
        g.bench_function(format!("crosslane_{topo:?}"), |b| {
            b.iter(|| crosslane_throughput_with_topology(1, 0, topo, 2000))
        });
    }
    g.finish();

    // Print the ablation results once.
    let params = SortParams {
        keys_per_lane: 64,
        ..Default::default()
    };
    let cond = isrf_apps::sort::run(ConfigName::Base, &params);
    let bitonic = run_base_bitonic(ConfigName::Base, &params);
    println!("\nAblation: Sort baseline mechanism");
    println!("  conditional-stream merge: {} cycles", cond.cycles);
    println!("  bitonic network:          {} cycles", bitonic.cycles);
    println!("Ablation: cross-lane interconnect (1 port/bank, no comm)");
    for topo in [CrossLaneTopology::Crossbar, CrossLaneTopology::Ring] {
        println!(
            "  {topo:?}: {:.3} words/cycle/lane",
            crosslane_throughput_with_topology(1, 0, topo, 3000)
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
