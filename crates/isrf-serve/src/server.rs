//! The batch simulation server: job table, backpressure, memoization,
//! worker pool wiring, the HTTP route table, and graceful drain.
//!
//! Life of a job: `POST /jobs` validates the spec, consults the result
//! cache (a hit completes instantly), statically verifies every point
//! before admission (`422` with the verifier's structured diagnostics on
//! failure; verdicts memoized per point), applies the queue bound (429 +
//! `Retry-After` on overflow), then enqueues an *expand* item on the
//! pool's injector. The worker that picks it up fans the sweep's points
//! onto its own deque — stealable by siblings — and runs point 0 inline.
//! Points execute in bounded cycle slices so cancellation (`DELETE`) and
//! drain (`POST /shutdown`) take effect within one slice; drain
//! checkpoints in-flight machines via `Machine::save_state` and persists
//! them to the snapshot directory, where the next start resumes them
//! cycle-exactly.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use isrf_kernel::sched::schedule_cache_stats;
use isrf_sim::tape_cache_stats;
use isrf_trace::{Histogram, MetricsRegistry};

use crate::exec::{analyze_point, PointRunner};
use crate::http::{read_request, HttpError, Limits, Request, Response};
use crate::json::Json;
use crate::pool::{Pool, WorkerHandle};
use crate::spec::JobSpec;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Max jobs admitted but not yet picked up by a worker; beyond this
    /// `POST /jobs` answers 429.
    pub queue_cap: usize,
    /// Cycles per execution slice; the cancellation/drain latency bound.
    pub chunk_cycles: u64,
    /// Where drain checkpoints go; `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// HTTP byte caps.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            chunk_cycles: 50_000,
            snapshot_dir: None,
            limits: Limits::default(),
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accepted, waiting for a worker.
    Queued,
    /// At least one point has started.
    Running,
    /// All points finished; result rendered.
    Done,
    /// Some point failed; `errors` has diagnostics.
    Failed,
    /// Cancelled by `DELETE`.
    Cancelled,
    /// Drained to checkpoints (server shutting down).
    Suspended,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Cancelled => "cancelled",
            Phase::Suspended => "suspended",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Failed | Phase::Cancelled)
    }
}

/// Per-point mutable state.
#[derive(Debug, Default)]
struct PointState {
    finished: bool,
    cycles: u64,
    error: Option<String>,
    /// Rendered outcome JSON (kept per point until the job finalizes).
    outcome: Option<Json>,
    /// Checkpoint captured at drain (`None` = restart from scratch).
    snap: Option<Vec<u8>>,
}

#[derive(Debug)]
struct JobState {
    phase: Phase,
    points: Vec<PointState>,
    done: usize,
    /// Rendered `points` array of the result payload.
    result: Option<Arc<String>>,
    /// Chrome trace JSON (single-point traced jobs).
    trace: Option<Arc<String>>,
    cached: bool,
}

struct Job {
    id: u64,
    spec: JobSpec,
    hash: u128,
    cancel: AtomicBool,
    submitted: Instant,
    state: Mutex<JobState>,
    /// Per-point checkpoints from a previous drain, taken on first run.
    restored: Mutex<Vec<Option<Vec<u8>>>>,
}

impl Job {
    fn new(id: u64, spec: JobSpec, hash: u128, restored: Vec<Option<Vec<u8>>>) -> Arc<Job> {
        let points = spec.points.iter().map(|_| PointState::default()).collect();
        // Sanctioned wall-clock read: feeds only the latency histogram,
        // never a result.
        #[allow(clippy::disallowed_methods)]
        let submitted = Instant::now();
        Arc::new(Job {
            id,
            spec,
            hash,
            cancel: AtomicBool::new(false),
            submitted,
            state: Mutex::new(JobState {
                phase: Phase::Queued,
                points,
                done: 0,
                result: None,
                trace: None,
                cached: false,
            }),
            restored: Mutex::new(restored),
        })
    }
}

/// A unit of pool work.
enum WorkItem {
    /// Fan a job's points out (runs point 0 inline).
    Expand(Arc<Job>),
    /// Run one point of a job.
    Point(Arc<Job>, usize),
}

/// Shared server state.
struct Core {
    cfg: ServerConfig,
    /// The actual bound address (the config may ask for port 0).
    bound: Mutex<Option<SocketAddr>>,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    /// Jobs admitted but not yet expanded (the bounded queue).
    queued: AtomicUsize,
    draining: AtomicBool,
    /// Rendered `points` arrays keyed by [`JobSpec::hash`].
    result_cache: Mutex<BTreeMap<u128, Arc<String>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_rejected: AtomicU64,
    /// Jobs rejected at admission by static verification (`422`).
    jobs_rejected_static: AtomicU64,
    /// Pre-admission verdicts keyed by [`crate::spec::PointSpec::verify_hash`]:
    /// `None` = clean, `Some` = the structured diagnostics that reject it.
    verify_cache: Mutex<BTreeMap<u128, Option<Arc<Vec<Json>>>>>,
    verify_hits: AtomicU64,
    verify_misses: AtomicU64,
    latency_ms: Mutex<Histogram>,
    started: Instant,
    pool: Mutex<Option<Pool<WorkItem>>>,
}

impl Core {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex: {e}")))
        .collect()
}

// ---------------------------------------------------------------------------
// Point execution on the worker pool
// ---------------------------------------------------------------------------

fn run_item(core: &Core, item: WorkItem, h: &WorkerHandle<'_, WorkItem>) {
    match item {
        WorkItem::Expand(job) => {
            core.queued.fetch_sub(1, Ordering::SeqCst);
            {
                let mut st = job.state.lock().unwrap();
                if st.phase.terminal() {
                    return;
                }
                st.phase = Phase::Running;
            }
            for idx in 1..job.spec.points.len() {
                h.push(WorkItem::Point(Arc::clone(&job), idx));
            }
            run_point(core, &job, 0);
        }
        WorkItem::Point(job, idx) => run_point(core, &job, idx),
    }
}

/// What one point execution concluded.
enum PointEnd {
    Finished(crate::exec::PointOutcome),
    Cancelled,
    Drained(Option<Vec<u8>>, u64),
    Failed(String),
}

fn run_point(core: &Core, job: &Arc<Job>, idx: usize) {
    if job.cancel.load(Ordering::SeqCst) {
        return settle_point(core, job, idx, PointEnd::Cancelled);
    }
    let restored = job
        .restored
        .lock()
        .unwrap()
        .get_mut(idx)
        .and_then(Option::take);
    if core.draining() {
        // Don't start (or resume) new work during drain: hand the restored
        // checkpoint (if any) straight back to the persister.
        return settle_point(core, job, idx, PointEnd::Drained(restored, 0));
    }
    let spec = &job.spec.points[idx];
    let trace = job.spec.trace;
    let chunk = core.cfg.chunk_cycles;
    let end = catch_unwind(AssertUnwindSafe(|| {
        let mut runner = match match &restored {
            Some(snap) => PointRunner::resume(spec, trace, snap),
            None => PointRunner::new(spec, trace),
        } {
            Ok(r) => r,
            Err(e) => return PointEnd::Failed(e),
        };
        // `run` slices internally; it returns None only when the closure
        // vetoed the next slice (cancellation or drain).
        match runner.run(chunk, |cycles| {
            job.state.lock().unwrap().points[idx].cycles = cycles;
            !job.cancel.load(Ordering::SeqCst) && !core.draining()
        }) {
            Some(out) => PointEnd::Finished(out),
            None if job.cancel.load(Ordering::SeqCst) => PointEnd::Cancelled,
            None => PointEnd::Drained(Some(runner.checkpoint()), runner.cycles()),
        }
    }));
    let end = end.unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".into());
        PointEnd::Failed(format!("simulation panicked: {msg}"))
    });
    settle_point(core, job, idx, end);
}

fn settle_point(core: &Core, job: &Arc<Job>, idx: usize, end: PointEnd) {
    let mut st = job.state.lock().unwrap();
    match end {
        PointEnd::Finished(out) => {
            let trace_json = out.trace_json.clone();
            st.points[idx].cycles = out.stats.cycles;
            st.points[idx].outcome = Some(out.to_json());
            st.points[idx].finished = true;
            st.done += 1;
            if let Some(t) = trace_json {
                st.trace = Some(Arc::new(t));
            }
            if st.done == st.points.len() && st.phase == Phase::Running {
                finalize(core, job, &mut st);
            }
        }
        PointEnd::Cancelled => {
            if !st.phase.terminal() {
                st.phase = Phase::Cancelled;
                core.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
        PointEnd::Drained(snap, cycles) => {
            st.points[idx].snap = snap;
            if cycles > 0 {
                st.points[idx].cycles = cycles;
            }
            if !st.phase.terminal() {
                st.phase = Phase::Suspended;
            }
        }
        PointEnd::Failed(msg) => {
            st.points[idx].error = Some(msg);
            if !st.phase.terminal() {
                st.phase = Phase::Failed;
                core.jobs_failed.fetch_add(1, Ordering::Relaxed);
                // Stop sibling points early; they observe the flag as a
                // cancellation but the phase stays Failed.
                job.cancel.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// All points done: render the result payload, fill the cache, record
/// latency.
fn finalize(core: &Core, job: &Arc<Job>, st: &mut JobState) {
    let mut body = String::from("[");
    for (i, p) in st.points.iter_mut().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let outcome = p.outcome.take().expect("finished point has an outcome");
        outcome.render_into(&mut body);
    }
    body.push(']');
    let rendered = Arc::new(body);
    st.result = Some(Arc::clone(&rendered));
    st.phase = Phase::Done;
    if !job.spec.trace {
        core.result_cache
            .lock()
            .unwrap()
            .entry(job.hash)
            .or_insert(rendered);
    }
    core.jobs_done.fetch_add(1, Ordering::Relaxed);
    let ms = job
        .submitted
        .elapsed()
        .as_millis()
        .min(u128::from(u64::MAX)) as u64;
    core.latency_ms.lock().unwrap().observe(ms);
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

fn job_status_json(job: &Job) -> Json {
    let st = job.state.lock().unwrap();
    let mut obj = vec![
        ("id".into(), Json::u64(job.id)),
        ("status".into(), Json::str(st.phase.as_str())),
        ("points".into(), Json::u64(st.points.len() as u64)),
        ("points_done".into(), Json::u64(st.done as u64)),
        (
            "cycles".into(),
            Json::u64(st.points.iter().map(|p| p.cycles).sum()),
        ),
        ("cached".into(), Json::Bool(st.cached)),
        ("hash".into(), Json::str(format!("{:032x}", job.hash))),
    ];
    let errors: Vec<Json> = st
        .points
        .iter()
        .filter_map(|p| p.error.as_ref())
        .map(|e| Json::str(e.clone()))
        .collect();
    if !errors.is_empty() {
        obj.push(("errors".into(), Json::Arr(errors)));
    }
    Json::Obj(obj)
}

fn submit(core: &Arc<Core>, req: &Request) -> Response {
    if core.draining() {
        return Response::error(503, "server is draining");
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &e),
    };
    let hash = spec.hash();
    core.jobs_submitted.fetch_add(1, Ordering::Relaxed);

    // Memoized? Complete instantly without touching the queue.
    if !spec.trace {
        let hit = core.result_cache.lock().unwrap().get(&hash).cloned();
        if let Some(rendered) = hit {
            core.cache_hits.fetch_add(1, Ordering::Relaxed);
            let id = core.next_id.fetch_add(1, Ordering::SeqCst);
            let job = Job::new(id, spec, hash, Vec::new());
            {
                let mut st = job.state.lock().unwrap();
                let n = st.points.len();
                for p in st.points.iter_mut() {
                    p.finished = true;
                }
                st.done = n;
                st.phase = Phase::Done;
                st.result = Some(rendered);
                st.cached = true;
            }
            core.jobs.lock().unwrap().insert(id, job);
            return Response::json(
                200,
                &Json::Obj(vec![
                    ("id".into(), Json::u64(id)),
                    ("status".into(), Json::str("done")),
                    ("cached".into(), Json::Bool(true)),
                ]),
            );
        }
        core.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    // Pre-admission static verification: every point is analyzed — and
    // the verdict memoized by `PointSpec::verify_hash` — before anything
    // touches the queue, so a statically hazardous program is rejected
    // here with the verifier's structured diagnostics instead of
    // surfacing as a worker-side failure after admission.
    let mut rejected: Vec<Json> = Vec::new();
    for (idx, point) in spec.points.iter().enumerate() {
        let key = point.verify_hash();
        let cached = core.verify_cache.lock().unwrap().get(&key).cloned();
        let verdict = match cached {
            Some(v) => {
                core.verify_hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                core.verify_misses.fetch_add(1, Ordering::Relaxed);
                let v = match analyze_point(point) {
                    Ok(()) => None,
                    Err(diags) => Some(Arc::new(diags)),
                };
                core.verify_cache.lock().unwrap().insert(key, v.clone());
                v
            }
        };
        if let Some(diags) = verdict {
            rejected.push(Json::Obj(vec![
                ("point".into(), Json::u64(idx as u64)),
                ("diagnostics".into(), Json::Arr(diags.as_ref().clone())),
            ]));
        }
    }
    if !rejected.is_empty() {
        core.jobs_rejected_static.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            422,
            &Json::Obj(vec![
                ("error".into(), Json::str("static verification failed")),
                ("rejected_points".into(), Json::Arr(rejected)),
            ]),
        );
    }

    // Bounded admission: reject rather than buffer without bound.
    if core.queued.load(Ordering::SeqCst) >= core.cfg.queue_cap {
        core.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            429,
            &Json::Obj(vec![
                ("error".into(), Json::str("job queue is full")),
                (
                    "queue_depth".into(),
                    Json::u64(core.queued.load(Ordering::SeqCst) as u64),
                ),
                ("queue_cap".into(), Json::u64(core.cfg.queue_cap as u64)),
            ]),
        )
        .with_header("Retry-After", "1");
    }

    let id = core.next_id.fetch_add(1, Ordering::SeqCst);
    let job = Job::new(id, spec, hash, Vec::new());
    core.jobs.lock().unwrap().insert(id, Arc::clone(&job));
    core.queued.fetch_add(1, Ordering::SeqCst);
    if let Some(pool) = core.pool.lock().unwrap().as_ref() {
        pool.inject(WorkItem::Expand(job));
    }
    Response::json(
        202,
        &Json::Obj(vec![
            ("id".into(), Json::u64(id)),
            ("status".into(), Json::str("queued")),
            ("hash".into(), Json::str(format!("{hash:032x}"))),
        ]),
    )
}

fn job_result(job: &Job) -> Response {
    let st = job.state.lock().unwrap();
    match st.phase {
        Phase::Done => {
            let points = st.result.as_ref().expect("done job has a result");
            let mut body = String::with_capacity(points.len() + 64);
            body.push_str(&format!(
                "{{\"id\":{},\"status\":\"done\",\"cached\":{},\"points\":",
                job.id, st.cached
            ));
            body.push_str(points);
            body.push('}');
            Response::json_raw(200, body)
        }
        phase => {
            let mut obj = vec![
                ("id".into(), Json::u64(job.id)),
                ("status".into(), Json::str(phase.as_str())),
            ];
            let errors: Vec<Json> = st
                .points
                .iter()
                .filter_map(|p| p.error.as_ref())
                .map(|e| Json::str(e.clone()))
                .collect();
            if !errors.is_empty() {
                obj.push(("errors".into(), Json::Arr(errors)));
            }
            Response::json(409, &Json::Obj(obj))
        }
    }
}

fn job_trace(job: &Job) -> Response {
    let st = job.state.lock().unwrap();
    match &st.trace {
        Some(t) => Response::json_raw(200, t.as_ref().clone()),
        None => Response::error(404, "no trace for this job (submit with \"trace\": true)"),
    }
}

fn cancel_job(core: &Core, job: &Job) -> Response {
    job.cancel.store(true, Ordering::SeqCst);
    let mut st = job.state.lock().unwrap();
    if !st.phase.terminal() && st.phase != Phase::Suspended {
        // A queued job dies right here; a running one settles within a
        // slice, but report the final state immediately.
        st.phase = Phase::Cancelled;
        core.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }
    Response::json(
        200,
        &Json::Obj(vec![
            ("id".into(), Json::u64(job.id)),
            ("status".into(), Json::str(st.phase.as_str())),
        ]),
    )
}

fn metrics(core: &Core) -> Response {
    let mut reg = MetricsRegistry::new();
    reg.set(
        "serve_queue_depth",
        core.queued.load(Ordering::SeqCst) as u64,
    );
    reg.set("serve_queue_cap", core.cfg.queue_cap as u64);
    reg.set(
        "serve_jobs_submitted",
        core.jobs_submitted.load(Ordering::Relaxed),
    );
    reg.set("serve_jobs_done", core.jobs_done.load(Ordering::Relaxed));
    reg.set(
        "serve_jobs_failed",
        core.jobs_failed.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_jobs_cancelled",
        core.jobs_cancelled.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_jobs_rejected_429",
        core.jobs_rejected.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_jobs_rejected_static",
        core.jobs_rejected_static.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_verify_cache_hits",
        core.verify_hits.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_verify_cache_misses",
        core.verify_misses.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_verify_cache_entries",
        core.verify_cache.lock().unwrap().len() as u64,
    );
    reg.set(
        "serve_result_cache_hits",
        core.cache_hits.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_result_cache_misses",
        core.cache_misses.load(Ordering::Relaxed),
    );
    reg.set(
        "serve_result_cache_entries",
        core.result_cache.lock().unwrap().len() as u64,
    );
    let (sh, sm) = schedule_cache_stats();
    reg.set("sched_cache_hits", sh);
    reg.set("sched_cache_misses", sm);
    let (th, tm) = tape_cache_stats();
    reg.set("tape_cache_hits", th);
    reg.set("tape_cache_misses", tm);
    let uptime = core.started.elapsed();
    let uptime_ms = uptime.as_millis().max(1) as u64;
    reg.set("serve_uptime_ms", uptime_ms);
    let done = core.jobs_done.load(Ordering::Relaxed);
    reg.set("serve_jobs_per_sec_x1000", done * 1_000_000 / uptime_ms);
    if let Some(pool) = core.pool.lock().unwrap().as_ref() {
        for (i, w) in pool.worker_stats().iter().enumerate() {
            reg.set(&format!("worker_{i}_items"), w.processed);
            reg.set(&format!("worker_{i}_stolen"), w.stolen);
            reg.set(&format!("worker_{i}_busy_micros"), w.busy_micros);
            reg.set(
                &format!("worker_{i}_utilization_pct"),
                w.busy_micros / 10 / uptime_ms.max(1),
            );
        }
    }
    reg.put_histogram(
        "serve_job_latency_ms",
        core.latency_ms.lock().unwrap().clone(),
    );
    Response::text(200, reg.render())
}

fn route(core: &Arc<Core>, req: &Request) -> Response {
    let segs: Vec<&str> = req.path().split('/').filter(|s| !s.is_empty()).collect();
    let find = |id: &str| -> Result<Arc<Job>, Response> {
        let id: u64 = id
            .parse()
            .map_err(|_| Response::error(400, "job id must be an integer"))?;
        core.jobs
            .lock()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or_else(|| Response::error(404, "no such job"))
    };
    match (req.method.as_str(), segs.as_slice()) {
        ("POST", ["jobs"]) => submit(core, req),
        ("GET", ["jobs", id]) => match find(id) {
            Ok(job) => Response::json(200, &job_status_json(&job)),
            Err(r) => r,
        },
        ("GET", ["jobs", id, "result"]) => match find(id) {
            Ok(job) => job_result(&job),
            Err(r) => r,
        },
        ("GET", ["jobs", id, "trace"]) => match find(id) {
            Ok(job) => job_trace(&job),
            Err(r) => r,
        },
        ("DELETE", ["jobs", id]) => match find(id) {
            Ok(job) => cancel_job(core, &job),
            Err(r) => r,
        },
        ("GET", ["metrics"]) => metrics(core),
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("POST", ["shutdown"]) => shutdown(core),
        ("GET" | "POST" | "DELETE", _) => Response::error(404, "no such route"),
        _ => Response::error(405, "method not supported"),
    }
}

// ---------------------------------------------------------------------------
// Drain & restore
// ---------------------------------------------------------------------------

fn shutdown(core: &Arc<Core>) -> Response {
    if core.draining.swap(true, Ordering::SeqCst) {
        return Response::error(409, "already draining");
    }
    // Workers observe the flag within one slice; queued items settle as
    // Suspended. Then join the pool and persist every non-terminal job.
    if let Some(pool) = core.pool.lock().unwrap().as_mut() {
        pool.shutdown();
    }
    let persisted = persist_suspended(core);
    Response::json(
        200,
        &Json::Obj(vec![
            ("status".into(), Json::str("stopped")),
            ("persisted".into(), Json::u64(persisted)),
        ]),
    )
}

fn persist_suspended(core: &Core) -> u64 {
    let Some(dir) = &core.cfg.snapshot_dir else {
        return 0;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return 0;
    }
    let jobs = core.jobs.lock().unwrap();
    let mut persisted = 0;
    for job in jobs.values() {
        let mut st = job.state.lock().unwrap();
        if st.phase.terminal() {
            continue;
        }
        st.phase = Phase::Suspended;
        let mut obj = vec![
            ("id".into(), Json::u64(job.id)),
            ("spec".into(), job.spec.to_json()),
        ];
        let points: Vec<Json> = st
            .points
            .iter()
            .map(|p| match &p.snap {
                Some(bytes) => Json::str(hex_encode(bytes)),
                None => Json::Null,
            })
            .collect();
        obj.push(("points".into(), Json::Arr(points)));
        let path = dir.join(format!("job-{}.json", job.id));
        let tmp = dir.join(format!(".job-{}.json.tmp", job.id));
        let body = Json::Obj(obj).render();
        let ok = std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, &path).is_ok();
        if ok {
            persisted += 1;
        }
    }
    persisted
}

/// Load drained jobs from the snapshot directory; returns them with their
/// restored per-point checkpoints. Files are consumed (deleted) on load.
fn restore_jobs(core: &Core) -> Vec<Arc<Job>> {
    let Some(dir) = &core.cfg.snapshot_dir else {
        return Vec::new();
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("job-") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Some(job) = parse_persisted(core, &text) else {
            continue;
        };
        let _ = std::fs::remove_file(&path);
        out.push(job);
    }
    out
}

fn parse_persisted(core: &Core, text: &str) -> Option<Arc<Job>> {
    let v = Json::parse(text).ok()?;
    let id = v.get("id")?.as_u64()?;
    let spec = JobSpec::from_json(v.get("spec")?).ok()?;
    let snaps: Vec<Option<Vec<u8>>> = v
        .get("points")?
        .as_arr()?
        .iter()
        .map(|p| match p {
            Json::Null => Some(None),
            other => hex_decode(other.as_str()?).ok().map(Some),
        })
        .collect::<Option<Vec<_>>>()?;
    if snaps.len() != spec.points.len() {
        return None;
    }
    // Keep fresh ids strictly above every restored id.
    let mut next = core.next_id.load(Ordering::SeqCst);
    while next <= id {
        match core
            .next_id
            .compare_exchange(next, id + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => break,
            Err(cur) => next = cur,
        }
    }
    let hash = spec.hash();
    Some(Job::new(id, spec, hash, snaps))
}

// ---------------------------------------------------------------------------
// The server proper
// ---------------------------------------------------------------------------

/// A running server: accept loop + worker pool.
pub struct Server {
    core: Arc<Core>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, restore drained jobs (when a snapshot dir is configured),
    /// spawn the worker pool and the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers;
        // Sanctioned wall-clock read: feeds only the uptime/throughput
        // metrics, never a result.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let core = Arc::new(Core {
            cfg,
            bound: Mutex::new(Some(addr)),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            queued: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            result_cache: Mutex::new(BTreeMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_rejected_static: AtomicU64::new(0),
            verify_cache: Mutex::new(BTreeMap::new()),
            verify_hits: AtomicU64::new(0),
            verify_misses: AtomicU64::new(0),
            latency_ms: Mutex::new(Histogram::default()),
            started,
            pool: Mutex::new(None),
        });

        let weak: Weak<Core> = Arc::downgrade(&core);
        let pool = Pool::new(workers, move |_, item, h| {
            if let Some(core) = weak.upgrade() {
                run_item(&core, item, h);
            }
        });
        *core.pool.lock().unwrap() = Some(pool);

        let restored = restore_jobs(&core);
        for job in restored {
            core.jobs.lock().unwrap().insert(job.id, Arc::clone(&job));
            core.queued.fetch_add(1, Ordering::SeqCst);
            if let Some(pool) = core.pool.lock().unwrap().as_ref() {
                pool.inject(WorkItem::Expand(job));
            }
        }

        let accept_core = Arc::clone(&core);
        let accept = std::thread::Builder::new()
            .name("isrf-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_core.draining() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let core = Arc::clone(&accept_core);
                    let _ = std::thread::Builder::new()
                        .name("isrf-serve-conn".into())
                        .spawn(move || handle_connection(&core, stream));
                }
            })?;

        Ok(Server {
            core,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the accept loop exits (a `POST /shutdown` arrived).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Drain and stop from process context (same path as `POST /shutdown`),
    /// then join the accept loop.
    pub fn stop(mut self) {
        let _ = shutdown(&self.core);
        unblock_accept(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// The accept loop only re-checks the drain flag after `accept` returns;
/// poke it with a throwaway connection.
fn unblock_accept(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

fn handle_connection(core: &Arc<Core>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    // Request/response bodies are small; Nagle + delayed ACK would add
    // tens of milliseconds per round trip.
    let _ = stream.set_nodelay(true);
    let write_half = stream.try_clone();
    let Ok(mut w) = write_half else { return };
    let mut r = BufReader::new(stream);
    loop {
        match read_request(&mut r, &core.cfg.limits) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let close = req.wants_close();
                let stop_after = req.method == "POST" && req.path() == "/shutdown";
                let resp = route(core, &req);
                if resp.write_to(&mut w, close || stop_after).is_err() {
                    return;
                }
                if stop_after {
                    let _ = w.flush();
                    if let Some(addr) = *core.bound.lock().unwrap() {
                        unblock_accept(addr);
                    }
                    return;
                }
                if close {
                    return;
                }
            }
            Err(HttpError::Truncated(_)) | Err(HttpError::Io(_)) => return,
            Err(e) => {
                let _ = Response::error(e.status(), &format!("{e}")).write_to(&mut w, true);
                return;
            }
        }
    }
}
