//! A hand-rolled HTTP/1.1 subset over blocking sockets.
//!
//! The vendor tree has no hyper/tokio, and the job API needs very little:
//! request line + headers + `Content-Length` bodies, keep-alive
//! connections, and responses with a status, a few headers and a body.
//! Everything else — chunked transfer coding, upgrades, pipelining beyond
//! read-one/write-one — is rejected or ignored. Limits are explicit and
//! enforced *before* buffering, so a hostile peer cannot balloon memory:
//! the header block and the body each have a byte cap, and the body is
//! read only after its declared length passes the cap.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Byte caps for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max bytes for the request line + headers (incl. terminator).
    pub max_head: usize,
    /// Max bytes for the declared body.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid or unsupported request; maps to 400.
    Bad(&'static str),
    /// A limit was exceeded; maps to 431 (head) / 413 (body).
    TooLarge(&'static str),
    /// The peer closed or the stream ended mid-request; no response
    /// can be delivered.
    Truncated(&'static str),
    /// Transport error.
    Io(io::ErrorKind),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Truncated(m) => write!(f, "truncated request: {m}"),
            HttpError::Io(k) => write!(f, "io error: {k:?}"),
        }
    }
}

impl HttpError {
    /// The HTTP status this parse failure should be reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::TooLarge("body exceeds limit") => 413,
            HttpError::TooLarge(_) => 431,
            HttpError::Truncated(_) | HttpError::Io(_) => 400,
        }
    }
}

/// Methods the server understands.
const METHODS: [&str; 6] = ["GET", "POST", "DELETE", "PUT", "HEAD", "OPTIONS"];

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// The request target (path + optional query), e.g. `/jobs/3`.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The path component of the target (query stripped).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }
}

/// Read one request from `r`.
///
/// Returns `Ok(None)` on clean EOF before the first byte (the peer closed
/// a keep-alive connection between requests).
///
/// # Errors
///
/// [`HttpError`] on malformed input, exceeded limits, mid-request EOF or
/// transport failure.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Option<Request>, HttpError> {
    // Accumulate the head up to CRLFCRLF, byte-capped.
    let mut head: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(|e| HttpError::Io(e.kind()))?;
        if buf.is_empty() {
            return if head.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Truncated("eof inside header block"))
            };
        }
        // Take at most one byte past the cap: the overflow check below
        // turns that extra byte into a deterministic TooLarge error.
        let take = buf.len().min(limits.max_head + 1 - head.len());
        let before = head.len();
        head.extend_from_slice(&buf[..take]);
        let scan_from = before.saturating_sub(3);
        if let Some(pos) = find_terminator(&head[scan_from..]) {
            let end = scan_from + pos + 4;
            if end > limits.max_head {
                return Err(HttpError::TooLarge("header block exceeds limit"));
            }
            let consumed = take - (head.len() - end);
            r.consume(consumed);
            head.truncate(end);
            return parse_head(&head, r, limits).map(Some);
        }
        if head.len() > limits.max_head {
            return Err(HttpError::TooLarge("header block exceeds limit"));
        }
        r.consume(take);
    }
}

fn find_terminator(b: &[u8]) -> Option<usize> {
    b.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8], r: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(&head[..head.len() - 4])
        .map_err(|_| HttpError::Bad("head not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts
        .next()
        .ok_or(HttpError::Bad("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Bad("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Bad("malformed request line"));
    }
    if !METHODS.contains(&method) {
        return Err(HttpError::Bad("unknown method"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Bad("target must be origin-form"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Bad("header line missing ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Bad("chunked transfer coding unsupported"));
    }
    if let Some(cl) = req.header("content-length") {
        let n: usize = cl
            .parse()
            .map_err(|_| HttpError::Bad("unparseable content-length"))?;
        if n > limits.max_body {
            return Err(HttpError::TooLarge("body exceeds limit"));
        }
        let mut body = vec![0u8; n];
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Truncated("eof inside body")
            } else {
                HttpError::Io(e.kind())
            }
        })?;
        req.body = body;
    }
    Ok(req)
}

/// One response, built then written in a single shot.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length` / `Content-Type` /
    /// `Connection` (which are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Content type (emitted when the body is non-empty).
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, v: &crate::json::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: v.render().into_bytes(),
        }
    }

    /// A raw pre-rendered JSON response (for cached payloads).
    pub fn json_raw(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// An error response with a JSON `{"error": msg}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            &crate::json::Json::Obj(vec![("error".into(), crate::json::Json::str(msg))]),
        )
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize to `w` (HTTP/1.1, explicit `Content-Length`).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let reason = reason(self.status);
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason);
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        if !self.body.is_empty() {
            head.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), &Limits::default())
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/jobs");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn keep_alive_reads_two_requests() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let a = read_request(&mut r, &Limits::default()).unwrap().unwrap();
        let b = read_request(&mut r, &Limits::default()).unwrap().unwrap();
        assert_eq!(a.path(), "/a");
        assert_eq!(b.path(), "/b");
        assert!(b.wants_close());
        assert!(read_request(&mut r, &Limits::default()).unwrap().is_none());
    }

    #[test]
    fn response_writes_head_and_body() {
        let mut out = Vec::new();
        Response::text(200, "hi")
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
