//! A small work-stealing worker pool.
//!
//! Jobs enter through a global injector queue; each worker also owns a
//! local deque it can push follow-on work onto (a sweep job expands its
//! points locally). Workers prefer their own deque (LIFO end, for
//! locality), then the injector (FIFO, for fairness), then steal from
//! the FIFO end of a sibling's deque. Idle workers park on a condvar
//! with a timeout so shutdown and late injections are never missed.
//!
//! The pool is deliberately generic over the item type so the tests can
//! exercise the scheduling logic without dragging in the simulator.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Counters one worker maintains about itself.
#[derive(Debug, Default)]
struct WorkerCounters {
    /// Items this worker finished running.
    processed: AtomicU64,
    /// Of those, items it stole from a sibling's deque.
    stolen: AtomicU64,
    /// Microseconds spent inside the run function.
    busy_micros: AtomicU64,
}

/// A snapshot of one worker's counters, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Items this worker finished running.
    pub processed: u64,
    /// Of those, items stolen from a sibling.
    pub stolen: u64,
    /// Microseconds spent inside the run function since startup.
    pub busy_micros: u64,
}

struct Shared<T> {
    /// Global FIFO injector; also the condvar's guard.
    injector: Mutex<VecDeque<T>>,
    cv: Condvar,
    /// Per-worker local deques. Lock order: a worker never holds two at
    /// once, and touches the injector only when holding none.
    locals: Vec<Mutex<VecDeque<T>>>,
    counters: Vec<WorkerCounters>,
    stop: AtomicBool,
}

impl<T> Shared<T> {
    /// Grab the next item for worker `id`, or `None` if everything is
    /// empty right now. Sets `*stolen` when the item came from a sibling.
    fn next(&self, id: usize, stolen: &mut bool) -> Option<T> {
        *stolen = false;
        if let Some(item) = self.locals[id].lock().unwrap().pop_back() {
            return Some(item);
        }
        if let Some(item) = self.injector.lock().unwrap().pop_front() {
            return Some(item);
        }
        for off in 1..self.locals.len() {
            let victim = (id + off) % self.locals.len();
            if let Some(item) = self.locals[victim].lock().unwrap().pop_front() {
                *stolen = true;
                return Some(item);
            }
        }
        None
    }
}

/// Handle passed to the run function so it can push follow-on work onto
/// its own deque (stealable by siblings).
pub struct WorkerHandle<'a, T> {
    shared: &'a Shared<T>,
    id: usize,
}

impl<T> WorkerHandle<'_, T> {
    /// This worker's index in `0..workers`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Push follow-on work onto this worker's own deque and wake a
    /// sibling to come steal it.
    pub fn push(&self, item: T) {
        self.shared.locals[self.id].lock().unwrap().push_back(item);
        self.shared.cv.notify_all();
    }
}

/// The pool itself. Dropping without [`Pool::shutdown`] detaches the
/// workers (they exit once told to stop); call `shutdown` for a clean
/// join.
pub struct Pool<T> {
    shared: Arc<Shared<T>>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> Pool<T> {
    /// Spawn `workers` threads, each running `run(worker_id, item, handle)`
    /// for every item it obtains. `run` must not panic; wrap fallible work
    /// in `catch_unwind` at the call site.
    pub fn new<F>(workers: usize, run: F) -> Pool<T>
    where
        F: Fn(usize, T, &WorkerHandle<'_, T>) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            counters: (0..workers).map(|_| WorkerCounters::default()).collect(),
            stop: AtomicBool::new(false),
        });
        let run = Arc::new(run);
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("isrf-serve-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared, &*run))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Enqueue an item on the global injector and wake a worker.
    pub fn inject(&self, item: T) {
        self.shared.injector.lock().unwrap().push_back(item);
        self.shared.cv.notify_all();
    }

    /// Items currently waiting in the injector (not counting local deques).
    pub fn injector_depth(&self) -> usize {
        self.shared.injector.lock().unwrap().len()
    }

    /// Per-worker counter snapshots, indexed by worker id.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .counters
            .iter()
            .map(|c| WorkerStats {
                processed: c.processed.load(Ordering::Relaxed),
                stolen: c.stolen.load(Ordering::Relaxed),
                busy_micros: c.busy_micros.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Tell the workers to stop once the queues drain, then join them.
    /// Items already queued are still run; in-flight work observes the
    /// stop flag only through its own cancellation checks. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<T, F>(id: usize, shared: &Shared<T>, run: &F)
where
    F: Fn(usize, T, &WorkerHandle<'_, T>),
{
    let handle = WorkerHandle { shared, id };
    let mut stolen = false;
    loop {
        if let Some(item) = shared.next(id, &mut stolen) {
            // Sanctioned wall-clock read: feeds only the worker
            // utilization metrics, never a result.
            #[allow(clippy::disallowed_methods)]
            let t0 = Instant::now();
            run(id, item, &handle);
            let c = &shared.counters[id];
            c.processed.fetch_add(1, Ordering::Relaxed);
            if stolen {
                c.stolen.fetch_add(1, Ordering::Relaxed);
            }
            c.busy_micros
                .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            continue;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Park until new work or shutdown; the timeout covers the race
        // where an inject lands between our empty check and the wait.
        let guard = shared.injector.lock().unwrap();
        if guard.is_empty() && !shared.stop.load(Ordering::SeqCst) {
            let _unused = shared
                .cv
                .wait_timeout(guard, Duration::from_millis(20))
                .unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_everything_once() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut pool = {
            let hits = Arc::clone(&hits);
            Pool::new(4, move |_, n: usize, _| {
                hits.fetch_add(n, Ordering::SeqCst);
            })
        };
        for n in 1..=100 {
            pool.inject(n);
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn local_pushes_are_stealable_and_run() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut pool = {
            let hits = Arc::clone(&hits);
            // Each injected seed fans out into 10 local follow-ons.
            Pool::new(3, move |_, n: usize, h: &WorkerHandle<'_, usize>| {
                if n >= 1000 {
                    for k in 0..10 {
                        h.push(n - 1000 + k);
                    }
                } else {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        for seed in 0..8 {
            pool.inject(1000 + seed * 10);
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 80);
        // 8 seeds + 80 follow-ons all ran somewhere.
        let total: u64 = pool.worker_stats().iter().map(|s| s.processed).sum();
        assert_eq!(total, 88);
    }

    #[test]
    fn worker_stats_count_processed() {
        let mut pool = Pool::new(2, move |_, _n: usize, _| {});
        for n in 0..50 {
            pool.inject(n);
        }
        // Wait for drain: poll the injector, then give locals a beat.
        while pool.injector_depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(30));
        let total: u64 = pool.worker_stats().iter().map(|s| s.processed).sum();
        pool.shutdown();
        assert_eq!(total, 50);
    }
}
