//! Point execution: turn a [`PointSpec`] into a running machine, advance
//! it in bounded slices, checkpoint it, and collect the outcome.
//!
//! Named apps go through [`isrf_apps::prepare_app`]; inline kernels go
//! through a canonical source harness (deterministic input fill, one
//! kernel invocation, outputs read back from the SRF). Both paths share
//! the process-global schedule and tape memos, so a warm server compiles
//! each distinct kernel exactly once no matter how many jobs reference it.

use std::sync::Arc;

use isrf_apps::common::Prepared;
use isrf_apps::{prepare_app, Profile};
use isrf_core::config::MachineConfig;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_kernel::ir::StreamKind;
use isrf_kernel::sched::{schedule_cached, SchedParams};
use isrf_sim::{Diagnostic, Machine, ProgramVerifier, StreamBinding, StreamProgram};
use isrf_trace::{chrome, Tracer};
use isrf_verify::Verifier;

use crate::json::Json;
use crate::spec::{AppRef, PointSpec};

/// How a finished point's output words are located.
#[derive(Debug)]
enum OutputSel {
    /// A memory region `(base, words)` (named apps).
    Mem(u32, u32),
    /// An SRF stream (source-harness output streams), with its label.
    Stream(StreamBinding),
}

/// The result of one completed point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The machine's stats for the run.
    pub stats: RunStats,
    /// Labeled output words: `mem@<base>` regions for named apps, stream
    /// names for source kernels.
    pub outputs: Vec<(String, Vec<Word>)>,
    /// Chrome trace JSON, when tracing was requested.
    pub trace_json: Option<String>,
}

impl PointOutcome {
    /// Render as the wire JSON object (the trace ships separately).
    pub fn to_json(&self) -> Json {
        let b = &self.stats.breakdown;
        Json::Obj(vec![
            ("cycles".into(), Json::u64(self.stats.cycles)),
            (
                "main_loop_cycles".into(),
                Json::u64(self.stats.main_loop_cycles),
            ),
            (
                "breakdown".into(),
                Json::Obj(vec![
                    ("kernel_loop".into(), Json::u64(b.kernel_loop)),
                    ("mem_stall".into(), Json::u64(b.mem_stall)),
                    ("srf_stall".into(), Json::u64(b.srf_stall)),
                    ("overhead".into(), Json::u64(b.overhead)),
                ]),
            ),
            (
                "mem".into(),
                Json::Obj(vec![
                    ("bytes_read".into(), Json::u64(self.stats.mem.bytes_read)),
                    (
                        "bytes_written".into(),
                        Json::u64(self.stats.mem.bytes_written),
                    ),
                ]),
            ),
            (
                "srf".into(),
                Json::Obj(vec![
                    ("seq_words".into(), Json::u64(self.stats.srf.seq_words)),
                    (
                        "inlane_words".into(),
                        Json::u64(self.stats.srf.inlane_words),
                    ),
                    (
                        "crosslane_words".into(),
                        Json::u64(self.stats.srf.crosslane_words),
                    ),
                ]),
            ),
            (
                "outputs".into(),
                Json::Arr(
                    self.outputs
                        .iter()
                        .map(|(name, words)| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(name.clone())),
                                (
                                    "words".into(),
                                    Json::Arr(
                                        words.iter().map(|&w| Json::u64(u64::from(w))).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A point being executed: machine + program + output selectors.
pub struct PointRunner {
    machine: Machine,
    program: StreamProgram,
    outputs: Vec<(String, OutputSel)>,
    trace: bool,
}

impl PointRunner {
    /// Prepare a fresh runner for `spec`.
    ///
    /// # Errors
    ///
    /// A rendered message for anything the submission can cause: parse or
    /// lowering failures of inline source, scheduling failure, or static
    /// verification diagnostics.
    pub fn new(spec: &PointSpec, trace: bool) -> Result<PointRunner, String> {
        let mut runner = Self::build(spec)?;
        runner.machine.set_engine(spec.engine);
        // Verify up front on both paths so a hazardous program surfaces as
        // a structured failure instead of a worker panic mid-simulation.
        runner
            .machine
            .verify_program(&runner.program)
            .map_err(|e| format!("static verification failed: {e}"))?;
        runner.trace = trace;
        if trace {
            runner.machine.set_tracer(Tracer::recording(1 << 20));
        }
        Ok(runner)
    }

    /// Prepare a runner and restore a checkpoint into it (drain/restart
    /// path). The tracer is installed *after* the restore, so a resumed
    /// trace covers post-restore events only.
    ///
    /// # Errors
    ///
    /// As [`PointRunner::new`], plus snapshot decode/mismatch failures.
    pub fn resume(spec: &PointSpec, trace: bool, snapshot: &[u8]) -> Result<PointRunner, String> {
        let mut runner = PointRunner::new(spec, false)?;
        runner.machine.take_tracer();
        runner
            .machine
            .restore_state(&runner.program, snapshot)
            .map_err(|e| format!("checkpoint restore failed: {e}"))?;
        if trace {
            runner.machine.set_tracer(Tracer::recording(1 << 20));
        }
        runner.trace = trace;
        Ok(runner)
    }

    /// Construct machine + program for `spec` without choosing an engine,
    /// verifying, or installing a tracer. Shared between execution
    /// ([`PointRunner::new`]) and pre-admission analysis
    /// ([`analyze_point`]) so the two can never drift apart.
    fn build(spec: &PointSpec) -> Result<PointRunner, String> {
        match &spec.app {
            AppRef::Named(name) => {
                let Prepared {
                    machine,
                    program,
                    outputs,
                } = prepare_app(name, spec.config, spec.profile);
                Ok(PointRunner {
                    machine,
                    program,
                    outputs: outputs
                        .iter()
                        .map(|&(base, words)| {
                            (format!("mem@{base:#x}"), OutputSel::Mem(base, words))
                        })
                        .collect(),
                    trace: false,
                })
            }
            AppRef::Source {
                src,
                records_per_lane,
                table_records_per_lane,
                seed,
            } => Self::from_source(src, *records_per_lane, *table_records_per_lane, *seed, spec),
        }
    }

    fn from_source(
        src: &str,
        records_per_lane: u32,
        table_records_per_lane: u32,
        seed: u32,
        spec: &PointSpec,
    ) -> Result<PointRunner, String> {
        // `Paper` quadruples the workload for inline kernels.
        let rpl = match spec.profile {
            Profile::Small => records_per_lane,
            Profile::Paper => records_per_lane.saturating_mul(4).min(4096),
        };
        let kernel = Arc::new(isrf_lang::parse_kernel(src).map_err(|e| format!("{e}"))?);
        let cfg = MachineConfig::preset(spec.config);
        let mut machine = Machine::new(cfg).map_err(|e| format!("{e}"))?;
        machine.set_verifier(Some(Arc::new(Verifier::new())));
        let lanes = machine.config().lanes as u32;
        let sched = schedule_cached(&kernel, &SchedParams::from_machine(machine.config()))
            .map_err(|e| format!("scheduling failed: {e}"))?;

        let mut bindings = Vec::new();
        let mut outputs = Vec::new();
        for (i, decl) in kernel.streams.iter().enumerate() {
            let records = match decl.kind {
                StreamKind::IdxInRead | StreamKind::IdxCrossRead => table_records_per_lane * lanes,
                _ => rpl * lanes,
            };
            let b = machine.alloc_stream(1, records);
            match decl.kind {
                StreamKind::SeqIn
                | StreamKind::CondIn
                | StreamKind::CondLaneIn
                | StreamKind::IdxInRead
                | StreamKind::IdxCrossRead => {
                    let salt = seed.wrapping_add(i as u32).wrapping_mul(0x9e37_79b9);
                    let data: Vec<Word> = (0..b.words())
                        .map(|k| k.wrapping_mul(2654435761).wrapping_add(salt))
                        .collect();
                    machine.write_stream(&b, &data);
                }
                StreamKind::SeqOut | StreamKind::CondOut | StreamKind::IdxInWrite => {
                    outputs.push((decl.name.clone(), OutputSel::Stream(b)));
                }
            }
            bindings.push(b);
        }

        let mut program = StreamProgram::new();
        program.kernel(kernel, sched, bindings, u64::from(rpl), &[]);
        Ok(PointRunner {
            machine,
            program,
            outputs,
            trace: false,
        })
    }

    /// Cycles simulated so far on this machine (progress reporting).
    pub fn cycles(&self) -> u64 {
        self.machine.now()
    }

    /// Advance in `chunk`-cycle slices while `keep_going` approves; see
    /// [`Machine::run_while`]. `keep_going` receives the machine's current
    /// cycle (for progress reporting). Returns the outcome on completion,
    /// `None` when paused cycle-exactly (checkpoint with
    /// [`PointRunner::checkpoint`]).
    pub fn run(
        &mut self,
        chunk: u64,
        mut keep_going: impl FnMut(u64) -> bool,
    ) -> Option<PointOutcome> {
        let stats = self
            .machine
            .run_while(&self.program, chunk, |m| keep_going(m.now()))?;
        let trace_json = if self.trace {
            let recorder = self
                .machine
                .take_tracer()
                .into_recorder()
                .expect("recording tracer was installed");
            Some(chrome::export(recorder.ring().iter()))
        } else {
            None
        };
        let outputs = self
            .outputs
            .iter()
            .map(|(name, sel)| {
                let words = match sel {
                    OutputSel::Mem(base, words) => self
                        .machine
                        .mem()
                        .memory()
                        .read_block(*base, *words as usize),
                    OutputSel::Stream(b) => self.machine.read_stream(b),
                };
                (name.clone(), words)
            })
            .collect();
        Some(PointOutcome {
            stats,
            outputs,
            trace_json,
        })
    }

    /// Serialize the paused machine (see [`Machine::save_state`]).
    pub fn checkpoint(&self) -> Vec<u8> {
        self.machine.save_state(&self.program)
    }
}

/// Render one verifier finding as a wire JSON object.
fn diag_json(d: &Diagnostic) -> Json {
    let mut obj = vec![
        ("code".into(), Json::str(d.code.clone())),
        ("check".into(), Json::str(d.check.clone())),
        ("message".into(), Json::str(d.message.clone())),
    ];
    if let Some(op) = d.prog_op {
        obj.push(("prog_op".into(), Json::u64(op as u64)));
    }
    if let Some(k) = &d.kernel {
        obj.push(("kernel".into(), Json::str(k.clone())));
    }
    if let Some(line) = d.line {
        obj.push(("line".into(), Json::u64(u64::from(line))));
    }
    if !d.notes.is_empty() {
        obj.push((
            "notes".into(),
            Json::Arr(d.notes.iter().map(|n| Json::str(n.clone())).collect()),
        ));
    }
    Json::Obj(obj)
}

/// Statically analyze `spec` without simulating a cycle: build the same
/// machine + program a worker would run and hand them to the whole-program
/// verifier. `Ok(())` means the point is admissible; `Err` carries one
/// wire-ready JSON object per finding. Build failures (parse, lowering,
/// scheduling) are reported as a single `E000`/`build` pseudo-diagnostic
/// so every rejection reaches the client in the same structured shape.
///
/// This is the server's pre-admission gate (`POST /jobs` rejects with
/// `422` before anything is queued); workers still re-verify in
/// [`PointRunner::new`] as defense in depth.
///
/// # Errors
///
/// The structured diagnostics that make the point inadmissible.
pub fn analyze_point(spec: &PointSpec) -> Result<(), Vec<Json>> {
    let runner = match PointRunner::build(spec) {
        Ok(r) => r,
        Err(msg) => {
            return Err(vec![Json::Obj(vec![
                ("code".into(), Json::str("E000")),
                ("check".into(), Json::str("build")),
                ("message".into(), Json::str(msg)),
            ])])
        }
    };
    let diags = Verifier::new().verify(
        runner.machine.config(),
        &runner.machine.verify_env(),
        &runner.program,
    );
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags.iter().map(diag_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::ConfigName;
    use isrf_sim::ExecEngine;

    fn sort_spec() -> PointSpec {
        PointSpec {
            app: AppRef::Named("sort".into()),
            config: ConfigName::Isrf4,
            profile: Profile::Small,
            engine: ExecEngine::Tape,
        }
    }

    #[test]
    fn named_point_runs_and_matches_direct() {
        let mut r = PointRunner::new(&sort_spec(), false).unwrap();
        let out = r.run(10_000, |_| true).unwrap();
        // Direct run through the same preparation path.
        let mut pr = prepare_app("sort", ConfigName::Isrf4, Profile::Small);
        let stats = pr.machine.run(&pr.program);
        assert_eq!(out.stats, stats);
        for ((_, got), &(base, words)) in out.outputs.iter().zip(&pr.outputs) {
            let want = pr.machine.mem().memory().read_block(base, words as usize);
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn pause_checkpoint_resume_is_cycle_exact() {
        let spec = sort_spec();
        let mut straight = PointRunner::new(&spec, false).unwrap();
        let full = straight.run(5_000, |_| true).unwrap();

        let mut first = PointRunner::new(&spec, false).unwrap();
        let mut slices = 0;
        assert!(first
            .run(full.stats.cycles / 3, |_| {
                slices += 1;
                slices <= 1
            })
            .is_none());
        let snap = first.checkpoint();
        let mut resumed = PointRunner::resume(&spec, false, &snap).unwrap();
        let out = resumed.run(1 << 20, |_| true).unwrap();
        assert_eq!(out.stats, full.stats);
        assert_eq!(out.outputs, full.outputs);
    }

    #[test]
    fn source_kernel_computes_expected_words() {
        let spec = PointSpec {
            app: AppRef::Source {
                src: "kernel triple(istream<int> in, ostream<int> out) {\n\
                      int a, c;\n while (!eos(in)) { in >> a; c = a * 3 + 1; out << c; } }"
                    .into(),
                records_per_lane: 8,
                table_records_per_lane: 4,
                seed: 7,
            },
            config: ConfigName::Base,
            profile: Profile::Small,
            engine: ExecEngine::Tape,
        };
        let mut r = PointRunner::new(&spec, false).unwrap();
        let out = r.run(10_000, |_| true).unwrap();
        assert_eq!(out.outputs.len(), 1);
        let (name, words) = &out.outputs[0];
        assert_eq!(name, "out");
        let salt = 7u32.wrapping_mul(0x9e37_79b9);
        for (k, &w) in words.iter().enumerate() {
            let a = (k as u32).wrapping_mul(2654435761).wrapping_add(salt);
            assert_eq!(w, a.wrapping_mul(3).wrapping_add(1));
        }
    }

    #[test]
    fn bad_source_is_a_structured_error() {
        let spec = PointSpec {
            app: AppRef::Source {
                src: "kernel oops(".into(),
                records_per_lane: 8,
                table_records_per_lane: 4,
                seed: 0,
            },
            config: ConfigName::Base,
            profile: Profile::Small,
            engine: ExecEngine::Tape,
        };
        assert!(PointRunner::new(&spec, false).is_err());
    }
}
