//! Job specifications: the JSON wire form, validation, and the canonical
//! 128-bit content hash that keys the result cache.
//!
//! A job is one simulation point or a sweep of them. Each point names
//! either a registered benchmark app ([`isrf_apps::APPS`]) or carries an
//! inline KernelC-subset source kernel, plus a machine configuration, a
//! sizing profile and an execution engine. Hashing uses the same
//! [`isrf_kernel::hash::StableHasher`] as the tape/schedule memos, so two
//! structurally identical submissions — from different clients, or across
//! a server restart — key the same cache entry.

use isrf_apps::Profile;
use isrf_core::config::ConfigName;
use isrf_kernel::hash::StableHasher;
use isrf_sim::ExecEngine;

use crate::json::Json;

/// Cap on points per sweep job.
pub const MAX_SWEEP_POINTS: usize = 256;
/// Cap on inline kernel source bytes.
pub const MAX_SOURCE_BYTES: usize = 64 * 1024;

/// What a point simulates: a registered app or an inline kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppRef {
    /// A benchmark app from [`isrf_apps::APPS`].
    Named(String),
    /// An inline KernelC-subset kernel run on the canonical source
    /// harness (sequential inputs filled from `seed`, indexed tables
    /// replicated per lane, outputs read back from the SRF).
    Source {
        /// The kernel source text.
        src: String,
        /// Records per lane for sequential inputs/outputs (also the
        /// kernel's iteration count).
        records_per_lane: u32,
        /// Records per lane for indexed table streams.
        table_records_per_lane: u32,
        /// Salt for the deterministic input data.
        seed: u32,
    },
}

/// One simulation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointSpec {
    /// What to simulate.
    pub app: AppRef,
    /// Machine configuration preset.
    pub config: ConfigName,
    /// Sizing profile.
    pub profile: Profile,
    /// Kernel-execution engine.
    pub engine: ExecEngine,
}

impl PointSpec {
    /// Stable 128-bit hash of the fields that determine the point's
    /// *static verification* verdict: the program (app or source harness
    /// shape) and the machine configuration. The execution engine is
    /// deliberately excluded — both engines run the same verified
    /// program — so an engine sweep of one app verifies once.
    pub fn verify_hash(&self) -> u128 {
        let mut h = StableHasher::new();
        h.write_u8(b'V');
        match &self.app {
            AppRef::Named(name) => {
                h.write_u8(0);
                h.write_usize(name.len());
                for b in name.bytes() {
                    h.write_u8(b);
                }
            }
            AppRef::Source {
                src,
                records_per_lane,
                table_records_per_lane,
                seed,
            } => {
                h.write_u8(1);
                h.write_usize(src.len());
                for b in src.bytes() {
                    h.write_u8(b);
                }
                h.write_u32(*records_per_lane);
                h.write_u32(*table_records_per_lane);
                h.write_u32(*seed);
            }
        }
        h.write_u8(
            ConfigName::ALL
                .iter()
                .position(|&c| c == self.config)
                .expect("preset config") as u8,
        );
        h.write_u8(match self.profile {
            Profile::Small => 0,
            Profile::Paper => 1,
        });
        h.finish128()
    }
}

/// A full job: one or more points plus job-level options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The points, executed as independently stealable work items.
    pub points: Vec<PointSpec>,
    /// Record trace events and expose a Chrome trace at
    /// `GET /jobs/:id/trace` (single-point jobs only).
    pub trace: bool,
    /// Opaque client salt folded into the job hash; lets a load generator
    /// defeat the result cache deliberately.
    pub nonce: Option<String>,
}

fn parse_config(v: Option<&Json>) -> Result<ConfigName, String> {
    match v {
        None => Ok(ConfigName::Base),
        Some(j) => {
            let s = j.as_str().ok_or("\"config\" must be a string")?;
            ConfigName::ALL
                .into_iter()
                .find(|c| format!("{c}").eq_ignore_ascii_case(s))
                .ok_or_else(|| format!("unknown config {s:?} (Base|ISRF1|ISRF4|Cache)"))
        }
    }
}

fn parse_profile(v: Option<&Json>) -> Result<Profile, String> {
    match v {
        None => Ok(Profile::Small),
        Some(j) => match j.as_str() {
            Some(s) if s.eq_ignore_ascii_case("small") => Ok(Profile::Small),
            Some(s) if s.eq_ignore_ascii_case("paper") => Ok(Profile::Paper),
            _ => Err("\"profile\" must be \"small\" or \"paper\"".into()),
        },
    }
}

fn parse_engine(v: Option<&Json>) -> Result<ExecEngine, String> {
    match v {
        None => Ok(ExecEngine::Tape),
        Some(j) => match j.as_str() {
            Some(s) if s.eq_ignore_ascii_case("tape") => Ok(ExecEngine::Tape),
            Some(s) if s.eq_ignore_ascii_case("interp") => Ok(ExecEngine::Interp),
            _ => Err("\"engine\" must be \"tape\" or \"interp\"".into()),
        },
    }
}

fn parse_dim(v: Option<&Json>, name: &str, default: u32, max: u32) -> Result<u32, String> {
    match v {
        None => Ok(default),
        Some(j) => match j.as_u64() {
            Some(n) if n >= 1 && n <= u64::from(max) => Ok(n as u32),
            _ => Err(format!("{name:?} must be an integer in 1..={max}")),
        },
    }
}

fn parse_point(obj: &Json) -> Result<PointSpec, String> {
    let app = match (obj.get("app"), obj.get("source")) {
        (Some(_), Some(_)) => return Err("give \"app\" or \"source\", not both".into()),
        (Some(a), None) => {
            let name = a.as_str().ok_or("\"app\" must be a string")?;
            if !isrf_apps::APPS.contains(&name) {
                return Err(format!(
                    "unknown app {name:?} (expected one of {:?})",
                    isrf_apps::APPS
                ));
            }
            AppRef::Named(name.to_string())
        }
        (None, Some(s)) => {
            let src = s.as_str().ok_or("\"source\" must be a string")?;
            if src.len() > MAX_SOURCE_BYTES {
                return Err(format!("\"source\" exceeds {MAX_SOURCE_BYTES} bytes"));
            }
            AppRef::Source {
                src: src.to_string(),
                records_per_lane: parse_dim(
                    obj.get("records_per_lane"),
                    "records_per_lane",
                    64,
                    1024,
                )?,
                table_records_per_lane: parse_dim(
                    obj.get("table_records_per_lane"),
                    "table_records_per_lane",
                    64,
                    4096,
                )?,
                seed: obj.get("seed").map_or(Ok(1), |j| {
                    j.as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .map(|n| n as u32)
                        .ok_or_else(|| "\"seed\" must be a u32".to_string())
                })?,
            }
        }
        (None, None) => return Err("a point needs \"app\" or \"source\"".into()),
    };
    Ok(PointSpec {
        app,
        config: parse_config(obj.get("config"))?,
        profile: parse_profile(obj.get("profile"))?,
        engine: parse_engine(obj.get("engine"))?,
    })
}

impl JobSpec {
    /// Parse and validate a submission body.
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first problem (the server
    /// returns it in a 400).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("job must be a JSON object".into());
        }
        let points = match v.get("sweep") {
            Some(sweep) => {
                let arr = sweep.as_arr().ok_or("\"sweep\" must be an array")?;
                if arr.is_empty() {
                    return Err("\"sweep\" must not be empty".into());
                }
                if arr.len() > MAX_SWEEP_POINTS {
                    return Err(format!("\"sweep\" exceeds {MAX_SWEEP_POINTS} points"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, p)| parse_point(p).map_err(|e| format!("sweep[{i}]: {e}")))
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => vec![parse_point(v)?],
        };
        let trace = match v.get("trace") {
            None => false,
            Some(j) => j.as_bool().ok_or("\"trace\" must be a boolean")?,
        };
        if trace && points.len() != 1 {
            return Err("\"trace\" is supported for single-point jobs only".into());
        }
        let nonce = match v.get("nonce") {
            None => None,
            Some(j) => Some(j.as_str().ok_or("\"nonce\" must be a string")?.to_string()),
        };
        Ok(JobSpec {
            points,
            trace,
            nonce,
        })
    }

    /// The canonical JSON form (defaults made explicit) — what job status
    /// echoes back, and what the drain persister writes to disk.
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = Vec::new();
        let pts: Vec<Json> = self.points.iter().map(point_json).collect();
        obj.push(("sweep".into(), Json::Arr(pts)));
        obj.push(("trace".into(), Json::Bool(self.trace)));
        if let Some(n) = &self.nonce {
            obj.push(("nonce".into(), Json::str(n.clone())));
        }
        Json::Obj(obj)
    }

    /// Stable 128-bit content hash over every semantically relevant field.
    pub fn hash(&self) -> u128 {
        let mut h = StableHasher::new();
        h.write_u8(b'J');
        h.write_usize(self.points.len());
        for p in &self.points {
            match &p.app {
                AppRef::Named(name) => {
                    h.write_u8(0);
                    h.write_usize(name.len());
                    for b in name.bytes() {
                        h.write_u8(b);
                    }
                }
                AppRef::Source {
                    src,
                    records_per_lane,
                    table_records_per_lane,
                    seed,
                } => {
                    h.write_u8(1);
                    h.write_usize(src.len());
                    for b in src.bytes() {
                        h.write_u8(b);
                    }
                    h.write_u32(*records_per_lane);
                    h.write_u32(*table_records_per_lane);
                    h.write_u32(*seed);
                }
            }
            h.write_u8(
                ConfigName::ALL
                    .iter()
                    .position(|&c| c == p.config)
                    .expect("preset config") as u8,
            );
            h.write_u8(match p.profile {
                Profile::Small => 0,
                Profile::Paper => 1,
            });
            h.write_u8(match p.engine {
                ExecEngine::Tape => 0,
                ExecEngine::Interp => 1,
            });
        }
        h.write_u8(u8::from(self.trace));
        match &self.nonce {
            None => h.write_u8(0),
            Some(n) => {
                h.write_u8(1);
                h.write_usize(n.len());
                for b in n.bytes() {
                    h.write_u8(b);
                }
            }
        }
        h.finish128()
    }
}

fn point_json(p: &PointSpec) -> Json {
    let mut obj: Vec<(String, Json)> = Vec::new();
    match &p.app {
        AppRef::Named(name) => obj.push(("app".into(), Json::str(name.clone()))),
        AppRef::Source {
            src,
            records_per_lane,
            table_records_per_lane,
            seed,
        } => {
            obj.push(("source".into(), Json::str(src.clone())));
            obj.push((
                "records_per_lane".into(),
                Json::u64(u64::from(*records_per_lane)),
            ));
            obj.push((
                "table_records_per_lane".into(),
                Json::u64(u64::from(*table_records_per_lane)),
            ));
            obj.push(("seed".into(), Json::u64(u64::from(*seed))));
        }
    }
    obj.push(("config".into(), Json::str(format!("{}", p.config))));
    obj.push((
        "profile".into(),
        Json::str(match p.profile {
            Profile::Small => "small",
            Profile::Paper => "paper",
        }),
    ));
    obj.push((
        "engine".into(),
        Json::str(match p.engine {
            ExecEngine::Tape => "tape",
            ExecEngine::Interp => "interp",
        }),
    ));
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&Json::parse(s).unwrap())
    }

    #[test]
    fn single_point_with_defaults() {
        let j = parse(r#"{"app":"sort"}"#).unwrap();
        assert_eq!(j.points.len(), 1);
        assert_eq!(j.points[0].config, ConfigName::Base);
        assert_eq!(j.points[0].profile, Profile::Small);
        assert_eq!(j.points[0].engine, ExecEngine::Tape);
        assert!(!j.trace);
    }

    #[test]
    fn sweep_and_options() {
        let j = parse(
            r#"{"sweep":[{"app":"sort","config":"isrf4"},{"app":"filter","engine":"interp"}],
                "nonce":"x"}"#,
        )
        .unwrap();
        assert_eq!(j.points.len(), 2);
        assert_eq!(j.points[0].config, ConfigName::Isrf4);
        assert_eq!(j.points[1].engine, ExecEngine::Interp);
        assert_eq!(j.nonce.as_deref(), Some("x"));
    }

    #[test]
    fn canonical_json_round_trips_and_hash_is_sensitive() {
        let a = parse(r#"{"app":"sort","config":"ISRF4","nonce":"n"}"#).unwrap();
        let b = JobSpec::from_json(&a.to_json()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
        let c = parse(r#"{"app":"sort","config":"ISRF4","nonce":"m"}"#).unwrap();
        assert_ne!(a.hash(), c.hash());
        let d = parse(r#"{"app":"sort","config":"ISRF1","nonce":"n"}"#).unwrap();
        assert_ne!(a.hash(), d.hash());
    }

    #[test]
    fn rejections() {
        for bad in [
            r#"{}"#,
            r#"{"app":"nope"}"#,
            r#"{"app":"sort","source":"x"}"#,
            r#"{"app":"sort","config":"Huge"}"#,
            r#"{"app":"sort","profile":"tiny"}"#,
            r#"{"sweep":[]}"#,
            r#"{"sweep":[{"app":"sort"},{"app":"sort"}],"trace":true}"#,
            r#"{"source":"kernel k(){}","records_per_lane":0}"#,
            r#"[1]"#,
        ] {
            assert!(parse(bad).is_err(), "{bad} accepted");
        }
    }
}
