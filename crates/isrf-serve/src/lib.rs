//! `isrf-serve`: a long-running batch simulation server for the ISRF
//! reproduction.
//!
//! The server accepts simulation jobs — a named benchmark app or an
//! inline KernelC-subset kernel, times a machine configuration, sizing
//! profile and execution engine — over a hand-rolled HTTP/1.1 + JSON
//! wire protocol (the build environment has no tokio/hyper/serde), and
//! runs them on a work-stealing worker pool:
//!
//! - **Sharded sweeps** — a sweep job's points fan out onto the accepting
//!   worker's deque and siblings steal them, so one big sweep saturates
//!   the pool while small jobs still slip through the global injector.
//! - **Backpressure** — admission is bounded (`queue_cap`); beyond it
//!   `POST /jobs` answers `429` with `Retry-After` instead of buffering
//!   without limit.
//! - **Memoization** — whole-job results are cached by the same stable
//!   128-bit content hash the schedule/tape memos use, so a repeated
//!   submission completes instantly; an optional `nonce` defeats the
//!   cache deliberately.
//! - **Cycle-exact control** — points execute in bounded cycle slices via
//!   [`isrf_sim::Machine::run_for`], so `DELETE` (cancel) and
//!   `POST /shutdown` (drain) take effect within one slice; drain
//!   checkpoints in-flight machines with `Machine::save_state` and the
//!   next start resumes them exactly where they stopped.
//!
//! Endpoints: `POST /jobs`, `GET /jobs/:id`, `GET /jobs/:id/result`,
//! `GET /jobs/:id/trace`, `DELETE /jobs/:id`, `GET /metrics`,
//! `GET /healthz`, `POST /shutdown`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod exec;
pub mod http;
pub mod json;
pub mod pool;
pub mod server;
pub mod spec;

pub use client::{Client, ClientResponse};
pub use exec::{analyze_point, PointOutcome, PointRunner};
pub use http::{Limits, Request, Response};
pub use json::{Json, JsonError};
pub use pool::{Pool, WorkerHandle, WorkerStats};
pub use server::{Server, ServerConfig};
pub use spec::{AppRef, JobSpec, PointSpec};
