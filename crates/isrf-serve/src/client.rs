//! A minimal blocking HTTP/1.1 client for talking to the server — used by
//! the integration tests, the CI smoke stage and the bench load tester.
//! One connection per [`Client`], kept alive across requests.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// A client response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the body as JSON.
    ///
    /// # Errors
    ///
    /// A message when the body is not UTF-8 or not valid JSON.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| format!("{e}"))?;
        Json::parse(text).map_err(|e| format!("{e}"))
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` (connects lazily on first request).
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None }
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(Duration::from_secs(120)))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Send one request and read the response. Reconnects once if the
    /// server closed the kept-alive connection.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                // One retry on a fresh connection (idempotent from the
                // caller's perspective: the failure mode is a stale
                // keep-alive socket, not a half-applied request).
                self.conn = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let r = self.connect()?;
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: isrf-serve\r\n");
        let payload = body.unwrap_or_default();
        head.push_str(&format!("Content-Length: {}\r\n", payload.len()));
        if !payload.is_empty() {
            head.push_str("Content-Type: application/json\r\n");
        }
        head.push_str("\r\n");
        {
            let stream = r.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(payload.as_bytes())?;
            stream.flush()?;
        }
        let resp = read_response(r);
        if resp.is_err() {
            self.conn = None;
        }
        resp
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn delete(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, None)
    }

    /// Poll `GET /jobs/<id>` until the job reaches a terminal or suspended
    /// state, then return the final status JSON.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed responses, or `timeout` elapsing.
    pub fn wait_job(&mut self, id: u64, timeout: Duration) -> io::Result<Json> {
        // Sanctioned wall-clock reads: the client-side polling deadline
        // bounds how long we wait, never what the server computes.
        #[allow(clippy::disallowed_methods)]
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let resp = self.get(&format!("/jobs/{id}"))?;
            let v = resp
                .json()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let status = v.get("status").and_then(Json::as_str).unwrap_or_default();
            if matches!(status, "done" | "failed" | "cancelled" | "suspended") {
                return Ok(v);
            }
            #[allow(clippy::disallowed_methods)]
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still {status:?} after {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn read_response(r: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let proto = parts.next().unwrap_or_default();
    if !proto.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HTTP response",
        ));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            let k = k.to_ascii_lowercase();
            let v = v.trim().to_string();
            if k == "content-length" {
                content_length = v.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((k, v));
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
