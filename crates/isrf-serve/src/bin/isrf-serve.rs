//! The `isrf-serve` binary: start the batch simulation server and run
//! until a `POST /shutdown` drains it.
//!
//! ```text
//! isrf-serve [--addr 127.0.0.1:0] [--workers N] [--queue-cap N]
//!            [--chunk CYCLES] [--snapshot-dir DIR] [--port-file PATH]
//! ```
//!
//! `--port-file` writes the bound address (host:port, one line) once the
//! listener is up — the CI smoke stage and the load tester use it with
//! `--addr 127.0.0.1:0` to avoid port collisions.

use std::path::PathBuf;
use std::process::ExitCode;

use isrf_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: isrf-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--chunk CYCLES] [--snapshot-dir DIR] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = val(),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => cfg.queue_cap = val().parse().unwrap_or_else(|_| usage()),
            "--chunk" => cfg.chunk_cycles = val().parse().unwrap_or_else(|_| usage()),
            "--snapshot-dir" => cfg.snapshot_dir = Some(PathBuf::from(val())),
            "--port-file" => port_file = Some(PathBuf::from(val())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("isrf-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    println!("isrf-serve listening on {addr}");
    if let Some(path) = port_file {
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, format!("{addr}\n")).is_err()
            || std::fs::rename(&tmp, &path).is_err()
        {
            eprintln!("isrf-serve: could not write port file");
            return ExitCode::FAILURE;
        }
    }
    server.wait();
    println!("isrf-serve stopped");
    ExitCode::SUCCESS
}
