//! A hand-rolled JSON value model, parser and serializer.
//!
//! The vendor tree has no serde, and the server needs a real value model
//! (not just the syntax validator in [`isrf_trace::json`]): request bodies
//! are parsed into [`Json`], inspected field by field, and responses are
//! built as [`Json`] and rendered compactly. Objects keep insertion order
//! in a `Vec` — deterministic output, no hash-order nondeterminism — and
//! duplicate keys are rejected at parse time.
//!
//! Round-trip contract (covered by proptest in `tests/codec.rs`): for any
//! value built from finite numbers, `parse(render(v)) == v`. Numbers are
//! `f64`; integral values within `i64` range render without a decimal
//! point, everything else uses Rust's shortest round-trip `f64` display.
//! Non-finite numbers cannot be represented and parse rejects literals
//! that overflow to infinity.

use std::fmt;

use isrf_trace::json::escape_into;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
const MAX_DEPTH: usize = 96;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs, keys unique.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a `u64` counter value (exact up to 2^53; counters
    /// beyond that render with precision loss inherent to JSON numbers).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup (first match; parse guarantees uniqueness).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse one JSON document (must consume the whole input).
    ///
    /// # Errors
    ///
    /// Returns the byte offset and a message for the first problem found.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace) into `out`.
    pub fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Render compactly as a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_num(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "Json::Num holds only finite values");
    if n.fract() == 0.0 && n.abs() < 9.3e18 {
        // Integral and exactly representable as i64: render without the
        // fraction so integers round-trip as integers.
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's f64 Display is the shortest decimal that round-trips.
        out.push_str(&format!("{n}"));
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.i,
            msg,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.i += 1; // '{'
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.i += 1;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let h = self.peek().ok_or(self.err("short \\u escape"))?;
            let d = match h {
                b'0'..=b'9' => h - b'0',
                b'a'..=b'f' => h - b'a' + 10,
                b'A'..=b'F' => h - b'A' + 10,
                _ => return Err(self.err("bad \\u escape digit")),
            };
            v = (v << 4) | u16::from(d);
            self.i += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.i += 1; // '"'
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or(self.err("unterminated string"))?;
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = self.peek().ok_or(self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: must pair.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.i += 1;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(hi) - 0xd800) << 10)
                                        + (u32::from(lo) - 0xdc00);
                                    out.push(char::from_u32(cp).expect("valid surrogate pair"));
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                out.push(char::from_u32(u32::from(hi)).expect("BMP scalar"));
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // continuation bytes are well-formed).
                    let rest = std::str::from_utf8(&self.b[self.i..]).expect("input is UTF-8");
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digits in number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ASCII number");
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reads_fields() {
        let v = Json::parse(r#"{"app":"sort","n":3,"flag":true,"arr":[1,2.5,-3e2]}"#).unwrap();
        assert_eq!(v.get("app").unwrap().as_str(), Some("sort"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(42).render(), "42");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" slash\\ nl\n tab\t ctl\u{01} μ✓ \u{10348}";
        let doc = Json::Obj(vec![("k".into(), Json::str(s))]).render();
        let back = Json::parse(&doc).unwrap();
        assert_eq!(back.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""𐍈""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{10348}"));
        for bad in [r#""\ud800""#, r#""\ud800A""#, r#""\udc00""#] {
            assert!(Json::parse(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "01",
            "1.",
            "1e",
            "nul",
            "[1] x",
            "\"\u{01}\"",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }
}
