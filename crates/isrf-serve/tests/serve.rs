//! End-to-end coverage of the job server over real sockets: submissions
//! match direct in-process runs word-for-word, sweeps shard across
//! workers, memoization serves repeats from cache, the queue bound
//! produces 429 + `Retry-After`, cancellation lands within a slice, and
//! the error paths return the right statuses.

use std::time::Duration;

use isrf_apps::{prepare_app, Profile};
use isrf_core::config::ConfigName;
use isrf_serve::{Client, Json, Server, ServerConfig};

fn start(workers: usize, queue_cap: usize, chunk: u64) -> (Server, Client) {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        chunk_cycles: chunk,
        snapshot_dir: None,
        limits: Default::default(),
    })
    .expect("bind ephemeral port");
    let client = Client::new(server.addr());
    (server, client)
}

/// Direct in-process run: the oracle the server must match word-for-word.
fn direct(app: &str, cfg: ConfigName, profile: Profile) -> (u64, Vec<Vec<u64>>) {
    let mut pr = prepare_app(app, cfg, profile);
    let stats = pr.machine.run(&pr.program);
    let outs = pr
        .outputs
        .iter()
        .map(|&(base, words)| {
            pr.machine
                .mem()
                .memory()
                .read_block(base, words as usize)
                .into_iter()
                .map(u64::from)
                .collect()
        })
        .collect();
    (stats.cycles, outs)
}

/// Pull `(cycles, outputs-as-words)` out of a result payload point.
fn point_words(point: &Json) -> (u64, Vec<Vec<u64>>) {
    let cycles = point.get("cycles").and_then(Json::as_u64).unwrap();
    let outs = point
        .get("outputs")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|o| {
            o.get("words")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|w| w.as_u64().unwrap())
                .collect()
        })
        .collect();
    (cycles, outs)
}

fn submit(client: &mut Client, body: &str) -> (u16, Json) {
    let resp = client.post("/jobs", body).expect("POST /jobs");
    let v = resp.json().expect("response is JSON");
    (resp.status, v)
}

fn fetch_result(client: &mut Client, id: u64) -> Json {
    let status = client
        .wait_job(id, Duration::from_secs(120))
        .expect("job settles");
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("done"),
        "job {id} did not finish: {}",
        status.render()
    );
    let resp = client
        .get(&format!("/jobs/{id}/result"))
        .expect("GET result");
    assert_eq!(resp.status, 200);
    resp.json().expect("result is JSON")
}

#[test]
fn single_job_matches_direct_run() {
    let (server, mut client) = start(2, 16, 50_000);
    let (status, v) = submit(&mut client, r#"{"app":"sort","config":"ISRF4"}"#);
    assert_eq!(status, 202, "{}", v.render());
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    let result = fetch_result(&mut client, id);
    let points = result.get("points").and_then(Json::as_arr).unwrap();
    assert_eq!(points.len(), 1);
    let (cycles, outs) = point_words(&points[0]);
    let (want_cycles, want_outs) = direct("sort", ConfigName::Isrf4, Profile::Small);
    assert_eq!(cycles, want_cycles);
    assert_eq!(outs, want_outs);
    server.stop();
}

#[test]
fn sweep_shards_and_every_point_matches() {
    let (server, mut client) = start(4, 16, 50_000);
    let body = r#"{"sweep":[
        {"app":"fft2d"},{"app":"rijndael"},{"app":"sort"},
        {"app":"filter"},{"app":"igraph"},
        {"app":"sort","config":"ISRF1"},{"app":"sort","config":"Cache"}
    ]}"#;
    let (status, v) = submit(&mut client, body);
    assert_eq!(status, 202, "{}", v.render());
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    let result = fetch_result(&mut client, id);
    let points = result.get("points").and_then(Json::as_arr).unwrap();
    let expect = [
        ("fft2d", ConfigName::Base),
        ("rijndael", ConfigName::Base),
        ("sort", ConfigName::Base),
        ("filter", ConfigName::Base),
        ("igraph", ConfigName::Base),
        ("sort", ConfigName::Isrf1),
        ("sort", ConfigName::Cache),
    ];
    assert_eq!(points.len(), expect.len());
    for (point, (app, cfg)) in points.iter().zip(expect) {
        let (cycles, outs) = point_words(point);
        let (want_cycles, want_outs) = direct(app, cfg, Profile::Small);
        assert_eq!(cycles, want_cycles, "{app}/{cfg}");
        assert_eq!(outs, want_outs, "{app}/{cfg}");
    }
    server.stop();
}

#[test]
fn repeat_submission_is_served_from_cache() {
    let (server, mut client) = start(2, 16, 50_000);
    let body = r#"{"app":"filter","config":"Base","nonce":"memo-test"}"#;
    let (status, v) = submit(&mut client, body);
    assert_eq!(status, 202);
    let cold_id = v.get("id").and_then(Json::as_u64).unwrap();
    let cold = fetch_result(&mut client, cold_id);
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));

    // Identical spec: completes instantly with cached=true on submit.
    let (status, v) = submit(&mut client, body);
    assert_eq!(status, 200, "{}", v.render());
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
    let warm_id = v.get("id").and_then(Json::as_u64).unwrap();
    assert_ne!(warm_id, cold_id);
    let warm = fetch_result(&mut client, warm_id);
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        cold.get("points").unwrap().render(),
        warm.get("points").unwrap().render(),
        "cached payload must be byte-identical"
    );

    // A different nonce defeats the cache.
    let (status, _) = submit(
        &mut client,
        r#"{"app":"filter","config":"Base","nonce":"other"}"#,
    );
    assert_eq!(status, 202);
    server.stop();
}

#[test]
fn queue_bound_produces_429_with_retry_after() {
    // One worker, queue of one, big Paper-profile jobs: the first job
    // occupies the worker, the second fills the queue, the third bounces.
    let (server, mut client) = start(1, 1, 5_000);
    let mut ids = Vec::new();
    let mut saw_429 = false;
    for i in 0..6 {
        let body = format!(r#"{{"app":"sort","profile":"paper","nonce":"flood-{i}"}}"#);
        let resp = client.post("/jobs", &body).expect("POST /jobs");
        match resp.status {
            202 => {
                let v = resp.json().unwrap();
                ids.push(v.get("id").and_then(Json::as_u64).unwrap());
            }
            429 => {
                saw_429 = true;
                assert_eq!(resp.header("retry-after"), Some("1"));
                let v = resp.json().unwrap();
                assert!(v.get("error").is_some());
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(saw_429, "queue bound never tripped");
    assert!(ids.len() >= 2, "at least two jobs should be admitted");
    // Cancel everything so shutdown is quick.
    for id in &ids {
        let resp = client.delete(&format!("/jobs/{id}")).expect("DELETE");
        assert_eq!(resp.status, 200);
    }
    server.stop();
}

#[test]
fn cancellation_lands_within_a_slice() {
    let (server, mut client) = start(1, 4, 2_000);
    let (status, v) = submit(
        &mut client,
        r#"{"app":"sort","profile":"paper","nonce":"cancel-me"}"#,
    );
    assert_eq!(status, 202);
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    let resp = client.delete(&format!("/jobs/{id}")).unwrap();
    assert_eq!(resp.status, 200);
    let st = client.wait_job(id, Duration::from_secs(30)).unwrap();
    assert_eq!(st.get("status").and_then(Json::as_str), Some("cancelled"));
    // Result of a cancelled job is a 409 conflict.
    let resp = client.get(&format!("/jobs/{id}/result")).unwrap();
    assert_eq!(resp.status, 409);
    server.stop();
}

#[test]
fn source_job_runs_and_traces() {
    let (server, mut client) = start(2, 8, 50_000);
    let body = r#"{
        "source":"kernel triple(istream<int> in, ostream<int> out) { int a, c; while (!eos(in)) { in >> a; c = a * 3 + 1; out << c; } }",
        "records_per_lane": 8, "seed": 7, "trace": true
    }"#;
    let (status, v) = submit(&mut client, body);
    assert_eq!(status, 202, "{}", v.render());
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    let result = fetch_result(&mut client, id);
    let points = result.get("points").and_then(Json::as_arr).unwrap();
    let (_, outs) = point_words(&points[0]);
    assert_eq!(outs.len(), 1);
    let salt = 7u32.wrapping_mul(0x9e37_79b9);
    for (k, &w) in outs[0].iter().enumerate() {
        let a = (k as u32).wrapping_mul(2654435761).wrapping_add(salt);
        assert_eq!(w, u64::from(a.wrapping_mul(3).wrapping_add(1)));
    }
    // The trace endpoint serves a chrome-format event array.
    let resp = client.get(&format!("/jobs/{id}/trace")).unwrap();
    assert_eq!(resp.status, 200);
    let trace = resp.json().expect("trace is JSON");
    assert!(trace.get("traceEvents").is_some() || trace.as_arr().is_some());
    server.stop();
}

/// Inline-source SpMV gather kernel: a pointer stream drives a
/// cross-lane read of a condensed x table (the serve harness binds the
/// `idx_istream` with `table_records_per_lane × lanes` = 512 records, so
/// the `& 511` mask keeps every gather in bounds and verifier-clean).
const SPMV_SRC: &str = "kernel spmv_gather(istream<int> col, istream<int> val, \
     idx_istream<int> x, ostream<int> out) \
     { int c, v, xv, y; while (!eos(col)) { col >> c; val >> v; \
     x[c & 511] >> xv; y = v * xv; out << y; } }";

#[test]
fn source_spmv_sweep_matches_direct_runs() {
    use isrf_serve::{JobSpec, PointRunner};

    let (server, mut client) = start(3, 16, 50_000);
    // Indexed configs only: the gather is V301 on Base/Cache by design
    // (covered by the verifier corpus), and a failed point fails the job.
    let mut body = String::from("{\"sweep\":[");
    for (i, (cfg, engine)) in [
        ("ISRF1", "tape"),
        ("ISRF1", "interp"),
        ("ISRF4", "tape"),
        ("ISRF4", "interp"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"source\":{:?},\"records_per_lane\":16,\"seed\":42,\
             \"config\":\"{cfg}\",\"engine\":\"{engine}\"}}",
            SPMV_SRC
        ));
    }
    body.push_str("]}");

    let (status, v) = submit(&mut client, &body);
    assert_eq!(status, 202, "{}", v.render());
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    let result = fetch_result(&mut client, id);
    let points = result.get("points").and_then(Json::as_arr).unwrap();
    assert_eq!(points.len(), 4);

    // Oracle: the same specs run directly in-process.
    let spec = JobSpec::from_json(&Json::parse(&body).unwrap()).unwrap();
    for (point, ps) in points.iter().zip(&spec.points) {
        let (cycles, outs) = point_words(point);
        let mut runner = PointRunner::new(ps, false).expect("spec prepares");
        let outcome = runner.run(u64::MAX, |_| true).expect("runs to completion");
        assert_eq!(
            cycles, outcome.stats.cycles,
            "{}/{:?}",
            ps.config, ps.engine
        );
        let want: Vec<Vec<u64>> = outcome
            .outputs
            .iter()
            .map(|(_, words)| words.iter().map(|&w| u64::from(w)).collect())
            .collect();
        assert_eq!(outs, want, "{}/{:?}", ps.config, ps.engine);
    }

    // Within a config the engines agree word-for-word and cycle-exactly;
    // the tape is an execution strategy, not a semantic change.
    let words_of = |p: &Json| point_words(p);
    assert_eq!(words_of(&points[0]), words_of(&points[1]), "ISRF1 engines");
    assert_eq!(words_of(&points[2]), words_of(&points[3]), "ISRF4 engines");
    server.stop();
}

#[test]
fn bad_source_fails_with_diagnostics() {
    // A source kernel that does not even build (parse error) is rejected
    // at admission with a structured `E000`/`build` pseudo-diagnostic.
    let (server, mut client) = start(1, 4, 50_000);
    let (status, v) = submit(&mut client, r#"{"source":"kernel oops("}"#);
    assert_eq!(status, 422, "{}", v.render());
    let rej = v.get("rejected_points").and_then(Json::as_arr).unwrap();
    let diags = rej[0].get("diagnostics").and_then(Json::as_arr).unwrap();
    assert_eq!(diags[0].get("code").and_then(Json::as_str), Some("E000"));
    assert_eq!(diags[0].get("check").and_then(Json::as_str), Some("build"));
    server.stop();
}

/// Pull one counter's value out of the rendered /metrics text.
fn metric(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        let mut it = l.split_whitespace();
        if it.next() == Some(name) {
            it.next().and_then(|v| v.parse().ok())
        } else {
            None
        }
    })
}

#[test]
fn statically_invalid_job_is_rejected_before_queueing() {
    // The pre-admission gate: a kernel whose constant indexed access
    // overruns the bound table is rejected with the verifier's structured
    // V303 diagnostic before anything touches the queue or job table, the
    // verdict is memoized, and the outcome is visible in /metrics.
    let (server, mut client) = start(1, 4, 50_000);
    let src = "kernel bad(istream<int> in, idxl_istream<int> LUT, ostream<int> out) {\n\
               int a, b;\n while (!eos(in)) { in >> a; LUT[100] >> b; out << b; } }";
    let body = format!(
        r#"{{"source":{},"config":"ISRF4","table_records_per_lane":4}}"#,
        Json::str(src).render()
    );
    let (status, v) = submit(&mut client, &body);
    assert_eq!(status, 422, "{}", v.render());
    assert_eq!(
        v.get("error").and_then(Json::as_str),
        Some("static verification failed")
    );
    assert!(v.get("id").is_none(), "rejected job must not get an id");
    let rej = v.get("rejected_points").and_then(Json::as_arr).unwrap();
    assert_eq!(rej.len(), 1);
    assert_eq!(rej[0].get("point").and_then(Json::as_u64), Some(0));
    let diags = rej[0].get("diagnostics").and_then(Json::as_arr).unwrap();
    assert_eq!(diags[0].get("code").and_then(Json::as_str), Some("V303"));
    assert_eq!(diags[0].get("kernel").and_then(Json::as_str), Some("bad"));
    assert!(diags[0].get("line").and_then(Json::as_u64).is_some());

    // Resubmitting hits the verdict memo, not the analyzer.
    let (status2, _) = submit(&mut client, &body);
    assert_eq!(status2, 422);

    let resp = client.get("/metrics").unwrap();
    let text = String::from_utf8(resp.body).unwrap();
    assert_eq!(metric(&text, "serve_jobs_rejected_static"), Some(2));
    assert_eq!(metric(&text, "serve_verify_cache_misses"), Some(1));
    assert_eq!(metric(&text, "serve_verify_cache_hits"), Some(1));
    // Nothing was admitted: the queue stayed empty (zero-valued counters
    // are dropped from the rendering) and the job table never got an id.
    assert_eq!(metric(&text, "serve_queue_depth"), None);
    let resp = client.get("/jobs/1").unwrap();
    assert_eq!(
        resp.status, 404,
        "rejected job must not enter the job table"
    );
    server.stop();
}

#[test]
fn error_statuses_are_precise() {
    let (server, mut client) = start(1, 4, 50_000);
    // Malformed JSON body.
    let resp = client.post("/jobs", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    // Valid JSON, invalid spec.
    let resp = client.post("/jobs", r#"{"app":"nope"}"#).unwrap();
    assert_eq!(resp.status, 400);
    // Unknown job.
    let resp = client.get("/jobs/999999").unwrap();
    assert_eq!(resp.status, 404);
    // Non-integer job id.
    let resp = client.get("/jobs/abc").unwrap();
    assert_eq!(resp.status, 400);
    // Unknown route.
    let resp = client.get("/nope").unwrap();
    assert_eq!(resp.status, 404);
    // Result before completion (job still queued/running).
    let (status, v) = submit(
        &mut client,
        r#"{"app":"sort","profile":"paper","nonce":"slow"}"#,
    );
    assert_eq!(status, 202);
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    let resp = client.get(&format!("/jobs/{id}/result")).unwrap();
    assert_eq!(resp.status, 409);
    // Trace on an untraced job.
    let resp = client.get(&format!("/jobs/{id}/trace")).unwrap();
    assert_eq!(resp.status, 404);
    client.delete(&format!("/jobs/{id}")).unwrap();
    server.stop();
}

#[test]
fn metrics_report_queue_cache_and_workers() {
    let (server, mut client) = start(2, 8, 50_000);
    let body = r#"{"app":"filter","nonce":"metrics"}"#;
    let (_, v) = submit(&mut client, body);
    let id = v.get("id").and_then(Json::as_u64).unwrap();
    fetch_result(&mut client, id);
    submit(&mut client, body); // cache hit
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    for key in [
        "serve_jobs_submitted",
        "serve_jobs_done",
        "serve_result_cache_hits",
        "serve_queue_cap",
        "tape_cache_",
        "sched_cache_",
        // Which worker ran the job is scheduling-dependent; zero counters
        // are dropped from the rendering, so just require some worker line.
        "worker_",
        "serve_job_latency_ms",
    ] {
        assert!(text.contains(key), "metrics missing {key}:\n{text}");
    }
    server.stop();
}

#[test]
fn healthz_and_keepalive() {
    let (server, mut client) = start(1, 4, 50_000);
    // Several requests over one kept-alive connection.
    for _ in 0..3 {
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }
    server.stop();
}
