//! Property coverage for the hand-rolled wire codecs: the JSON value
//! round-trips through render/parse for arbitrary nested documents
//! (escapes, unicode, numeric edge cases), and the HTTP request parser
//! rejects malformed input with the right error class instead of
//! panicking or buffering without bound.

use std::io::BufReader;

use proptest::prelude::*;

use isrf_serve::http::{read_request, HttpError};
use isrf_serve::{Json, Limits};

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

/// Tiny deterministic generator state (the vendored proptest has no
/// recursive/string strategies, so documents are built from a sampled
/// seed).
fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

/// Characters chosen to exercise every escape path: quotes, backslashes,
/// control characters (short and \u-form), multi-byte UTF-8, and astral
/// plane codepoints that need surrogate pairs in \u escapes.
const PALETTE: [char; 16] = [
    'a',
    'Z',
    '9',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1f}',
    'é',
    'Ω',
    '中',
    '\u{1F600}',
];

fn gen_string(s: &mut u64) -> String {
    let len = (xorshift(s) % 12) as usize;
    (0..len)
        .map(|_| PALETTE[(xorshift(s) % PALETTE.len() as u64) as usize])
        .collect()
}

/// Numbers that stress the integer fast path, the shortest-round-trip
/// float path, exponents, and sign handling.
fn gen_num(s: &mut u64) -> f64 {
    const EDGES: [f64; 12] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        -2.5e-10,
        1e300,
        1e-300,
        9_007_199_254_740_993.0, // 2^53 + 1 (not exactly representable)
        9.223372036854776e18,    // just past i64::MAX
        -9.3e18,
        123456.789,
    ];
    match xorshift(s) % 4 {
        0 => EDGES[(xorshift(s) % EDGES.len() as u64) as usize],
        1 => (xorshift(s) as i64) as f64,       // huge integers
        2 => (xorshift(s) % 1000) as f64 / 8.0, // small exact fractions
        _ => f64::from_bits(xorshift(s) | 0x3ff0_0000_0000_0000) % 1e9, // messy mantissas
    }
}

fn gen_json(s: &mut u64, depth: u32) -> Json {
    let pick = if depth == 0 {
        xorshift(s) % 4 // leaves only
    } else {
        xorshift(s) % 6
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(xorshift(s).is_multiple_of(2)),
        2 => {
            let n = gen_num(s);
            Json::Num(if n.is_finite() { n } else { 0.0 })
        }
        3 => Json::Str(gen_string(s)),
        4 => {
            let len = (xorshift(s) % 5) as usize;
            Json::Arr((0..len).map(|_| gen_json(s, depth - 1)).collect())
        }
        _ => {
            let len = (xorshift(s) % 5) as usize;
            // Unique keys: the parser rejects duplicates.
            Json::Obj(
                (0..len)
                    .map(|i| {
                        (
                            format!("k{i}_{}", gen_string(s).len()),
                            gen_json(s, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn json_render_parse_round_trips(seed in any::<u64>(), depth in 0u32..5) {
        let mut s = seed;
        let doc = gen_json(&mut s, depth);
        let text = doc.render();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed at {}: {e}\ndoc: {text}", e.offset));
        prop_assert_eq!(&back, &doc);
        // Rendering is canonical: a second round trip is byte-identical.
        prop_assert_eq!(back.render(), text);
    }

    #[test]
    fn json_parser_never_panics_on_garbage(seed in any::<u64>(), len in 0usize..80) {
        let mut s = seed;
        let garbage: String = (0..len)
            .map(|_| PALETTE[(xorshift(&mut s) % PALETTE.len() as u64) as usize])
            .collect();
        let _ = Json::parse(&garbage); // outcome irrelevant; must not panic
    }

    #[test]
    fn http_parser_never_panics_on_garbage(seed in any::<u64>(), len in 0usize..160) {
        let mut s = seed;
        let bytes: Vec<u8> = (0..len).map(|_| (xorshift(&mut s) % 256) as u8).collect();
        let _ = read_request(&mut BufReader::new(&bytes[..]), &Limits::default());
    }
}

#[test]
fn json_numeric_edges_round_trip_exactly() {
    for v in [
        0.0,
        -0.0,
        1.5,
        -1.5,
        0.1,
        1.0 / 3.0,
        1e-9,
        1e300,
        -2.5e-10,
        9_007_199_254_740_993.0,
        u64::MAX as f64,
        i64::MIN as f64,
        123456.789,
    ] {
        let text = Json::Num(v).render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_f64(), Some(v), "{v} via {text}");
    }
}

#[test]
fn json_rejects_malformed_documents() {
    for bad in [
        "",
        "   ",
        "tru",
        "nulll",
        "+1",
        "01",
        "1.",
        ".5",
        "1e",
        "--1",
        "NaN",
        "Infinity",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12g4\"",
        "\"lone surrogate \\ud800\"",
        "\"raw control \u{1} char\"", // literal 0x01 inside a string
        "[1,2",
        "[1,,2]",
        "[1 2]",
        "{\"a\":1,}",
        "{\"a\" 1}",
        "{\"a\":1,\"a\":2}", // duplicate key
        "{1:2}",
        "1 trailing",
        "[1] []",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn json_rejects_excessive_nesting() {
    let deep = "[".repeat(200) + &"]".repeat(200);
    assert!(Json::parse(&deep).is_err());
    let ok = "[".repeat(40) + &"]".repeat(40);
    assert!(Json::parse(&ok).is_ok());
}

// ---------------------------------------------------------------------------
// HTTP parser rejection
// ---------------------------------------------------------------------------

fn parse_http(raw: &[u8]) -> Result<Option<isrf_serve::Request>, HttpError> {
    read_request(&mut BufReader::new(raw), &Limits::default())
}

#[test]
fn http_rejects_bad_method() {
    let e = parse_http(b"BREW /pot HTTP/1.1\r\n\r\n").unwrap_err();
    assert!(matches!(e, HttpError::Bad(_)), "{e}");
    assert_eq!(e.status(), 400);
}

#[test]
fn http_rejects_malformed_request_lines() {
    for raw in [
        &b"GET\r\n\r\n"[..],
        b"GET /\r\n\r\n",
        b"GET / HTTP/2.0\r\n\r\n",
        b"GET / HTTP/1.1 extra\r\n\r\n",
        b"GET nopath HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
        b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        b"\xff\xfe / HTTP/1.1\r\n\r\n",
    ] {
        let e = parse_http(raw).unwrap_err();
        assert!(matches!(e, HttpError::Bad(_)), "{raw:?} -> {e}");
    }
}

#[test]
fn http_rejects_oversized_declared_body() {
    let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
    let e = parse_http(raw).unwrap_err();
    assert_eq!(e, HttpError::TooLarge("body exceeds limit"));
    assert_eq!(e.status(), 413);
}

#[test]
fn http_rejects_oversized_header_block() {
    let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
    // Default head cap is 16 KiB; a single huge header blows past it with
    // no terminator in sight.
    raw.extend_from_slice(b"X-Big: ");
    raw.extend(std::iter::repeat_n(b'a', 20 * 1024));
    let e = parse_http(&raw).unwrap_err();
    assert!(matches!(e, HttpError::TooLarge(_)), "{e}");
    assert_eq!(e.status(), 431);
}

#[test]
fn http_reports_truncation_distinctly() {
    // EOF mid-headers.
    let e = parse_http(b"GET / HTTP/1.1\r\nHost: x").unwrap_err();
    assert!(matches!(e, HttpError::Truncated(_)), "{e}");
    // EOF mid-body.
    let e = parse_http(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
    assert!(matches!(e, HttpError::Truncated(_)), "{e}");
}

#[test]
fn http_small_limits_are_honored() {
    let limits = Limits {
        max_head: 64,
        max_body: 8,
    };
    let ok = b"POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\n12345678";
    assert!(read_request(&mut BufReader::new(&ok[..]), &limits)
        .unwrap()
        .is_some());
    let too_big = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
    let e = read_request(&mut BufReader::new(&too_big[..]), &limits).unwrap_err();
    assert_eq!(e.status(), 413);
}
