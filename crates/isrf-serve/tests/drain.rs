//! Graceful drain: killing a server mid-run checkpoints in-flight jobs
//! to the snapshot directory, and a fresh server on the same directory
//! resumes them cycle-exactly — the resumed result is word-for-word
//! identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::time::Duration;

use isrf_apps::{prepare_app, Profile};
use isrf_core::config::ConfigName;
use isrf_serve::{Client, Json, Server, ServerConfig};

fn snapshot_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("drain-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        // Small slices so the drain lands mid-run on a long job.
        chunk_cycles: 2_000,
        snapshot_dir: Some(dir.to_path_buf()),
        limits: Default::default(),
    }
}

#[test]
fn drain_mid_run_then_resume_matches_uninterrupted_run() {
    let dir = snapshot_dir("long");
    // A long fig12-style point: sort on the Paper profile.
    let body = r#"{"app":"sort","config":"ISRF4","profile":"paper","nonce":"drain"}"#;

    // --- First server: submit, wait until mid-run, drain. ---
    let server = Server::start(config(&dir)).unwrap();
    let mut client = Client::new(server.addr());
    let resp = client.post("/jobs", body).unwrap();
    assert_eq!(resp.status, 202);
    let id = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();

    // Poll until the job has visibly made progress (some cycles burned).
    // Sanctioned wall-clock reads: a test-harness polling deadline, not
    // anything a result depends on.
    #[allow(clippy::disallowed_methods)]
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let st = client.get(&format!("/jobs/{id}")).unwrap().json().unwrap();
        let status = st.get("status").and_then(Json::as_str).unwrap();
        let cycles = st.get("cycles").and_then(Json::as_u64).unwrap();
        assert_ne!(
            status, "done",
            "job finished before the drain; raise the workload"
        );
        assert_ne!(status, "failed", "{}", st.render());
        if status == "running" && cycles > 10_000 {
            break;
        }
        #[allow(clippy::disallowed_methods)]
        let now = std::time::Instant::now();
        assert!(now < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(2));
    }

    let resp = client.post("/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    let v = resp.json().unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("stopped"));
    assert_eq!(v.get("persisted").and_then(Json::as_u64), Some(1));
    server.wait();
    assert!(
        dir.join(format!("job-{id}.json")).exists(),
        "checkpoint file missing"
    );

    // --- Second server on the same directory: the job resumes. ---
    let server = Server::start(config(&dir)).unwrap();
    let mut client = Client::new(server.addr());
    let st = client.wait_job(id, Duration::from_secs(120)).unwrap();
    assert_eq!(
        st.get("status").and_then(Json::as_str),
        Some("done"),
        "{}",
        st.render()
    );
    // The checkpoint file was consumed on restore.
    assert!(!dir.join(format!("job-{id}.json")).exists());

    let resp = client.get(&format!("/jobs/{id}/result")).unwrap();
    assert_eq!(resp.status, 200);
    let result = resp.json().unwrap();
    let point = &result.get("points").and_then(Json::as_arr).unwrap()[0];

    // Oracle: the same point run uninterrupted in-process.
    let mut pr = prepare_app("sort", ConfigName::Isrf4, Profile::Paper);
    let stats = pr.machine.run(&pr.program);
    assert_eq!(
        point.get("cycles").and_then(Json::as_u64),
        Some(stats.cycles),
        "resumed run must be cycle-exact"
    );
    let outs = point.get("outputs").and_then(Json::as_arr).unwrap();
    for (o, &(base, words)) in outs.iter().zip(&pr.outputs) {
        let want: Vec<u64> = pr
            .machine
            .mem()
            .memory()
            .read_block(base, words as usize)
            .into_iter()
            .map(u64::from)
            .collect();
        let got: Vec<u64> = o
            .get("words")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|w| w.as_u64().unwrap())
            .collect();
        assert_eq!(got, want, "resumed outputs diverge");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queued_jobs_survive_a_drain_too() {
    let dir = snapshot_dir("queued");
    // One worker, two long jobs: at drain time one is running (gets a
    // checkpoint) and one is still queued (persisted without one, re-run
    // from scratch on restart).
    let mut cfg = config(&dir);
    cfg.workers = 1;
    let server = Server::start(cfg.clone()).unwrap();
    let mut client = Client::new(server.addr());
    let mut ids = Vec::new();
    for i in 0..2 {
        let body =
            format!(r#"{{"app":"sort","config":"ISRF4","profile":"paper","nonce":"q-{i}"}}"#);
        let resp = client.post("/jobs", &body).unwrap();
        assert_eq!(resp.status, 202);
        ids.push(
            resp.json()
                .unwrap()
                .get("id")
                .and_then(Json::as_u64)
                .unwrap(),
        );
    }
    let resp = client.post("/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.json().unwrap().get("persisted").and_then(Json::as_u64),
        Some(2)
    );
    server.wait();

    let server = Server::start(cfg).unwrap();
    let mut client = Client::new(server.addr());
    let want_cycles = {
        let mut pr = prepare_app("sort", ConfigName::Isrf4, Profile::Paper);
        pr.machine.run(&pr.program).cycles
    };
    for id in ids {
        let st = client.wait_job(id, Duration::from_secs(240)).unwrap();
        assert_eq!(
            st.get("status").and_then(Json::as_str),
            Some("done"),
            "{}",
            st.render()
        );
        assert_eq!(st.get("cycles").and_then(Json::as_u64), Some(want_cycles));
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
