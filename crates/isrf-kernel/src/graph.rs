//! Dependence-graph construction for kernel scheduling.
//!
//! Edges carry `(latency, distance)`: the consumer must issue at least
//! `latency` cycles after the producer of `distance` iterations earlier,
//! i.e. `slot(to) + II·distance ≥ slot(from) + latency`.
//!
//! Three edge families are built from a kernel:
//!
//! 1. **Data edges** from each operand reference, with the producer's
//!    latency. The [`Opcode::IdxAddr`] → [`Opcode::IdxRead`] pairing edge
//!    instead carries the configured *address/data separation* — the knob
//!    the paper sweeps in Figures 14–16.
//! 2. **Stream-order chains**: accesses to the same stream port must
//!    execute in program order (they pop/push a FIFO), so consecutive
//!    accesses are chained with latency 1.
//! 3. **Wrap-around edges** closing each chain with `(latency 1,
//!    distance 1)`, which forces all of one iteration's accesses to a
//!    stream to issue before the next iteration's first access — keeping
//!    FIFO order well-defined under software pipelining.

use isrf_core::config::{OpLatencies, ScheduleConfig};

use crate::ir::{Kernel, Opcode, StreamKind};

/// A scheduling dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer op index.
    pub from: usize,
    /// Consumer op index.
    pub to: usize,
    /// Minimum issue-slot distance in cycles.
    pub latency: u32,
    /// Loop-carried distance in iterations.
    pub distance: u32,
}

/// The dependence graph of one kernel under a latency model.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Number of ops.
    pub n: usize,
    /// All edges.
    pub edges: Vec<DepEdge>,
    succ_idx: Vec<Vec<usize>>,
    pred_idx: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Build adjacency from an edge list.
    pub fn from_edges(n: usize, edges: Vec<DepEdge>) -> Self {
        let mut succ_idx = vec![Vec::new(); n];
        let mut pred_idx = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succ_idx[e.from].push(i);
            pred_idx[e.to].push(i);
        }
        DepGraph {
            n,
            edges,
            succ_idx,
            pred_idx,
        }
    }

    /// Outgoing edges of op `v`.
    pub fn succs(&self, v: usize) -> impl Iterator<Item = &DepEdge> {
        self.succ_idx[v].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of op `v`.
    pub fn preds(&self, v: usize) -> impl Iterator<Item = &DepEdge> {
        self.pred_idx[v].iter().map(move |&i| &self.edges[i])
    }
}

/// Latency model: op latencies plus the address/data separations.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Per-class op latencies.
    pub ops: OpLatencies,
    /// Inter-cluster network latency (for `Comm` and conditional streams).
    pub comm_latency: u32,
    /// In-lane indexed address/data separation, in cycles.
    pub inlane_separation: u32,
    /// Cross-lane indexed address/data separation, in cycles.
    pub crosslane_separation: u32,
}

impl LatencyModel {
    /// Model with the paper's Section 5.1 separations (6 and 20 cycles).
    pub fn with_defaults(ops: OpLatencies, comm_latency: u32) -> Self {
        let sched = ScheduleConfig::default();
        LatencyModel {
            ops,
            comm_latency,
            inlane_separation: sched.inlane_addr_data_separation,
            crosslane_separation: sched.crosslane_addr_data_separation,
        }
    }

    /// Issue-to-result latency of `opcode`.
    pub fn latency(&self, opcode: Opcode) -> u32 {
        use Opcode::*;
        let l = &self.ops;
        match opcode {
            Const(_) | LaneId | LaneCount | IterId => 0,
            Mov | Not | Neg | FNeg | IToF | FToI | Select => l.select,
            Add | Sub | And | Or | Xor | Shl | Shr | Sra | Lt | Le | Eq | Ne | ULt | Min | Max => {
                l.int_alu
            }
            Mul => l.int_mul,
            Div | Rem => l.divide,
            FAdd | FSub | FLt | FLe | FEq | FMin | FMax => l.fp_add,
            FMul => l.fp_mul,
            FDiv => l.divide,
            SeqRead(_) | SeqWrite(_) | IdxRead(_) | IdxWrite(_) | IdxAddr(_) => l.sb_access,
            CondRead(_) | CondLaneRead(_) | CondWrite(_) => self.comm_latency + l.sb_access,
            ScratchRead | ScratchWrite => l.scratch,
            Comm { .. } | CommXor { .. } => self.comm_latency,
        }
    }

    /// Address/data separation for a stream of `kind`.
    pub fn separation(&self, kind: StreamKind) -> u32 {
        if kind.is_cross_lane() {
            self.crosslane_separation
        } else {
            self.inlane_separation
        }
    }
}

/// Build the dependence graph of `kernel` under `model`.
pub fn build_graph(kernel: &Kernel, model: &LatencyModel) -> DepGraph {
    let mut edges = Vec::new();

    // 1. Data edges.
    for (i, op) in kernel.ops.iter().enumerate() {
        for operand in &op.operands {
            let from = operand.value.index();
            let latency = if let Opcode::IdxRead(slot) = op.opcode {
                // The address→data pairing edge carries the separation.
                model.separation(kernel.stream(slot).kind)
            } else {
                model.latency(kernel.ops[from].opcode)
            };
            edges.push(DepEdge {
                from,
                to: i,
                latency,
                distance: operand.distance,
            });
        }
    }

    // 2 & 3. Stream-order chains and wrap-around edges. The scratchpad is
    // stateful too, so its accesses are chained in program order likewise.
    let scratch_chain: Vec<usize> = kernel
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op.opcode, Opcode::ScratchRead | Opcode::ScratchWrite))
        .map(|(i, _)| i)
        .collect();
    let mut chains: Vec<Vec<usize>> = vec![scratch_chain];
    for slot_idx in 0..kernel.streams.len() {
        let slot = crate::ir::StreamSlot(slot_idx as u8);
        chains.push(kernel.stream_data_ops(slot));
        chains.push(kernel.stream_addr_ops(slot));
    }
    for chain in chains {
        if chain.is_empty() {
            continue;
        }
        for w in chain.windows(2) {
            edges.push(DepEdge {
                from: w[0],
                to: w[1],
                latency: 1,
                distance: 0,
            });
        }
        let (&first, &last) = (chain.first().unwrap(), chain.last().unwrap());
        edges.push(DepEdge {
            from: last,
            to: first,
            latency: 1,
            distance: 1,
        });
    }

    DepGraph::from_edges(kernel.ops.len(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelBuilder, StreamKind, StreamSlot};

    fn model() -> LatencyModel {
        LatencyModel::with_defaults(OpLatencies::default(), 2)
    }

    #[test]
    fn data_edges_carry_producer_latency() {
        let mut b = KernelBuilder::new("k");
        let s = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(s);
        let y = b.mul(x, x);
        b.seq_write(o, y);
        let k = b.build().unwrap();
        let g = build_graph(&k, &model());
        // mul consumes seq_read with sb latency 1.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.latency == 1 && e.distance == 0));
        // write consumes mul with int_mul latency 4.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.latency == 4));
    }

    #[test]
    fn idx_pairing_edge_uses_separation() {
        let mut b = KernelBuilder::new("k");
        let lut = b.stream("lut", StreamKind::IdxInRead);
        let xt = b.stream("xt", StreamKind::IdxCrossRead);
        let c = b.constant(3);
        let a1 = b.idx_addr(lut, c);
        let _d1 = b.idx_read(lut, a1);
        let a2 = b.idx_addr(xt, c);
        let _d2 = b.idx_read(xt, a2);
        let k = b.build().unwrap();
        let g = build_graph(&k, &model());
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.latency == 6));
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 3 && e.to == 4 && e.latency == 20));
    }

    #[test]
    fn stream_chains_and_wrap_edges() {
        let mut b = KernelBuilder::new("k");
        let s = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x0 = b.seq_read(s);
        let x1 = b.seq_read(s);
        let y = b.add(x0, x1);
        b.seq_write(o, y);
        let k = b.build().unwrap();
        let g = build_graph(&k, &model());
        // Chain read0 -> read1 (latency 1, distance 0).
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.latency == 1 && e.distance == 0));
        // Wrap read1 -> read0 (latency 1, distance 1).
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 0 && e.latency == 1 && e.distance == 1));
        // Single-op chain on the output gets a self wrap edge.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 3 && e.to == 3 && e.distance == 1));
    }

    #[test]
    fn loop_carried_operand_distance_propagates() {
        let mut b = KernelBuilder::new("k");
        let s = b.stream("in", StreamKind::SeqIn);
        let x = b.seq_read(s);
        let acc = b.push(
            Opcode::Add,
            vec![
                x.into(),
                crate::ir::Operand::carried(crate::ir::ValueId(1), 1, 0),
            ],
        );
        assert_eq!(acc.index(), 1);
        let k = b.build().unwrap();
        let g = build_graph(&k, &model());
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 1 && e.distance == 1 && e.latency == 2));
    }

    #[test]
    fn succ_pred_iterators() {
        let mut b = KernelBuilder::new("k");
        let s = b.stream("in", StreamKind::SeqIn);
        let x = b.seq_read(s);
        let _y = b.add(x, x);
        let k = b.build().unwrap();
        let g = build_graph(&k, &model());
        assert_eq!(g.succs(0).filter(|e| e.to == 1).count(), 2);
        assert_eq!(g.preds(1).count(), 2);
        let _ = StreamSlot(0);
    }
}
