//! Kernel intermediate representation.
//!
//! A kernel is the inner loop of a stream program: a dataflow graph of
//! 32-bit word operations executed in SIMD lock-step by every compute
//! cluster, once per *iteration*. Values are in SSA form; loop-carried
//! dependences are expressed on operands as a `distance` (how many
//! iterations back the referenced value was produced) with an `init` word
//! supplying the value for iterations before the producer has run.
//!
//! Streams appear as numbered *slots* whose [`StreamKind`] mirrors the
//! paper's KernelC stream types (Table 1): sequential in/out streams,
//! conditional streams (\[16\]), in-lane indexed read/write streams
//! (`idxl_istream`/`idxl_ostream`) and cross-lane indexed read streams
//! (`idx_istream`). An indexed read is split into an address-issue op
//! ([`Opcode::IdxAddr`]) and a data-read op ([`Opcode::IdxRead`]) exactly as
//! the compiler splits them (Section 4.7), so the scheduler can separate
//! them by the configured address/data separation.

use std::fmt;

use isrf_core::Word;

/// Identifies a value (the result of an op) within a kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Index into [`Kernel::ops`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stream slot used by kernel stream ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamSlot(pub u8);

impl fmt::Display for StreamSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Kinds of kernel streams (paper Table 1 plus sequential and conditional
/// streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Sequential input stream (`istream`).
    SeqIn,
    /// Sequential output stream (`ostream`).
    SeqOut,
    /// Conditional input stream (\[16\]): elements are distributed across
    /// lanes to the clusters asserting their condition.
    CondIn,
    /// Conditional output stream.
    CondOut,
    /// Per-lane conditional input stream: each cluster consumes its own
    /// record substream at a data-dependent rate; the conditional-stream
    /// switch routes elements from their home banks to the consuming
    /// cluster, paying network latency on every access (\[16\]).
    CondLaneIn,
    /// In-lane indexed read stream (`idxl_istream`).
    IdxInRead,
    /// In-lane indexed write stream (`idxl_ostream`).
    IdxInWrite,
    /// Cross-lane indexed read stream (`idx_istream`).
    IdxCrossRead,
}

impl StreamKind {
    /// True for the indexed kinds.
    pub fn is_indexed(self) -> bool {
        matches!(
            self,
            StreamKind::IdxInRead | StreamKind::IdxInWrite | StreamKind::IdxCrossRead
        )
    }

    /// True for cross-lane kinds.
    pub fn is_cross_lane(self) -> bool {
        matches!(self, StreamKind::IdxCrossRead)
    }
}

/// Stream declaration attached to a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDecl {
    /// Human-readable stream name (for diagnostics).
    pub name: String,
    /// What kind of stream this slot is.
    pub kind: StreamKind,
}

/// An operand: a reference to a value produced `distance` iterations ago.
///
/// `distance == 0` references the current iteration. For `distance == d > 0`
/// and iterations `0..d`, the operand evaluates to `init`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operand {
    /// Producing value.
    pub value: ValueId,
    /// Loop-carried distance in iterations.
    pub distance: u32,
    /// Value used while `iteration < distance`.
    pub init: Word,
}

impl From<ValueId> for Operand {
    fn from(value: ValueId) -> Self {
        Operand {
            value,
            distance: 0,
            init: 0,
        }
    }
}

impl Operand {
    /// A loop-carried reference: the value of `value` from `distance`
    /// iterations ago, reading `init` for the first `distance` iterations.
    pub fn carried(value: ValueId, distance: u32, init: Word) -> Self {
        Operand {
            value,
            distance,
            init,
        }
    }
}

/// Kernel operation codes.
///
/// Binary integer ops interpret words as two's-complement `i32` (shifts
/// mask the amount to 5 bits); `F`-prefixed ops interpret the bit pattern
/// as IEEE-754 `f32`. Comparisons produce `1`/`0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants are described by the class comments
pub enum Opcode {
    // Nullary.
    /// Literal constant.
    Const(Word),
    /// This cluster's lane index (0-based).
    LaneId,
    /// Number of lanes in the machine.
    LaneCount,
    /// Current iteration number (0-based, per-cluster SIMD loop count).
    IterId,

    // Unary ALU.
    Mov,
    Not,
    Neg,
    FNeg,
    /// Signed integer to float.
    IToF,
    /// Float to signed integer (truncating; saturates on overflow/NaN->0).
    FToI,

    // Binary integer ALU.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Signed comparisons producing 0/1.
    Lt,
    Le,
    Eq,
    Ne,
    /// Unsigned less-than.
    ULt,
    Min,
    Max,

    // Binary float ALU.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FLt,
    FLe,
    FEq,
    FMin,
    FMax,

    // Ternary.
    /// `select(cond, a, b)`: `a` if `cond != 0` else `b`.
    Select,

    // Stream access.
    /// Pop the next word from a sequential input stream.
    SeqRead(StreamSlot),
    /// Push a word to a sequential output stream. Operand: value.
    SeqWrite(StreamSlot),
    /// Conditionally pop from a conditional input stream. Operand:
    /// condition. Lanes asserting the condition receive consecutive
    /// elements in lane order; others receive 0.
    CondRead(StreamSlot),
    /// Conditionally pop the next element of this lane's own substream of
    /// a [`StreamKind::CondLaneIn`] stream. Operand: condition. Returns 0
    /// when the condition is false.
    CondLaneRead(StreamSlot),
    /// Conditionally push to a conditional output stream. Operands:
    /// condition, value.
    CondWrite(StreamSlot),
    /// Issue an indexed-stream record address. Operand: word offset within
    /// the stream's SRF region (in-lane) or global stream offset
    /// (cross-lane).
    IdxAddr(StreamSlot),
    /// Read the data for this iteration's matching [`Opcode::IdxAddr`].
    /// Operand: the paired address-issue value (scheduling edge carries the
    /// address/data separation).
    IdxRead(StreamSlot),
    /// Indexed write: operands are address and value.
    IdxWrite(StreamSlot),

    // Cluster-local scratchpad.
    /// Operand: address.
    ScratchRead,
    /// Operands: address, value.
    ScratchWrite,

    /// Static inter-cluster permutation: the result in lane `l` is the
    /// operand's value in lane `(l + rotate) mod N`.
    Comm {
        /// Source-lane rotation amount.
        rotate: i32,
    },
    /// Static inter-cluster exchange: the result in lane `l` is the
    /// operand's value in lane `l XOR mask` (the butterfly-exchange
    /// permutation).
    CommXor {
        /// Source-lane XOR mask.
        mask: u32,
    },
}

/// Coarse functional-unit class of an opcode (used for resource modelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Pipelined arithmetic unit.
    Alu,
    /// The unpipelined divider.
    Divider,
    /// Stream-buffer data port of a stream slot.
    StreamPort(StreamSlot),
    /// Address-FIFO issue port of an indexed stream slot.
    AddrPort(StreamSlot),
    /// Inter-cluster network send port.
    Comm,
    /// Scratchpad port.
    Scratch,
    /// Consumes no issue resource (constants are immediate fields).
    Free,
}

impl Opcode {
    /// Number of operands the opcode consumes.
    pub fn arity(self) -> usize {
        use Opcode::*;
        match self {
            Const(_) | LaneId | LaneCount | IterId | SeqRead(_) => 0,
            Mov
            | Not
            | Neg
            | FNeg
            | IToF
            | FToI
            | SeqWrite(_)
            | CondRead(_)
            | CondLaneRead(_)
            | IdxAddr(_)
            | IdxRead(_)
            | ScratchRead
            | Comm { .. }
            | CommXor { .. } => 1,
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sra | Lt | Le | Eq | Ne
            | ULt | Min | Max | FAdd | FSub | FMul | FDiv | FLt | FLe | FEq | FMin | FMax
            | CondWrite(_) | IdxWrite(_) | ScratchWrite => 2,
            Select => 3,
        }
    }

    /// Which resource class the opcode occupies at issue.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Const(_) | LaneId | LaneCount | IterId => OpClass::Free,
            Div | Rem | FDiv => OpClass::Divider,
            SeqRead(s) | SeqWrite(s) | CondRead(s) | CondLaneRead(s) | CondWrite(s)
            | IdxRead(s) => OpClass::StreamPort(s),
            IdxAddr(s) | IdxWrite(s) => OpClass::AddrPort(s),
            Comm { .. } | CommXor { .. } => OpClass::Comm,
            ScratchRead | ScratchWrite => OpClass::Scratch,
            _ => OpClass::Alu,
        }
    }

    /// The stream slot this opcode touches, if any.
    pub fn stream(self) -> Option<StreamSlot> {
        use Opcode::*;
        match self {
            SeqRead(s) | SeqWrite(s) | CondRead(s) | CondLaneRead(s) | CondWrite(s)
            | IdxAddr(s) | IdxRead(s) | IdxWrite(s) => Some(s),
            _ => None,
        }
    }

    /// True if the op produces a value other ops may consume.
    pub fn produces_value(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            SeqWrite(_) | CondWrite(_) | IdxWrite(_) | ScratchWrite | IdxAddr(_)
        )
        // IdxAddr "produces" only a token consumed by its IdxRead pairing;
        // it is still referenced as an operand, so it counts as a value.
        || matches!(self, IdxAddr(_))
    }
}

/// One operation of a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// The opcode.
    pub opcode: Opcode,
    /// Operand references (length = `opcode.arity()`).
    pub operands: Vec<Operand>,
}

/// Error from [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError {
    message: String,
}

impl KernelError {
    fn new(message: impl Into<String>) -> Self {
        KernelError {
            message: message.into(),
        }
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid kernel: {}", self.message)
    }
}

impl std::error::Error for KernelError {}

/// A kernel: name, stream declarations and loop-body ops.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (for reporting).
    pub name: String,
    /// Stream declarations; [`StreamSlot`] indexes this vector.
    pub streams: Vec<StreamDecl>,
    /// Loop-body operations in program order. Operands with `distance == 0`
    /// always reference earlier ops (enforced by [`KernelBuilder`]).
    pub ops: Vec<Op>,
    /// Source line per op (same length as `ops`, or empty when the kernel
    /// was hand-built). 0 means "no line known" for that op.
    pub lines: Vec<u32>,
}

impl Kernel {
    /// The declaration for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn stream(&self, slot: StreamSlot) -> &StreamDecl {
        &self.streams[slot.0 as usize]
    }

    /// Source line of op `i`, when the frontend recorded one.
    pub fn source_line(&self, i: usize) -> Option<u32> {
        match self.lines.get(i) {
            Some(&l) if l > 0 => Some(l),
            _ => None,
        }
    }

    /// Check structural invariants: operand counts, forward references,
    /// stream-kind/op agreement, and IdxRead/IdxAddr pairing.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), KernelError> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.operands.len() != op.opcode.arity() {
                return Err(KernelError::new(format!(
                    "op {i} ({:?}) has {} operands, expected {}",
                    op.opcode,
                    op.operands.len(),
                    op.opcode.arity()
                )));
            }
            for o in &op.operands {
                if o.value.index() >= self.ops.len() {
                    return Err(KernelError::new(format!(
                        "op {i} references nonexistent value {:?}",
                        o.value
                    )));
                }
                if o.distance == 0 && o.value.index() >= i {
                    return Err(KernelError::new(format!(
                        "op {i} has a same-iteration reference to op {} (must be earlier)",
                        o.value.index()
                    )));
                }
            }
            if let Some(slot) = op.opcode.stream() {
                let Some(decl) = self.streams.get(slot.0 as usize) else {
                    return Err(KernelError::new(format!(
                        "op {i} uses undeclared stream {slot}"
                    )));
                };
                use Opcode::*;
                let ok = match op.opcode {
                    SeqRead(_) => decl.kind == StreamKind::SeqIn,
                    SeqWrite(_) => decl.kind == StreamKind::SeqOut,
                    CondRead(_) => decl.kind == StreamKind::CondIn,
                    CondLaneRead(_) => decl.kind == StreamKind::CondLaneIn,
                    CondWrite(_) => decl.kind == StreamKind::CondOut,
                    IdxAddr(_) | IdxRead(_) => {
                        decl.kind == StreamKind::IdxInRead || decl.kind == StreamKind::IdxCrossRead
                    }
                    IdxWrite(_) => decl.kind == StreamKind::IdxInWrite,
                    _ => true,
                };
                if !ok {
                    return Err(KernelError::new(format!(
                        "op {i} ({:?}) does not match stream {slot} kind {:?}",
                        op.opcode, decl.kind
                    )));
                }
            }
            if let Opcode::IdxRead(slot) = op.opcode {
                let target = &self.ops[op.operands[0].value.index()];
                if target.opcode != Opcode::IdxAddr(slot) {
                    return Err(KernelError::new(format!(
                        "op {i} (IdxRead {slot}) must reference an IdxAddr of the same stream"
                    )));
                }
                if op.operands[0].distance != 0 {
                    return Err(KernelError::new(format!(
                        "op {i}: IdxRead/IdxAddr pairing must be same-iteration"
                    )));
                }
            }
        }
        // Each IdxAddr must be consumed by at least one IdxRead (a record
        // access expands to `record_words` single-word reads, so several
        // reads may pair with one address).
        for (i, op) in self.ops.iter().enumerate() {
            if let Opcode::IdxAddr(slot) = op.opcode {
                let readers = self
                    .ops
                    .iter()
                    .filter(|o| {
                        matches!(o.opcode, Opcode::IdxRead(s) if s == slot)
                            && o.operands[0].value.index() == i
                    })
                    .count();
                if readers == 0 {
                    return Err(KernelError::new(format!(
                        "IdxAddr op {i} on {slot} has no paired IdxRead"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Ops per iteration touching each stream's data port, in program order
    /// (used by the scheduler's ordering chains and by the executor).
    pub fn stream_data_ops(&self, slot: StreamSlot) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.opcode.stream() == Some(slot)
                    && matches!(op.opcode.class(), OpClass::StreamPort(_))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Ops per iteration touching each stream's address port, in program
    /// order.
    pub fn stream_addr_ops(&self, slot: StreamSlot) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.opcode.stream() == Some(slot)
                    && matches!(op.opcode.class(), OpClass::AddrPort(_))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Incremental builder for [`Kernel`] bodies.
///
/// # Example
///
/// ```
/// use isrf_kernel::ir::{KernelBuilder, StreamKind};
///
/// let mut b = KernelBuilder::new("scale");
/// let input = b.stream("in", StreamKind::SeqIn);
/// let output = b.stream("out", StreamKind::SeqOut);
/// let x = b.seq_read(input);
/// let two = b.constant(2);
/// let y = b.mul(x, two);
/// b.seq_write(output, y);
/// let kernel = b.build().unwrap();
/// assert_eq!(kernel.ops.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    streams: Vec<StreamDecl>,
    ops: Vec<Op>,
    lines: Vec<u32>,
    cur_line: u32,
}

impl KernelBuilder {
    /// Start a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            streams: Vec::new(),
            ops: Vec::new(),
            lines: Vec::new(),
            cur_line: 0,
        }
    }

    /// Tag subsequently pushed ops with a frontend source line (0 = none).
    pub fn set_source_line(&mut self, line: u32) {
        self.cur_line = line;
    }

    /// Declare a stream and get its slot.
    pub fn stream(&mut self, name: impl Into<String>, kind: StreamKind) -> StreamSlot {
        let slot = StreamSlot(u8::try_from(self.streams.len()).expect("too many streams"));
        self.streams.push(StreamDecl {
            name: name.into(),
            kind,
        });
        slot
    }

    /// Append an op with explicit operands.
    pub fn push(&mut self, opcode: Opcode, operands: Vec<Operand>) -> ValueId {
        assert_eq!(
            operands.len(),
            opcode.arity(),
            "{opcode:?} takes {} operands",
            opcode.arity()
        );
        let id = ValueId(u32::try_from(self.ops.len()).expect("too many ops"));
        self.ops.push(Op { opcode, operands });
        self.lines.push(self.cur_line);
        id
    }

    /// Replace operand `index` of op `op` (used to patch forward
    /// loop-carried references, e.g. CBC feedback where the consumed value
    /// is only built later in the body).
    ///
    /// # Panics
    ///
    /// Panics if the op or operand index is out of range.
    pub fn set_operand(&mut self, op: ValueId, index: usize, operand: Operand) {
        self.ops[op.index()].operands[index] = operand;
    }

    /// Finish and validate the kernel.
    ///
    /// # Errors
    ///
    /// Propagates [`Kernel::validate`] failures.
    pub fn build(self) -> Result<Kernel, KernelError> {
        let k = Kernel {
            name: self.name,
            streams: self.streams,
            ops: self.ops,
            lines: self.lines,
        };
        k.validate()?;
        Ok(k)
    }

    // ---- convenience constructors ----

    /// Literal constant.
    pub fn constant(&mut self, w: Word) -> ValueId {
        self.push(Opcode::Const(w), vec![])
    }

    /// Float literal constant.
    pub fn constant_f(&mut self, v: f32) -> ValueId {
        self.constant(isrf_core::word::from_f32(v))
    }

    /// This cluster's lane index.
    pub fn lane_id(&mut self) -> ValueId {
        self.push(Opcode::LaneId, vec![])
    }

    /// Number of lanes.
    pub fn lane_count(&mut self) -> ValueId {
        self.push(Opcode::LaneCount, vec![])
    }

    /// Current iteration number.
    pub fn iter_id(&mut self) -> ValueId {
        self.push(Opcode::IterId, vec![])
    }

    /// Pop from a sequential input stream.
    pub fn seq_read(&mut self, s: StreamSlot) -> ValueId {
        self.push(Opcode::SeqRead(s), vec![])
    }

    /// Push to a sequential output stream.
    pub fn seq_write(&mut self, s: StreamSlot, v: impl Into<Operand>) -> ValueId {
        self.push(Opcode::SeqWrite(s), vec![v.into()])
    }

    /// Conditional read (lanes with a true condition receive elements).
    pub fn cond_read(&mut self, s: StreamSlot, cond: impl Into<Operand>) -> ValueId {
        self.push(Opcode::CondRead(s), vec![cond.into()])
    }

    /// Per-lane conditional read (pop this lane's substream if `cond`).
    pub fn cond_lane_read(&mut self, s: StreamSlot, cond: impl Into<Operand>) -> ValueId {
        self.push(Opcode::CondLaneRead(s), vec![cond.into()])
    }

    /// Conditional write.
    pub fn cond_write(
        &mut self,
        s: StreamSlot,
        cond: impl Into<Operand>,
        v: impl Into<Operand>,
    ) -> ValueId {
        self.push(Opcode::CondWrite(s), vec![cond.into(), v.into()])
    }

    /// Issue an indexed address; pair with [`KernelBuilder::idx_read`].
    pub fn idx_addr(&mut self, s: StreamSlot, addr: impl Into<Operand>) -> ValueId {
        self.push(Opcode::IdxAddr(s), vec![addr.into()])
    }

    /// Read the data of a previously issued [`KernelBuilder::idx_addr`].
    pub fn idx_read(&mut self, s: StreamSlot, addr_op: ValueId) -> ValueId {
        self.push(Opcode::IdxRead(s), vec![addr_op.into()])
    }

    /// Issue address and data read together; returns the data value.
    pub fn idx_load(&mut self, s: StreamSlot, addr: impl Into<Operand>) -> ValueId {
        let a = self.idx_addr(s, addr);
        self.idx_read(s, a)
    }

    /// Issue one record address and read all `record_words` words of the
    /// record (the FIFO-head counter expands the record in hardware).
    pub fn idx_load_record(
        &mut self,
        s: StreamSlot,
        addr: impl Into<Operand>,
        record_words: u32,
    ) -> Vec<ValueId> {
        let a = self.idx_addr(s, addr);
        (0..record_words).map(|_| self.idx_read(s, a)).collect()
    }

    /// Indexed write of `v` at `addr`.
    pub fn idx_write(
        &mut self,
        s: StreamSlot,
        addr: impl Into<Operand>,
        v: impl Into<Operand>,
    ) -> ValueId {
        self.push(Opcode::IdxWrite(s), vec![addr.into(), v.into()])
    }

    /// Scratchpad read.
    pub fn scratch_read(&mut self, addr: impl Into<Operand>) -> ValueId {
        self.push(Opcode::ScratchRead, vec![addr.into()])
    }

    /// Scratchpad write.
    pub fn scratch_write(&mut self, addr: impl Into<Operand>, v: impl Into<Operand>) -> ValueId {
        self.push(Opcode::ScratchWrite, vec![addr.into(), v.into()])
    }

    /// Inter-cluster rotate-by-`rotate` permutation.
    pub fn comm_rotate(&mut self, rotate: i32, v: impl Into<Operand>) -> ValueId {
        self.push(Opcode::Comm { rotate }, vec![v.into()])
    }

    /// Inter-cluster XOR-`mask` exchange (butterfly partner swap).
    pub fn comm_xor(&mut self, mask: u32, v: impl Into<Operand>) -> ValueId {
        self.push(Opcode::CommXor { mask }, vec![v.into()])
    }

    /// `select(cond, a, b)`.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> ValueId {
        self.push(Opcode::Select, vec![cond.into(), a.into(), b.into()])
    }
}

macro_rules! binary_builders {
    ($($fn_name:ident => $opcode:ident),* $(,)?) => {
        impl KernelBuilder {
            $(
                #[doc = concat!("Binary `", stringify!($opcode), "` op.")]
                pub fn $fn_name(
                    &mut self,
                    a: impl Into<Operand>,
                    b: impl Into<Operand>,
                ) -> ValueId {
                    self.push(Opcode::$opcode, vec![a.into(), b.into()])
                }
            )*
        }
    };
}

binary_builders!(
    add => Add, sub => Sub, mul => Mul, div => Div, rem => Rem,
    and => And, or => Or, xor => Xor, shl => Shl, shr => Shr, sra => Sra,
    lt => Lt, le => Le, eq => Eq, ne => Ne, ult => ULt, min => Min, max => Max,
    fadd => FAdd, fsub => FSub, fmul => FMul, fdiv => FDiv,
    flt => FLt, fle => FLe, feq => FEq, fmin => FMin, fmax => FMax,
);

macro_rules! unary_builders {
    ($($fn_name:ident => $opcode:ident),* $(,)?) => {
        impl KernelBuilder {
            $(
                #[doc = concat!("Unary `", stringify!($opcode), "` op.")]
                pub fn $fn_name(&mut self, a: impl Into<Operand>) -> ValueId {
                    self.push(Opcode::$opcode, vec![a.into()])
                }
            )*
        }
    };
}

unary_builders!(
    mov => Mov, not => Not, neg => Neg, fneg => FNeg, itof => IToF, ftoi => FToI,
);

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_kernel() -> Kernel {
        // The Figure 10 kernel: out[i] = foo(in[i], LUT[in[i]]).
        let mut b = KernelBuilder::new("lookup");
        let sin = b.stream("in", StreamKind::SeqIn);
        let lut = b.stream("LUT", StreamKind::IdxInRead);
        let sout = b.stream("out", StreamKind::SeqOut);
        let a = b.seq_read(sin);
        let v = b.idx_load(lut, a);
        let c = b.add(a, v);
        b.seq_write(sout, c);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_kernel() {
        let k = lookup_kernel();
        assert_eq!(k.ops.len(), 5);
        assert_eq!(k.streams.len(), 3);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn arity_is_enforced() {
        for op in [Opcode::Add, Opcode::Select, Opcode::Mov, Opcode::LaneId] {
            assert!(op.arity() <= 3);
        }
        assert_eq!(Opcode::Select.arity(), 3);
        assert_eq!(Opcode::SeqRead(StreamSlot(0)).arity(), 0);
        assert_eq!(Opcode::IdxWrite(StreamSlot(0)).arity(), 2);
    }

    #[test]
    #[should_panic(expected = "takes 2 operands")]
    fn push_rejects_wrong_arity() {
        let mut b = KernelBuilder::new("bad");
        let c = b.constant(1);
        b.push(Opcode::Add, vec![c.into()]);
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let k = Kernel {
            name: "fwd".into(),
            streams: vec![],
            ops: vec![Op {
                opcode: Opcode::Mov,
                operands: vec![Operand::from(ValueId(0))],
            }],
            lines: vec![],
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn validate_rejects_kind_mismatch() {
        let mut b = KernelBuilder::new("bad");
        let s = b.stream("in", StreamKind::SeqIn);
        let v = b.seq_read(s);
        // Writing to an input stream is invalid.
        b.push(Opcode::SeqWrite(s), vec![v.into()]);
        assert!(b.build().is_err());
    }

    #[test]
    fn validate_rejects_unpaired_idx_addr() {
        let mut b = KernelBuilder::new("bad");
        let lut = b.stream("LUT", StreamKind::IdxInRead);
        let c = b.constant(0);
        b.idx_addr(lut, c); // no matching IdxRead
        assert!(b.build().is_err());
    }

    #[test]
    fn loop_carried_operands_allow_self_reference() {
        // acc(i) = acc(i-1) + in(i): classic reduction.
        let mut b = KernelBuilder::new("reduce");
        let sin = b.stream("in", StreamKind::SeqIn);
        let x = b.seq_read(sin);
        // Forward-declare the accumulator by referencing the add op itself.
        let acc = b.push(
            Opcode::Add,
            vec![
                Operand::from(x),
                Operand::carried(ValueId(1), 1, 0), // the add op is op index 1
            ],
        );
        assert_eq!(acc.index(), 1);
        let k = b.build().unwrap();
        assert!(k.validate().is_ok());
    }

    #[test]
    fn stream_op_queries() {
        let k = lookup_kernel();
        let lut = StreamSlot(1);
        assert_eq!(k.stream_addr_ops(lut).len(), 1);
        assert_eq!(k.stream_data_ops(lut).len(), 1);
        assert_eq!(k.stream_data_ops(StreamSlot(0)).len(), 1);
        assert_eq!(k.stream(lut).kind, StreamKind::IdxInRead);
    }

    #[test]
    fn classes() {
        assert_eq!(Opcode::Add.class(), OpClass::Alu);
        assert_eq!(Opcode::Div.class(), OpClass::Divider);
        assert_eq!(Opcode::FDiv.class(), OpClass::Divider);
        assert_eq!(
            Opcode::IdxAddr(StreamSlot(2)).class(),
            OpClass::AddrPort(StreamSlot(2))
        );
        assert_eq!(Opcode::Const(5).class(), OpClass::Free);
        assert_eq!(Opcode::Comm { rotate: 1 }.class(), OpClass::Comm);
    }
}
