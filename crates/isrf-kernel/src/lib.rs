//! Kernel IR and VLIW modulo scheduler for stream kernels.
//!
//! Stream kernels are SIMD inner loops executed by every compute cluster of
//! the machine. This crate provides:
//!
//! * [`ir`] — the kernel intermediate representation: SSA ops over 32-bit
//!   words, loop-carried operand references, stream access ops (sequential,
//!   conditional, and indexed with split address-issue/data-read, mirroring
//!   the paper's KernelC extensions in Section 4.7), and a builder API.
//! * [`graph`] — dependence-graph construction, including the
//!   address/data-separation edges the paper sweeps in Figures 14–16 and
//!   the stream-ordering chains that keep FIFO semantics well-defined under
//!   software pipelining.
//! * [`sched`] — Rau-style iterative modulo scheduling with a modulo
//!   reservation table (4 pipelined FUs + 1 unpipelined divider per
//!   cluster, single-ported stream buffers and address FIFOs).
//!
//! # Example
//!
//! ```
//! use isrf_core::config::{ConfigName, MachineConfig};
//! use isrf_kernel::ir::{KernelBuilder, StreamKind};
//! use isrf_kernel::sched::{schedule, SchedParams};
//!
//! // The table-lookup kernel of Figure 10.
//! let mut b = KernelBuilder::new("lookup");
//! let input = b.stream("in", StreamKind::SeqIn);
//! let lut = b.stream("LUT", StreamKind::IdxInRead);
//! let output = b.stream("out", StreamKind::SeqOut);
//! let a = b.seq_read(input);
//! let v = b.idx_load(lut, a);
//! let c = b.add(a, v);
//! b.seq_write(output, c);
//! let kernel = b.build()?;
//!
//! let params = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4));
//! let sched = schedule(&kernel, &params)?;
//! assert!(sched.ii >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod hash;
pub mod ir;
pub mod sched;

pub use graph::{DepEdge, DepGraph, LatencyModel};
pub use hash::{kernel_hash, sched_params_hash, schedule_hash, StableHasher};
pub use ir::{Kernel, KernelBuilder, Op, Opcode, Operand, StreamKind, StreamSlot, ValueId};
pub use sched::{schedule, schedule_cached, SchedParams, Schedule, ScheduleError};
