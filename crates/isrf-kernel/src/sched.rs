//! Iterative modulo scheduling of kernel loops.
//!
//! The paper's kernels are compiled with an automated VLIW scheduler based
//! on the Imagine programming system; the quantity plotted in Figure 14 is
//! the *static schedule length of the inner loop*, i.e. the initiation
//! interval (II) of the software-pipelined loop. Two mechanisms determine
//! how II responds to the address/data separation:
//!
//! * Kernels whose indexed-address computation sits on a **loop-carried
//!   dependence** (Rijndael's chained cipher state, Sort's merge pointers)
//!   have the separation inside a recurrence circuit, so II — bounded below
//!   by the recurrence MII — grows with it.
//! * Kernels without such recurrences (FFT 2D, Filter, the IGraph kernels)
//!   absorb the separation into deeper software pipelining: II is resource
//!   bound and stays flat while the *span* (and hence pipeline fill/drain
//!   overhead) grows.
//!
//! This module implements Rau-style iterative modulo scheduling: compute
//! the resource and recurrence lower bounds, then attempt placement at
//! increasing II with a modulo reservation table and eviction-based
//! backtracking.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use isrf_core::config::MachineConfig;

use crate::graph::{build_graph, DepGraph, LatencyModel};
use crate::ir::{Kernel, OpClass};

/// Scheduling parameters: resources, latencies and separations.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedParams {
    /// Pipelined arithmetic units per cluster.
    pub fu_count: usize,
    /// Unpipelined dividers per cluster.
    pub divider_count: usize,
    /// Latency model (including the address/data separations).
    pub model: LatencyModel,
    /// Give up if no schedule is found at or below this II.
    pub max_ii: u32,
}

impl SchedParams {
    /// Parameters matching a machine configuration.
    pub fn from_machine(m: &MachineConfig) -> Self {
        SchedParams {
            fu_count: m.cluster.fu_count,
            divider_count: m.cluster.divider_count,
            model: LatencyModel {
                ops: m.cluster.latency.clone(),
                comm_latency: m.cluster.comm_latency,
                inlane_separation: m.sched.inlane_addr_data_separation,
                crosslane_separation: m.sched.crosslane_addr_data_separation,
            },
            max_ii: 4096,
        }
    }

    /// Override both address/data separations (parameter studies).
    pub fn with_separations(mut self, inlane: u32, crosslane: u32) -> Self {
        self.model.inlane_separation = inlane;
        self.model.crosslane_separation = crosslane;
        self
    }
}

/// A modulo schedule for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Initiation interval: a new iteration starts every `ii` cycles. This
    /// is the "loop length" of Figure 14.
    pub ii: u32,
    /// Issue slot of each op within its iteration.
    pub slots: Vec<u32>,
    /// Last issue slot + 1.
    pub span: u32,
    /// Cycle (relative to iteration start) by which every op's result has
    /// been produced — used for pipeline-drain accounting.
    pub completion: u32,
}

impl Schedule {
    /// Software-pipeline depth in stages.
    pub fn stages(&self) -> u32 {
        self.span.div_ceil(self.ii.max(1)).max(1)
    }

    /// Steady-state ALU utilization: issue slots used by arithmetic ops
    /// per iteration over the slots `fu_count` units provide in one II.
    pub fn alu_utilization(&self, kernel: &crate::ir::Kernel, fu_count: usize) -> f64 {
        let alu_ops = kernel
            .ops
            .iter()
            .filter(|o| matches!(o.opcode.class(), crate::ir::OpClass::Alu))
            .count();
        alu_ops as f64 / (self.ii.max(1) as u64 * fu_count as u64) as f64
    }
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    kernel: String,
    max_ii: u32,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel `{}` could not be scheduled at II <= {}",
            self.kernel, self.max_ii
        )
    }
}

impl std::error::Error for ScheduleError {}

/// Resource keys of the modulo reservation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    Alu,
    Divider,
    Comm,
    Scratch,
    /// Data port of stream slot `n`.
    StreamPort(u8),
    /// Address port of stream slot `n`.
    AddrPort(u8),
}

fn resource_of(class: OpClass) -> Option<Resource> {
    match class {
        OpClass::Alu => Some(Resource::Alu),
        OpClass::Divider => Some(Resource::Divider),
        OpClass::Comm => Some(Resource::Comm),
        OpClass::Scratch => Some(Resource::Scratch),
        OpClass::StreamPort(s) => Some(Resource::StreamPort(s.0)),
        OpClass::AddrPort(s) => Some(Resource::AddrPort(s.0)),
        OpClass::Free => None,
    }
}

/// Compute the resource-constrained minimum II.
fn res_mii(kernel: &Kernel, params: &SchedParams) -> u32 {
    use std::collections::BTreeMap;
    let mut demand: BTreeMap<Resource, u32> = BTreeMap::new();
    for op in &kernel.ops {
        if let Some(r) = resource_of(op.opcode.class()) {
            // The unpipelined divider is occupied for the full latency.
            let units = if r == Resource::Divider {
                params.model.latency(op.opcode)
            } else {
                1
            };
            *demand.entry(r).or_insert(0) += units;
        }
    }
    demand
        .into_iter()
        .map(|(r, d)| {
            let avail = match r {
                Resource::Alu => params.fu_count as u32,
                Resource::Divider => params.divider_count as u32,
                _ => 1,
            };
            d.div_ceil(avail.max(1))
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Longest-path heights via bounded Bellman-Ford over edge weights
/// `latency - ii * distance`; returns `None` when a positive cycle exists
/// (II infeasible for the recurrences).
fn heights(graph: &DepGraph, ii: u32) -> Option<Vec<i64>> {
    let n = graph.n;
    // Relax edges by descending `from`: ops are stored topologically, so a
    // node's successors (larger indices, for loop-independent edges) settle
    // before the node itself and the fixed point is reached in a couple of
    // rounds instead of O(dependence depth). The fixed point is unique, so
    // relaxation order never changes the result — only how fast the round
    // loop exits. The `n`-round cap still detects positive cycles.
    let mut order: Vec<u32> = (0..graph.edges.len() as u32).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(graph.edges[i as usize].from));
    let mut h = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for &i in &order {
            let e = &graph.edges[i as usize];
            let w = e.latency as i64 - (ii as i64) * e.distance as i64;
            if h[e.to] + w > h[e.from] {
                h[e.from] = h[e.to] + w;
                changed = true;
            }
        }
        if !changed {
            return Some(h);
        }
        if round == n {
            return None;
        }
    }
    Some(h)
}

/// Dense index of a [`Resource`] into the MRT's flat row array: the four
/// singleton resources first, then the per-slot stream data/address ports
/// interleaved.
fn res_index(r: Resource) -> usize {
    match r {
        Resource::Alu => 0,
        Resource::Divider => 1,
        Resource::Comm => 2,
        Resource::Scratch => 3,
        Resource::StreamPort(n) => 4 + 2 * n as usize,
        Resource::AddrPort(n) => 5 + 2 * n as usize,
    }
}

struct Mrt {
    ii: u32,
    /// Ops occupying each `(resource, modulo slot)`, flat-indexed as
    /// `res_index * ii + slot`.
    rows: Vec<Vec<usize>>,
    /// `rows[i].len()` mirrored as a plain array so the scheduling loop's
    /// slot probe is one load, no hashing or allocation.
    counts: Vec<u32>,
}

impl Mrt {
    fn new(ii: u32, n_resources: usize) -> Self {
        let cells = n_resources * ii as usize;
        Mrt {
            ii,
            rows: vec![Vec::new(); cells],
            counts: vec![0; cells],
        }
    }

    /// True when every modulo slot `op` would occupy at `t` still has
    /// capacity. Only valid while `op` itself is unplaced (the caller's
    /// invariant), which makes this exactly `conflicts(..).is_empty()`.
    fn is_free(
        &self,
        class: OpClass,
        latency: u32,
        t: u32,
        capacity: impl Fn(Resource) -> u32,
    ) -> bool {
        let Some(r) = resource_of(class) else {
            return true;
        };
        let cap = capacity(r);
        let base = res_index(r) * self.ii as usize;
        Self::occupancy(latency, class, t, self.ii)
            .into_iter()
            .all(|slot| self.counts[base + slot as usize] < cap)
    }

    /// The modulo slots `op` would occupy when issued at `t`.
    fn occupancy(op_latency: u32, class: OpClass, t: u32, ii: u32) -> Vec<u32> {
        let width = if matches!(class, OpClass::Divider) {
            op_latency.clamp(1, ii)
        } else {
            1
        };
        (0..width).map(|k| (t + k) % ii).collect()
    }

    fn conflicts(
        &self,
        op: usize,
        class: OpClass,
        latency: u32,
        t: u32,
        capacity: impl Fn(Resource) -> u32,
    ) -> Vec<usize> {
        let Some(r) = resource_of(class) else {
            return vec![];
        };
        let cap = capacity(r) as usize;
        let base = res_index(r) * self.ii as usize;
        let mut out = Vec::new();
        for slot in Self::occupancy(latency, class, t, self.ii) {
            let users = &self.rows[base + slot as usize];
            let users: Vec<usize> = users.iter().copied().filter(|&u| u != op).collect();
            if users.len() >= cap {
                // Evicting the earliest-placed user frees the slot.
                out.extend(users.iter().take(users.len() + 1 - cap));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn place(&mut self, op: usize, class: OpClass, latency: u32, t: u32) {
        if let Some(r) = resource_of(class) {
            let base = res_index(r) * self.ii as usize;
            for slot in Self::occupancy(latency, class, t, self.ii) {
                self.rows[base + slot as usize].push(op);
                self.counts[base + slot as usize] += 1;
            }
        }
    }

    fn remove(&mut self, op: usize, class: OpClass, latency: u32, t: u32) {
        if let Some(r) = resource_of(class) {
            let base = res_index(r) * self.ii as usize;
            for slot in Self::occupancy(latency, class, t, self.ii) {
                let v = &mut self.rows[base + slot as usize];
                if let Some(pos) = v.iter().position(|&u| u == op) {
                    v.swap_remove(pos);
                    self.counts[base + slot as usize] -= 1;
                }
            }
        }
    }
}

/// Schedule `kernel` under `params`, memoizing the result by content hash.
///
/// Modulo scheduling dominates per-invocation setup cost in parameter
/// sweeps where the same kernel is rescheduled at every sweep point that
/// shares a separation setting. This wrapper keys a process-wide memo by
/// ([`crate::hash::kernel_hash`], [`crate::hash::sched_params_hash`]) and
/// returns a shared `Arc<Schedule>`; structurally identical requests —
/// including from concurrent sweep workers — schedule once.
///
/// The memo lock is not held while scheduling, so two workers racing on
/// the same key may both schedule; the first insert wins and the result is
/// identical either way (scheduling is deterministic).
///
/// # Errors
///
/// Returns [`ScheduleError`] exactly as [`schedule`] does. Errors are not
/// memoized.
pub fn schedule_cached(
    kernel: &Kernel,
    params: &SchedParams,
) -> Result<Arc<Schedule>, ScheduleError> {
    // BTreeMap rather than HashMap: the simulator's determinism lints ban
    // randomly-seeded containers, and the memo is small (tens of entries).
    #[allow(clippy::type_complexity)]
    static MEMO: OnceLock<Mutex<BTreeMap<(u128, u128), Arc<Schedule>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (
        crate::hash::kernel_hash(kernel),
        crate::hash::sched_params_hash(params),
    );
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        SCHED_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(hit));
    }
    SCHED_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let fresh = Arc::new(schedule(kernel, params)?);
    let mut guard = memo.lock().unwrap();
    Ok(Arc::clone(guard.entry(key).or_insert(fresh)))
}

static SCHED_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static SCHED_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime `(hits, misses)` of the [`schedule_cached`] memo.
///
/// A miss that loses the insert race still counts as a miss (the
/// scheduling work really happened); long-running services export these
/// through their metrics endpoint.
pub fn schedule_cache_stats() -> (u64, u64) {
    (
        SCHED_CACHE_HITS.load(Ordering::Relaxed),
        SCHED_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Schedule `kernel` under `params`.
///
/// # Errors
///
/// Returns [`ScheduleError`] when no schedule exists at `params.max_ii` or
/// below (e.g. a recurrence longer than `max_ii`).
pub fn schedule(kernel: &Kernel, params: &SchedParams) -> Result<Schedule, ScheduleError> {
    let graph = build_graph(kernel, &params.model);
    let res_bound = res_mii(kernel, params);
    // Recurrence feasibility is monotone in II (loop-carried edge weights
    // only shrink as II grows), so binary-search the recurrence MII.
    let mut lo = res_bound;
    let mut hi = params.max_ii;
    if heights(&graph, hi).is_none() {
        return Err(ScheduleError {
            kernel: kernel.name.clone(),
            max_ii: params.max_ii,
        });
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if heights(&graph, mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mii = lo;
    for ii in mii..=params.max_ii {
        let Some(h) = heights(&graph, ii) else {
            continue; // recurrence-infeasible at this II
        };
        if let Some(slots) = attempt(kernel, &graph, params, ii, &h) {
            let span = slots.iter().copied().max().unwrap_or(0) + 1;
            let completion = kernel
                .ops
                .iter()
                .enumerate()
                .map(|(i, op)| slots[i] + params.model.latency(op.opcode).max(1))
                .max()
                .unwrap_or(1);
            return Ok(Schedule {
                ii,
                slots,
                span,
                completion,
            });
        }
    }
    Err(ScheduleError {
        kernel: kernel.name.clone(),
        max_ii: params.max_ii,
    })
}

fn attempt(
    kernel: &Kernel,
    graph: &DepGraph,
    params: &SchedParams,
    ii: u32,
    heights: &[i64],
) -> Option<Vec<u32>> {
    let n = kernel.ops.len();
    if n == 0 {
        return Some(vec![]);
    }
    let capacity = |r: Resource| -> u32 {
        match r {
            Resource::Alu => params.fu_count as u32,
            Resource::Divider => params.divider_count as u32,
            _ => 1,
        }
    };
    let lat = |i: usize| params.model.latency(kernel.ops[i].opcode);
    let class = |i: usize| kernel.ops[i].opcode.class();
    // Edge latency: IdxRead pairing edges carry the separation, so compute
    // effective edge latency from the graph (already encoded there).
    let n_resources = 4 + 2 * kernel.streams.len();
    let mut mrt = Mrt::new(ii, n_resources);
    let mut slot: Vec<Option<u32>> = vec![None; n];
    let mut prev_slot: Vec<Option<u32>> = vec![None; n];
    let mut budget = 20 * n as i64 + 200;

    // Priority: height, then original index for determinism. The work list
    // is a lazy max-heap over that static key: popped entries whose op was
    // scheduled in the meantime are discarded, and evicted ops are pushed
    // back, so every unscheduled op always has a live entry and each pop
    // yields exactly the op a full `max_by_key` scan would.
    let mut work: std::collections::BinaryHeap<(i64, std::cmp::Reverse<usize>)> =
        (0..n).map(|i| (heights[i], std::cmp::Reverse(i))).collect();
    let mut evict: Vec<usize> = Vec::new();

    while let Some((_, std::cmp::Reverse(op))) = work.pop() {
        if slot[op].is_some() {
            continue; // stale entry: scheduled since it was pushed
        }
        budget -= 1;
        if budget < 0 {
            return None;
        }
        // Earliest start from scheduled predecessors.
        let mut estart: i64 = 0;
        for e in graph.preds(op) {
            if let Some(s) = slot[e.from] {
                let t = s as i64 + e.latency as i64 - (ii as i64) * e.distance as i64;
                estart = estart.max(t);
            }
        }
        let estart = estart.max(0) as u32;
        // Latest start satisfying the already-scheduled successors, and
        // self-edge feasibility (t-independent). Together these are the
        // `succs_ok` check, hoisted out of the per-candidate loop; the
        // predecessor half of `succs_ok` is implied by `t >= estart`.
        let mut tmax = i64::MAX;
        let mut self_ok = true;
        for e in graph.succs(op) {
            if e.to == op {
                if (ii as i64) * (e.distance as i64) < e.latency as i64 {
                    self_ok = false;
                }
                continue;
            }
            if let Some(s) = slot[e.to] {
                tmax = tmax.min(s as i64 + (ii as i64) * (e.distance as i64) - e.latency as i64);
            }
        }
        // Find a conflict-free slot in [estart, estart + ii).
        let mut chosen = None;
        if self_ok {
            for t in estart..estart + ii {
                if i64::from(t) > tmax {
                    break;
                }
                if mrt.is_free(class(op), lat(op), t, capacity) {
                    chosen = Some((t, false));
                    break;
                }
            }
        }
        let (t, forced) = chosen.unwrap_or_else(|| {
            let min_forced = prev_slot[op].map(|p| p + 1).unwrap_or(0);
            (estart.max(min_forced), true)
        });
        if forced {
            // Evict resource conflicts.
            for victim in mrt.conflicts(op, class(op), lat(op), t, capacity) {
                if let Some(vs) = slot[victim].take() {
                    mrt.remove(victim, class(victim), lat(victim), vs);
                    work.push((heights[victim], std::cmp::Reverse(victim)));
                }
            }
        }
        mrt.place(op, class(op), lat(op), t);
        slot[op] = Some(t);
        prev_slot[op] = Some(t);
        // Evict scheduled ops whose constraints this placement violates.
        evict.clear();
        for e in graph.succs(op) {
            if e.to == op {
                continue;
            }
            if let Some(s) = slot[e.to] {
                let need = t as i64 + e.latency as i64 - (ii as i64) * e.distance as i64;
                if (s as i64) < need {
                    evict.push(e.to);
                }
            }
        }
        for e in graph.preds(op) {
            if e.from == op {
                continue;
            }
            if let Some(s) = slot[e.from] {
                let need = s as i64 + e.latency as i64 - (ii as i64) * e.distance as i64;
                if (t as i64) < need {
                    evict.push(e.from);
                }
            }
        }
        for &v in &evict {
            if let Some(s) = slot[v].take() {
                mrt.remove(v, class(v), lat(v), s);
                work.push((heights[v], std::cmp::Reverse(v)));
            }
        }
    }
    // Self-edges (single-op wrap chains) were skipped during eviction; they
    // impose ii * distance >= latency, i.e. ii >= 1, always true here, but
    // verify every constraint as a final safety net.
    for e in &graph.edges {
        let (sf, st) = (slot[e.from].unwrap() as i64, slot[e.to].unwrap() as i64);
        if st + (ii as i64) * (e.distance as i64) < sf + e.latency as i64 {
            return None;
        }
    }
    Some(slot.into_iter().map(|s| s.unwrap()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelBuilder, Opcode, Operand, StreamKind, ValueId};
    use isrf_core::config::{ConfigName, OpLatencies};

    fn params() -> SchedParams {
        SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4))
    }

    fn verify(kernel: &Kernel, p: &SchedParams, s: &Schedule) {
        let graph = build_graph(kernel, &p.model);
        for e in &graph.edges {
            assert!(
                s.slots[e.to] as i64 + (s.ii as i64) * e.distance as i64
                    >= s.slots[e.from] as i64 + e.latency as i64,
                "edge {e:?} violated: slots {} -> {}, ii {}",
                s.slots[e.from],
                s.slots[e.to],
                s.ii
            );
        }
        // Modulo resource check.
        use std::collections::BTreeMap;
        let mut mrt: BTreeMap<(Resource, u32), u32> = BTreeMap::new();
        for (i, op) in kernel.ops.iter().enumerate() {
            if let Some(r) = resource_of(op.opcode.class()) {
                for slot in Mrt::occupancy(
                    p.model.latency(op.opcode),
                    op.opcode.class(),
                    s.slots[i],
                    s.ii,
                ) {
                    *mrt.entry((r, slot)).or_insert(0) += 1;
                }
            }
        }
        for ((r, slot), count) in mrt {
            let cap = match r {
                Resource::Alu => p.fu_count as u32,
                Resource::Divider => p.divider_count as u32,
                _ => 1,
            };
            assert!(
                count <= cap,
                "resource {r:?} oversubscribed at modulo slot {slot}"
            );
        }
    }

    fn simple_mac_kernel(n_mults: usize) -> Kernel {
        let mut b = KernelBuilder::new("mac");
        let sin = b.stream("in", StreamKind::SeqIn);
        let sout = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(sin);
        let mut acc = x;
        for _ in 0..n_mults {
            acc = b.mul(acc, x);
        }
        b.seq_write(sout, acc);
        b.build().unwrap()
    }

    #[test]
    fn independent_alu_ops_hit_resource_bound() {
        // 8 independent adds on 4 FUs: II = 2.
        let mut b = KernelBuilder::new("alu8");
        let sin = b.stream("in", StreamKind::SeqIn);
        let sout = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(sin);
        let mut last = x;
        let adds: Vec<ValueId> = (0..8).map(|_| b.add(x, x)).collect();
        for a in adds {
            last = a;
        }
        b.seq_write(sout, last);
        let k = b.build().unwrap();
        let p = params();
        let s = schedule(&k, &p).unwrap();
        assert_eq!(s.ii, 2);
        verify(&k, &p, &s);
    }

    #[test]
    fn stream_port_bounds_ii() {
        // 4 reads of one stream: II >= 4 from the port chain.
        let mut b = KernelBuilder::new("ports");
        let sin = b.stream("in", StreamKind::SeqIn);
        let sout = b.stream("out", StreamKind::SeqOut);
        let reads: Vec<ValueId> = (0..4).map(|_| b.seq_read(sin)).collect();
        let s01 = b.add(reads[0], reads[1]);
        let s23 = b.add(reads[2], reads[3]);
        let sum = b.add(s01, s23);
        b.seq_write(sout, sum);
        let k = b.build().unwrap();
        let p = params();
        let s = schedule(&k, &p).unwrap();
        assert_eq!(s.ii, 4);
        verify(&k, &p, &s);
        // Same-stream accesses must stay within one II window.
        let slots: Vec<u32> = (0..4).map(|i| s.slots[i]).collect();
        let (min, max) = (*slots.iter().min().unwrap(), *slots.iter().max().unwrap());
        assert!(max - min < s.ii, "stream accesses wrap the II window");
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "program order kept");
    }

    #[test]
    fn recurrence_bounds_ii() {
        // acc = acc * x: int_mul latency 4 on a distance-1 cycle: II >= 4.
        let mut b = KernelBuilder::new("rec");
        let sin = b.stream("in", StreamKind::SeqIn);
        let x = b.seq_read(sin);
        let _acc = b.push(
            Opcode::Mul,
            vec![x.into(), Operand::carried(ValueId(1), 1, 1)],
        );
        let k = b.build().unwrap();
        let p = params();
        let s = schedule(&k, &p).unwrap();
        assert_eq!(s.ii, 4);
        verify(&k, &p, &s);
    }

    #[test]
    fn separation_outside_recurrence_grows_span_not_ii() {
        // Table lookup with independent iterations (Figure 10 style).
        let mut b = KernelBuilder::new("lut");
        let sin = b.stream("in", StreamKind::SeqIn);
        let lut = b.stream("LUT", StreamKind::IdxInRead);
        let sout = b.stream("out", StreamKind::SeqOut);
        let a = b.seq_read(sin);
        let v = b.idx_load(lut, a);
        let c = b.add(a, v);
        b.seq_write(sout, c);
        let k = b.build().unwrap();

        let mut iis = vec![];
        let mut spans = vec![];
        for sep in [2u32, 6, 10] {
            let p = params().with_separations(sep, 20);
            let s = schedule(&k, &p).unwrap();
            verify(&k, &p, &s);
            iis.push(s.ii);
            spans.push(s.span);
        }
        assert_eq!(
            iis[0], iis[2],
            "II flat without recurrence (Fig 14 flat lines)"
        );
        assert!(spans[2] > spans[0], "span grows with separation");
    }

    #[test]
    fn separation_inside_recurrence_grows_ii() {
        // Address depends on previous iteration's looked-up data
        // (Rijndael-style chaining): II tracks the separation.
        let mut b = KernelBuilder::new("chained-lut");
        let lut = b.stream("LUT", StreamKind::IdxInRead);
        let sout = b.stream("out", StreamKind::SeqOut);
        // addr = prev_data & 0xff
        let mask = b.constant(0xff);
        let addr = b.push(
            Opcode::And,
            vec![Operand::carried(ValueId(3), 1, 0), mask.into()],
        );
        let a = b.idx_addr(lut, addr);
        let d = b.idx_read(lut, a); // ValueId(3)
        assert_eq!(d.index(), 3);
        b.seq_write(sout, d);
        let k = b.build().unwrap();

        let mut iis = vec![];
        for sep in [2u32, 6, 10] {
            let p = params().with_separations(sep, 20);
            let s = schedule(&k, &p).unwrap();
            verify(&k, &p, &s);
            iis.push(s.ii);
        }
        assert!(iis[1] > iis[0] && iis[2] > iis[1], "II grows: {iis:?}");
        // The recurrence is and(2) + addr(1) + sep + read(1)... ~ sep + 4.
        assert!(
            iis[2] as i64 - iis[0] as i64 >= 7,
            "slope ~1 per cycle: {iis:?}"
        );
    }

    #[test]
    fn unpipelined_divider_occupies_mrt() {
        let mut b = KernelBuilder::new("divs");
        let sin = b.stream("in", StreamKind::SeqIn);
        let sout = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(sin);
        let d1 = b.div(x, x);
        let d2 = b.div(d1, x);
        b.seq_write(sout, d2);
        let k = b.build().unwrap();
        let p = params();
        let s = schedule(&k, &p).unwrap();
        // Two unpipelined 16-cycle divides: II >= 32.
        assert!(s.ii >= 32, "II {} should be >= 32", s.ii);
        verify(&k, &p, &s);
    }

    #[test]
    fn deterministic() {
        let k = simple_mac_kernel(6);
        let p = params();
        let a = schedule(&k, &p).unwrap();
        let b2 = schedule(&k, &p).unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn max_ii_limits_search() {
        let mut b = KernelBuilder::new("deep-rec");
        let sin = b.stream("in", StreamKind::SeqIn);
        let x = b.seq_read(sin);
        // 10 chained multiplies in a distance-1 recurrence: RecMII 40.
        let mut acc_ids = vec![];
        let mut prev = Operand::carried(ValueId(10), 1, 1);
        for _ in 0..10 {
            let m = b.push(Opcode::Mul, vec![x.into(), prev]);
            prev = m.into();
            acc_ids.push(m);
        }
        assert_eq!(acc_ids.last().unwrap().index(), 10);
        let k = b.build().unwrap();
        let mut p = params();
        p.max_ii = 8;
        assert!(schedule(&k, &p).is_err());
        p.max_ii = 4096;
        let s = schedule(&k, &p).unwrap();
        assert!(s.ii >= 40);
        verify(&k, &p, &s);
    }

    #[test]
    fn stages_and_completion() {
        let k = simple_mac_kernel(8);
        let p = params();
        let s = schedule(&k, &p).unwrap();
        assert!(s.stages() >= 1);
        assert!(s.completion >= s.span);
        assert_eq!(s.stages(), s.span.div_ceil(s.ii));
    }

    #[test]
    fn alu_utilization_is_a_fraction() {
        let k = simple_mac_kernel(8);
        let p = params();
        let s = schedule(&k, &p).unwrap();
        let u = s.alu_utilization(&k, p.fu_count);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn empty_kernel_schedules() {
        let k = KernelBuilder::new("empty").build().unwrap();
        let s = schedule(&k, &params()).unwrap();
        assert_eq!(s.slots.len(), 0);
    }

    #[test]
    fn latency_model_sanity() {
        let m = LatencyModel::with_defaults(OpLatencies::default(), 2);
        assert_eq!(m.latency(Opcode::Const(0)), 0);
        assert_eq!(m.latency(Opcode::Mul), 4);
        assert_eq!(m.latency(Opcode::Div), 16);
        assert_eq!(m.latency(Opcode::CondRead(crate::ir::StreamSlot(0))), 3);
    }
}
