//! Stable content hashing for kernel IR, schedules and scheduling
//! parameters.
//!
//! The simulator caches compiled kernel tapes and modulo schedules across
//! invocations and sweep points. Cache keys must be *content* hashes —
//! stable across processes and independent of allocation addresses — so
//! two structurally identical kernels built by different sweep workers hit
//! the same entry. `std::hash::Hash` offers no such stability guarantee
//! (and the default hasher is randomly seeded), so this module hashes an
//! explicit byte encoding of each structure with two fixed-seed mixers and
//! returns the 128-bit concatenation, making accidental collisions
//! negligible.
//!
//! Diagnostic-only fields (kernel name, source lines) are excluded: they
//! do not affect scheduling or execution, so kernels differing only there
//! share cache entries.

use crate::graph::LatencyModel;
use crate::ir::{Kernel, Opcode, Operand};
use crate::sched::{SchedParams, Schedule};

/// Accumulates a byte stream into two independently-seeded 64-bit states.
///
/// State `a` is FNV-1a; state `b` is a multiply-rotate mixer with a
/// different seed. Both are fixed constants, so the final
/// [`StableHasher::finish128`] value depends only on the bytes written.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A hasher with the fixed seeds.
    pub fn new() -> Self {
        StableHasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    #[inline]
    fn byte(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ u64::from(v))
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .rotate_left(23);
    }

    /// Write one `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.byte(v);
    }

    /// Write a `u32` (little-endian byte order).
    pub fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Write an `i32` (two's-complement little-endian).
    pub fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    /// Write a `u64` (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Write a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish128(&self) -> u128 {
        // A final avalanche keeps short inputs from leaving the seeds
        // nearly intact.
        let mut a = self.a;
        let mut b = self.b;
        a ^= a >> 33;
        a = a.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        a ^= a >> 29;
        b ^= b >> 31;
        b = b.wrapping_mul(0xff51_afd7_ed55_8ccd);
        b ^= b >> 33;
        (u128::from(a) << 64) | u128::from(b)
    }
}

fn hash_operand(h: &mut StableHasher, o: &Operand) {
    h.write_u32(o.value.0);
    h.write_u32(o.distance);
    h.write_u32(o.init);
}

fn hash_opcode(h: &mut StableHasher, opc: Opcode) {
    use Opcode::*;
    // Explicit stable tags: never reordered, independent of the Rust
    // discriminant layout.
    let (tag, payload): (u8, u32) = match opc {
        Const(w) => (0, w),
        LaneId => (1, 0),
        LaneCount => (2, 0),
        IterId => (3, 0),
        Mov => (4, 0),
        Not => (5, 0),
        Neg => (6, 0),
        FNeg => (7, 0),
        IToF => (8, 0),
        FToI => (9, 0),
        Add => (10, 0),
        Sub => (11, 0),
        Mul => (12, 0),
        Div => (13, 0),
        Rem => (14, 0),
        And => (15, 0),
        Or => (16, 0),
        Xor => (17, 0),
        Shl => (18, 0),
        Shr => (19, 0),
        Sra => (20, 0),
        Lt => (21, 0),
        Le => (22, 0),
        Eq => (23, 0),
        Ne => (24, 0),
        ULt => (25, 0),
        Min => (26, 0),
        Max => (27, 0),
        FAdd => (28, 0),
        FSub => (29, 0),
        FMul => (30, 0),
        FDiv => (31, 0),
        FLt => (32, 0),
        FLe => (33, 0),
        FEq => (34, 0),
        FMin => (35, 0),
        FMax => (36, 0),
        Select => (37, 0),
        SeqRead(s) => (38, u32::from(s.0)),
        SeqWrite(s) => (39, u32::from(s.0)),
        CondRead(s) => (40, u32::from(s.0)),
        CondLaneRead(s) => (41, u32::from(s.0)),
        CondWrite(s) => (42, u32::from(s.0)),
        IdxAddr(s) => (43, u32::from(s.0)),
        IdxRead(s) => (44, u32::from(s.0)),
        IdxWrite(s) => (45, u32::from(s.0)),
        ScratchRead => (46, 0),
        ScratchWrite => (47, 0),
        Comm { rotate } => (48, rotate as u32),
        CommXor { mask } => (49, mask),
    };
    h.write_u8(tag);
    h.write_u32(payload);
}

/// Content hash of a kernel: stream kinds and the full op list (opcodes
/// and operands). The name and source lines are diagnostic and excluded.
pub fn kernel_hash(k: &Kernel) -> u128 {
    let mut h = StableHasher::new();
    h.write_u8(b'K');
    h.write_usize(k.streams.len());
    for s in &k.streams {
        h.write_u8(match s.kind {
            crate::ir::StreamKind::SeqIn => 0,
            crate::ir::StreamKind::SeqOut => 1,
            crate::ir::StreamKind::CondIn => 2,
            crate::ir::StreamKind::CondLaneIn => 3,
            crate::ir::StreamKind::CondOut => 4,
            crate::ir::StreamKind::IdxInRead => 5,
            crate::ir::StreamKind::IdxInWrite => 6,
            crate::ir::StreamKind::IdxCrossRead => 7,
        });
    }
    h.write_usize(k.ops.len());
    for op in &k.ops {
        hash_opcode(&mut h, op.opcode);
        h.write_usize(op.operands.len());
        for o in &op.operands {
            hash_operand(&mut h, o);
        }
    }
    h.finish128()
}

/// Content hash of a modulo schedule (II, per-op slots, span, completion).
pub fn schedule_hash(s: &Schedule) -> u128 {
    let mut h = StableHasher::new();
    h.write_u8(b'S');
    h.write_u32(s.ii);
    h.write_usize(s.slots.len());
    for &slot in &s.slots {
        h.write_u32(slot);
    }
    h.write_u32(s.span);
    h.write_u32(s.completion);
    h.finish128()
}

fn hash_latency_model(h: &mut StableHasher, m: &LatencyModel) {
    let l = &m.ops;
    for v in [
        l.int_alu,
        l.int_mul,
        l.fp_add,
        l.fp_mul,
        l.divide,
        l.select,
        l.scratch,
        l.sb_access,
    ] {
        h.write_u32(v);
    }
    h.write_u32(m.comm_latency);
    h.write_u32(m.inlane_separation);
    h.write_u32(m.crosslane_separation);
}

/// Content hash of scheduling parameters (resources, latency model,
/// separations, II bound) — together with [`kernel_hash`] this keys the
/// schedule memo in [`crate::sched::schedule_cached`].
pub fn sched_params_hash(p: &SchedParams) -> u128 {
    let mut h = StableHasher::new();
    h.write_u8(b'P');
    h.write_usize(p.fu_count);
    h.write_usize(p.divider_count);
    hash_latency_model(&mut h, &p.model);
    h.write_u32(p.max_ii);
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelBuilder, StreamKind};
    use crate::sched::{schedule, SchedParams};
    use isrf_core::config::{ConfigName, MachineConfig};

    fn sample(name: &str, c: u32) -> Kernel {
        let mut b = KernelBuilder::new(name);
        let i = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(i);
        let k = b.constant(c);
        let y = b.mul(x, k);
        b.seq_write(o, y);
        b.build().unwrap()
    }

    #[test]
    fn name_is_excluded_but_content_matters() {
        let a = sample("a", 3);
        let b = sample("b", 3);
        let c = sample("a", 4);
        assert_eq!(kernel_hash(&a), kernel_hash(&b));
        assert_ne!(kernel_hash(&a), kernel_hash(&c));
    }

    #[test]
    fn schedule_and_params_hashes_are_stable_and_distinguish() {
        let k = sample("k", 3);
        let p = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Base));
        let s = schedule(&k, &p).unwrap();
        assert_eq!(schedule_hash(&s), schedule_hash(&s.clone()));
        assert_eq!(sched_params_hash(&p), sched_params_hash(&p.clone()));
        let p2 = p.clone().with_separations(9, 21);
        assert_ne!(sched_params_hash(&p), sched_params_hash(&p2));
        let mut s2 = s.clone();
        s2.ii += 1;
        assert_ne!(schedule_hash(&s), schedule_hash(&s2));
    }

    #[test]
    fn hasher_distinguishes_write_boundaries() {
        let mut a = StableHasher::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = StableHasher::new();
        b.write_u64(1 | (2 << 32));
        // Same bytes -> same digest (the encoding is the byte stream)...
        assert_eq!(a.finish128(), b.finish128());
        // ...and different bytes -> different digest.
        let mut c = StableHasher::new();
        c.write_u64(2 | (1 << 32));
        assert_ne!(a.finish128(), c.finish128());
    }
}
