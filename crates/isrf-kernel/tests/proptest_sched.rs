//! Property tests: for random dataflow kernels, the modulo scheduler's
//! output must satisfy every dependence edge and never oversubscribe a
//! resource in any modulo slot.

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::graph::build_graph;
use isrf_kernel::ir::{Kernel, KernelBuilder, OpClass, Operand, StreamKind, ValueId};
use isrf_kernel::sched::{schedule, SchedParams};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct GenOp {
    code: u8,
    a: prop::sample::Index,
    b: prop::sample::Index,
    carried: bool,
}

fn build(ops: &[GenOp], with_idx: bool) -> Kernel {
    let mut b = KernelBuilder::new("prop");
    let sin = b.stream("in", StreamKind::SeqIn);
    let lut = b.stream("lut", StreamKind::IdxInRead);
    let sout = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(sin);
    let mut ids: Vec<ValueId> = vec![x];
    for op in ops {
        let n = ids.len();
        let a = ids[op.a.index(n)];
        let c = ids[op.b.index(n)];
        let a = if op.carried {
            Operand::carried(a, 1 + (op.code % 3) as u32, 1)
        } else {
            Operand::from(a)
        };
        let id = match op.code % 6 {
            0 => b.add(a, c),
            1 => b.mul(a, c),
            2 => b.xor(a, c),
            3 => b.div(a, c),
            4 if with_idx => {
                let mask = b.constant(0xff);
                let masked = b.and(a, mask);
                b.idx_load(lut, masked)
            }
            _ => b.select(a, c, c),
        };
        ids.push(id);
    }
    let last = *ids.last().unwrap();
    b.seq_write(sout, last);
    b.build().expect("generated kernel validates")
}

fn verify_schedule(k: &Kernel, p: &SchedParams) {
    let s = schedule(k, p).expect("schedulable");
    let g = build_graph(k, &p.model);
    for e in &g.edges {
        assert!(
            s.slots[e.to] as i64 + (s.ii as i64) * e.distance as i64
                >= s.slots[e.from] as i64 + e.latency as i64,
            "violated edge {e:?} at II {}",
            s.ii
        );
    }
    // Modulo resource table: divider occupies its full latency.
    let mut mrt: BTreeMap<(u8, u32), u32> = BTreeMap::new();
    for (i, op) in k.ops.iter().enumerate() {
        let (key, width, cap) = match op.opcode.class() {
            OpClass::Alu => (0u8, 1, p.fu_count as u32),
            OpClass::Divider => (1, p.model.latency(op.opcode).clamp(1, s.ii), 1),
            OpClass::Comm => (2, 1, 1),
            OpClass::Scratch => (3, 1, 1),
            OpClass::StreamPort(sl) => (10 + sl.0, 1, 1),
            OpClass::AddrPort(sl) => (100 + sl.0, 1, 1),
            OpClass::Free => continue,
        };
        for w in 0..width {
            let slot = (s.slots[i] + w) % s.ii;
            let e = mrt.entry((key, slot)).or_insert(0);
            *e += 1;
            assert!(*e <= cap, "resource {key} oversubscribed at slot {slot}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_kernels_schedule_correctly(
        ops in prop::collection::vec(
            (any::<u8>(), any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<bool>())
                .prop_map(|(code, a, b, carried)| GenOp { code, a, b, carried }),
            1..30
        ),
        with_idx in any::<bool>(),
        sep in 2u32..12,
    ) {
        let k = build(&ops, with_idx);
        let p = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4))
            .with_separations(sep, 20);
        verify_schedule(&k, &p);
    }

    /// II is monotone non-decreasing in the address/data separation.
    #[test]
    fn ii_monotone_in_separation(
        ops in prop::collection::vec(
            (any::<u8>(), any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<bool>())
                .prop_map(|(code, a, b, carried)| GenOp { code, a, b, carried }),
            1..20
        ),
    ) {
        let k = build(&ops, true);
        let base = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4));
        let mut prev = 0;
        for sep in [2u32, 6, 10] {
            let ii = schedule(&k, &base.clone().with_separations(sep, 20)).unwrap().ii;
            prop_assert!(ii + 2 >= prev, "II dropped sharply: {prev} -> {ii}");
            prev = ii.max(prev);
        }
    }
}
