//! Error-path tests for the KernelC front-end: malformed sources must
//! come back as `Err(LangError)` with a useful message and line number —
//! never a panic, never a silently-wrong kernel.

use isrf_lang::parse_kernel;

/// A well-formed kernel the error cases below are one edit away from.
const GOOD: &str = "kernel k(istream<int> a, ostream<int> o) {
  int x;
  while (!eos(a)) { a >> x; o << x; }
}";

#[test]
fn well_formed_baseline_parses() {
    let k = parse_kernel(GOOD).expect("baseline must parse");
    assert_eq!(k.name, "k");
    assert_eq!(k.streams.len(), 2);
}

fn expect_err(src: &str) -> isrf_lang::LangError {
    match parse_kernel(src) {
        Ok(_) => panic!("malformed source parsed successfully:\n{src}"),
        Err(e) => e,
    }
}

#[test]
fn unterminated_stream_declaration() {
    // Missing `>` after the element type.
    expect_err("kernel k(istream<int a) { while (!eos(a)) { } }");
    // Missing element type entirely.
    expect_err("kernel k(istream<> a) { while (!eos(a)) { } }");
    // Declaration list never closed.
    expect_err("kernel k(istream<int> a { while (!eos(a)) { } }");
    // Source ends inside the parameter list.
    expect_err("kernel k(istream<int> a,");
}

#[test]
fn unknown_stream_kind_is_rejected() {
    let e = expect_err("kernel k(wstream<int> a) { while (!eos(a)) { } }");
    assert!(
        e.message.contains("wstream"),
        "error should name the bad stream type: {e}"
    );
    expect_err("kernel k(stream<int> a) { while (!eos(a)) { } }");
}

#[test]
fn unknown_element_type_is_rejected() {
    let e = expect_err("kernel k(istream<bool> a) { while (!eos(a)) { } }");
    assert!(
        e.message.contains("bool"),
        "error should name the bad element type: {e}"
    );
}

#[test]
fn missing_eos_guard_is_rejected() {
    // A C-style condition is outside the subset: the loop must be
    // `while (!eos(s))`.
    let e = expect_err(
        "kernel k(istream<int> a, ostream<int> o) {
           int x;
           while (x < 10) { a >> x; o << x; }
         }",
    );
    assert!(
        e.message.contains("eos") || e.message.contains('!') || e.message.contains("Bang"),
        "error should point at the missing eos guard: {e}"
    );
    expect_err(
        "kernel k(istream<int> a, ostream<int> o) {
           int x;
           while (!done(a)) { a >> x; o << x; }
         }",
    );
    expect_err(
        "kernel k(istream<int> a, ostream<int> o) {
           int x;
           while (eos(a)) { a >> x; o << x; }
         }",
    );
}

#[test]
fn truncated_bodies_error_not_panic() {
    // Chop the baseline kernel at every byte boundary: each prefix must
    // produce Ok or Err, never a panic (char_indices keeps the cuts on
    // UTF-8 boundaries; the source is ASCII anyway).
    for (cut, _) in GOOD.char_indices() {
        let _ = parse_kernel(&GOOD[..cut]);
    }
}

#[test]
fn stray_tokens_and_bad_literals_error() {
    expect_err("kernel k(istream<int> a) { while (!eos(a)) { a >> @; } }");
    expect_err(
        "kernel k(istream<int> a, ostream<int> o) {
           int x;
           while (!eos(a)) { a >> x; o << 0x; }
         }",
    );
    expect_err("kernel 42(istream<int> a) { while (!eos(a)) { } }");
}

#[test]
fn reads_and_writes_through_wrong_direction_error() {
    // Writing to an input stream / reading from an output stream must be
    // rejected during lowering.
    expect_err(
        "kernel k(istream<int> a, ostream<int> o) {
           int x;
           while (!eos(a)) { o >> x; a << x; }
         }",
    );
}

#[test]
fn errors_carry_line_numbers() {
    let e = expect_err(
        "kernel k(istream<int> a, ostream<int> o) {
           int x;
           while (!eos(a)) { a >> x; o << ; }
         }",
    );
    assert_eq!(e.line, 3, "error should land on the offending line: {e}");
}
