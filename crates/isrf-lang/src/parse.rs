//! Recursive-descent parser for the KernelC subset.

use crate::lex::{LangError, Tok, Token};

/// Abstract syntax of the subset.
pub mod ast {
    /// Element type of a variable or stream.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Ty {
        /// 32-bit signed integer.
        Int,
        /// 32-bit IEEE float.
        Float,
    }

    /// Stream parameter kinds (Table 1 plus the sequential/conditional
    /// kinds).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum StreamTy {
        /// `istream<T>`.
        SeqIn,
        /// `ostream<T>`.
        SeqOut,
        /// `cistream<T>` — conditional input (\[16\]).
        CondIn,
        /// `costream<T>` — conditional output.
        CondOut,
        /// `clistream<T>` — per-lane conditional input.
        CondLaneIn,
        /// `idxl_istream<T>` — in-lane indexed read.
        IdxInRead,
        /// `idxl_ostream<T>` — in-lane indexed write.
        IdxInWrite,
        /// `idx_istream<T>` — cross-lane indexed read.
        IdxCrossRead,
    }

    /// One stream parameter.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Param {
        /// Stream kind.
        pub stream_ty: StreamTy,
        /// Element type.
        pub elem: Ty,
        /// Parameter name.
        pub name: String,
    }

    /// Expressions.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Expr {
        /// Integer literal.
        Int(i64),
        /// Float literal.
        Float(f32),
        /// Variable reference.
        Var(String),
        /// Unary op: `-`, `~`, `!`.
        Unary(char, Box<Expr>),
        /// Binary op (C spelling, e.g. "+", "<<", "<=").
        Binary(&'static str, Box<Expr>, Box<Expr>),
        /// Cast to a type: `(int) e` / `(float) e`.
        Cast(Ty, Box<Expr>),
        /// Intrinsic call: `lane()`, `lanes()`, `iter()`, `select(c,a,b)`,
        /// `min(a,b)`, `max(a,b)`.
        Call(String, Vec<Expr>),
    }

    /// Statements inside the loop.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Stmt {
        /// `s >> v;` or, with a condition, `if (c) s >> v;` for
        /// conditional streams.
        Read {
            /// Stream name.
            stream: String,
            /// Optional index expression (`s[i] >> v`).
            index: Option<Expr>,
            /// Optional condition (conditional streams).
            cond: Option<Expr>,
            /// Destination variable.
            var: String,
            /// 1-based source line of the statement.
            line: u32,
        },
        /// `s << e;`, `s[i] << e;`, or `if (c) s << e;`.
        Write {
            /// Stream name.
            stream: String,
            /// Optional index expression.
            index: Option<Expr>,
            /// Optional condition.
            cond: Option<Expr>,
            /// Value written.
            value: Expr,
            /// 1-based source line of the statement.
            line: u32,
        },
        /// `v = e;`.
        Assign {
            /// Assigned variable.
            var: String,
            /// Right-hand side.
            value: Expr,
            /// 1-based source line of the statement.
            line: u32,
        },
    }

    impl Stmt {
        /// The 1-based source line this statement starts on.
        pub fn line(&self) -> u32 {
            match self {
                Stmt::Read { line, .. } | Stmt::Write { line, .. } | Stmt::Assign { line, .. } => {
                    *line
                }
            }
        }
    }

    /// A parsed kernel.
    #[derive(Debug, Clone, PartialEq)]
    pub struct KernelDef {
        /// Kernel name.
        pub name: String,
        /// Stream parameters in declaration order.
        pub params: Vec<Param>,
        /// Local declarations: name -> type.
        pub locals: Vec<(String, Ty)>,
        /// The stream controlling `while (!eos(s))`.
        pub loop_stream: String,
        /// Loop-body statements.
        pub body: Vec<Stmt>,
    }
}

use ast::*;

struct P<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> P<'a> {
    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.line(), msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> Result<(), LangError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), LangError> {
        let id = self.ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn elem_ty(&mut self) -> Result<Ty, LangError> {
        let id = self.ident()?;
        match id.as_str() {
            "int" => Ok(Ty::Int),
            "float" => Ok(Ty::Float),
            other => Err(self.err(format!("unknown element type `{other}`"))),
        }
    }
}

/// Parse one kernel definition from a token stream.
pub(crate) fn parse(toks: &[Token]) -> Result<KernelDef, LangError> {
    let mut p = P { toks, pos: 0 };
    p.eat_kw("kernel")?;
    let name = p.ident()?;
    p.eat(&Tok::LParen)?;
    let mut params = Vec::new();
    loop {
        let kind = p.ident()?;
        let stream_ty = match kind.as_str() {
            "istream" => StreamTy::SeqIn,
            "ostream" => StreamTy::SeqOut,
            "cistream" => StreamTy::CondIn,
            "costream" => StreamTy::CondOut,
            "clistream" => StreamTy::CondLaneIn,
            "idxl_istream" => StreamTy::IdxInRead,
            "idxl_ostream" => StreamTy::IdxInWrite,
            "idx_istream" => StreamTy::IdxCrossRead,
            other => return Err(p.err(format!("unknown stream type `{other}`"))),
        };
        p.eat(&Tok::Lt)?;
        let elem = p.elem_ty()?;
        p.eat(&Tok::Gt)?;
        let pname = p.ident()?;
        params.push(Param {
            stream_ty,
            elem,
            name: pname,
        });
        match p.next() {
            Some(Tok::Comma) => continue,
            Some(Tok::RParen) => break,
            other => return Err(p.err(format!("expected `,` or `)`, found {other:?}"))),
        }
    }
    p.eat(&Tok::LBrace)?;

    // Local declarations: `int a, b;` / `float x;` until `while`.
    let mut locals = Vec::new();
    while let Some(Tok::Ident(id)) = p.peek() {
        if id == "while" {
            break;
        }
        let ty = p.elem_ty()?;
        loop {
            let n = p.ident()?;
            locals.push((n, ty));
            match p.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::Semi) => break,
                other => return Err(p.err(format!("expected `,` or `;`, found {other:?}"))),
            }
        }
    }

    // while (!eos(s)) { body }
    p.eat_kw("while")?;
    p.eat(&Tok::LParen)?;
    p.eat(&Tok::Bang)?;
    p.eat_kw("eos")?;
    p.eat(&Tok::LParen)?;
    let loop_stream = p.ident()?;
    p.eat(&Tok::RParen)?;
    p.eat(&Tok::RParen)?;
    p.eat(&Tok::LBrace)?;

    let mut body = Vec::new();
    while p.peek() != Some(&Tok::RBrace) {
        body.push(stmt(&mut p)?);
    }
    p.eat(&Tok::RBrace)?;
    p.eat(&Tok::RBrace)?;
    if p.pos != toks.len() {
        return Err(p.err("trailing tokens after kernel"));
    }
    Ok(KernelDef {
        name,
        params,
        locals,
        loop_stream,
        body,
    })
}

fn stmt(p: &mut P) -> Result<Stmt, LangError> {
    let line = p.line();
    // Optional `if (cond)` prefix for conditional stream access.
    let mut cond = None;
    if let Some(Tok::Ident(id)) = p.peek() {
        if id == "if" {
            p.pos += 1;
            p.eat(&Tok::LParen)?;
            cond = Some(expr(p)?);
            p.eat(&Tok::RParen)?;
        }
    }
    let name = p.ident()?;
    // s[expr] >> v / << e, s >> v / << e, or v = e.
    let index = if p.peek() == Some(&Tok::LBracket) {
        p.pos += 1;
        let e = expr(p)?;
        p.eat(&Tok::RBracket)?;
        Some(e)
    } else {
        None
    };
    match p.next() {
        Some(Tok::Shr) => {
            let var = p.ident()?;
            p.eat(&Tok::Semi)?;
            Ok(Stmt::Read {
                stream: name,
                index,
                cond,
                var,
                line,
            })
        }
        Some(Tok::Shl) => {
            let value = expr(p)?;
            p.eat(&Tok::Semi)?;
            Ok(Stmt::Write {
                stream: name,
                index,
                cond,
                value,
                line,
            })
        }
        Some(Tok::Assign) if index.is_none() && cond.is_none() => {
            let e = expr(p)?;
            p.eat(&Tok::Semi)?;
            Ok(Stmt::Assign {
                var: name,
                value: e,
                line,
            })
        }
        other => Err(p.err(format!("expected `>>`, `<<` or `=`, found {other:?}"))),
    }
}

// Precedence climbing: | ^ & (== !=) (< <= > >=) (<< >>) (+ -) (* / %) unary.
fn expr(p: &mut P) -> Result<Expr, LangError> {
    binary(p, 0)
}

const LEVELS: [&[&str]; 7] = [
    &["|"],
    &["^"],
    &["&"],
    &["==", "!="],
    &["<", "<=", ">", ">="],
    &["+", "-"],
    &["*", "/", "%"],
];

fn op_of(tok: &Tok) -> Option<&'static str> {
    Some(match tok {
        Tok::Pipe => "|",
        Tok::Caret => "^",
        Tok::Amp => "&",
        Tok::EqEq => "==",
        Tok::Ne => "!=",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Percent => "%",
        Tok::Shl => "<<",
        Tok::Shr => ">>",
        _ => return None,
    })
}

fn binary(p: &mut P, level: usize) -> Result<Expr, LangError> {
    if level >= LEVELS.len() {
        return unary(p);
    }
    let mut lhs = binary(p, level + 1)?;
    while let Some(op) = p.peek().and_then(op_of) {
        // `<<`/`>>` are reserved for stream I/O statements; shifts are
        // spelled as the intrinsic-free binary ops only inside parens is
        // ambiguous, so we simply don't treat them as expression operators.
        if !LEVELS[level].contains(&op) {
            break;
        }
        p.pos += 1;
        let rhs = binary(p, level + 1)?;
        lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn unary(p: &mut P) -> Result<Expr, LangError> {
    match p.peek() {
        Some(Tok::Minus) => {
            p.pos += 1;
            Ok(Expr::Unary('-', Box::new(unary(p)?)))
        }
        Some(Tok::Tilde) => {
            p.pos += 1;
            Ok(Expr::Unary('~', Box::new(unary(p)?)))
        }
        Some(Tok::Bang) => {
            p.pos += 1;
            Ok(Expr::Unary('!', Box::new(unary(p)?)))
        }
        _ => primary(p),
    }
}

fn primary(p: &mut P) -> Result<Expr, LangError> {
    match p.next() {
        Some(Tok::Int(v)) => Ok(Expr::Int(v)),
        Some(Tok::Float(v)) => Ok(Expr::Float(v)),
        Some(Tok::LParen) => {
            // Cast `(int) e` / `(float) e`, or parenthesized expression.
            if let Some(Tok::Ident(id)) = p.peek() {
                if id == "int" || id == "float" {
                    let ty = if id == "int" { Ty::Int } else { Ty::Float };
                    p.pos += 1;
                    p.eat(&Tok::RParen)?;
                    return Ok(Expr::Cast(ty, Box::new(unary(p)?)));
                }
            }
            let e = expr(p)?;
            p.eat(&Tok::RParen)?;
            Ok(e)
        }
        Some(Tok::Ident(id)) => {
            if p.peek() == Some(&Tok::LParen) {
                p.pos += 1;
                let mut args = Vec::new();
                if p.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(expr(p)?);
                        match p.next() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            other => {
                                return Err(p.err(format!("expected `,` or `)`, found {other:?}")))
                            }
                        }
                    }
                } else {
                    p.pos += 1;
                }
                Ok(Expr::Call(id, args))
            } else {
                Ok(Expr::Var(id))
            }
        }
        other => Err(p.err(format!("expected expression, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> Result<KernelDef, LangError> {
        parse(&lex(src).unwrap())
    }

    const FIG10: &str = r#"
kernel lookup(
    istream<int> in,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b, c;
  while (!eos(in)) {
    in >> a;
    LUT[a] >> b;
    c = a + b;
    out << c;
  }
}
"#;

    #[test]
    fn parses_figure_10() {
        let k = parse_src(FIG10).unwrap();
        assert_eq!(k.name, "lookup");
        assert_eq!(k.params.len(), 3);
        assert_eq!(k.params[1].stream_ty, StreamTy::IdxInRead);
        assert_eq!(k.locals.len(), 3);
        assert_eq!(k.loop_stream, "in");
        assert_eq!(k.body.len(), 4);
        assert!(matches!(
            &k.body[1],
            Stmt::Read {
                stream,
                index: Some(_),
                ..
            } if stream == "LUT"
        ));
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let k = parse_src(
            "kernel k(istream<int> a, ostream<int> o) { int x; \
             while (!eos(a)) { a >> x; o << x + 2 * 3 & 7; } }",
        )
        .unwrap();
        let Stmt::Write { value, .. } = &k.body[1] else {
            panic!("expected write");
        };
        // & binds loosest: (x + (2*3)) & 7.
        assert!(matches!(value, Expr::Binary("&", _, _)));
    }

    #[test]
    fn parses_conditional_access_and_casts() {
        let k = parse_src(
            "kernel k(clistream<int> a, ostream<float> o) { int c; float x; \
             while (!eos(a)) { if (c == 0) a >> c; x = (float) c; o << x; } }",
        )
        .unwrap();
        assert!(matches!(&k.body[0], Stmt::Read { cond: Some(_), .. }));
        assert!(matches!(
            &k.body[1],
            Stmt::Assign {
                value: Expr::Cast(Ty::Float, _),
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknown_stream_type() {
        assert!(parse_src("kernel k(wstream<int> a) { while (!eos(a)) { } }").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse_src("kernel k(istream<int> a)\n{\nint x\n}").unwrap_err();
        assert!(e.line >= 3, "line {}", e.line);
    }
}
