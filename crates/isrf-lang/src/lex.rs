//! Lexer for the KernelC subset.

use std::fmt;

/// Error produced anywhere in the front-end, with a 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        LangError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

/// Token kinds of the subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f32),
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Shl,    // <<  (also stream write)
    Shr,    // >>  (also stream read)
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Comma,
    Semi,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenize `src`.
pub(crate) fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E'))
                        || b[i] == b'f'
                        || b[i] == b'x'
                        || (i > start + 1 && b[start + 1] == b'x' && b[i].is_ascii_hexdigit()))
                {
                    if b[i] == b'.' || b[i] == b'e' || b[i] == b'E' || b[i] == b'f' {
                        is_float = b[start + 1] != b'x';
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let tok =
                    if is_float {
                        let t = text.trim_end_matches('f');
                        Tok::Float(t.parse::<f32>().map_err(|_| {
                            LangError::new(line, format!("bad float literal `{text}`"))
                        })?)
                    } else if let Some(hex) = text.strip_prefix("0x") {
                        Tok::Int(i64::from_str_radix(hex, 16).map_err(|_| {
                            LangError::new(line, format!("bad hex literal `{text}`"))
                        })?)
                    } else {
                        Tok::Int(text.parse::<i64>().map_err(|_| {
                            LangError::new(line, format!("bad int literal `{text}`"))
                        })?)
                    };
                out.push(Token { tok, line });
            }
            _ => {
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let (tok, len) = match two {
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            '=' => Tok::Assign,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            ',' => Tok::Comma,
                            ';' => Tok::Semi,
                            other => {
                                return Err(LangError::new(
                                    line,
                                    format!("unexpected character `{other}`"),
                                ))
                            }
                        };
                        (t, 1)
                    }
                };
                out.push(Token { tok, line });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_figure_10_tokens() {
        let toks = lex("in >> a; LUT[a] >> b; out << c; // comment\n").unwrap();
        assert!(toks.contains(&Token {
            tok: Tok::Shr,
            line: 1
        }));
        assert!(toks.contains(&Token {
            tok: Tok::LBracket,
            line: 1
        }));
        assert_eq!(toks.last().unwrap().tok, Tok::Semi);
    }

    #[test]
    fn lexes_literals() {
        let toks = lex("42 0x1f 1.5 2.0f 1e3").unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|t| t.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Int(42),
                Tok::Int(31),
                Tok::Float(1.5),
                Tok::Float(2.0),
                Tok::Float(1000.0)
            ]
        );
    }

    #[test]
    fn tracks_lines_and_comments() {
        let toks = lex("a\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
    }
}
