//! Lowering from the KernelC-subset AST to the kernel IR.

use std::collections::HashMap;

use isrf_kernel::ir::{Kernel, KernelBuilder, Operand, StreamKind, StreamSlot, ValueId};

use crate::lex::LangError;
use crate::parse::ast::{Expr, KernelDef, Param, Stmt, StreamTy, Ty};

fn err(msg: impl Into<String>) -> LangError {
    LangError::new(0, msg)
}

struct Ctx {
    b: KernelBuilder,
    streams: HashMap<String, (StreamSlot, StreamTy, Ty)>,
    var_ty: HashMap<String, Ty>,
    /// Current SSA value of each variable, if assigned/read already.
    var_val: HashMap<String, ValueId>,
    /// Variables first *read* in the loop before any assignment: their
    /// placeholder `Mov`, to be patched into a loop-carried reference to
    /// the variable's final value (the KernelC accumulator idiom).
    carried: Vec<(String, ValueId)>,
    /// Source line of the statement being lowered (0 outside the body).
    cur_line: u32,
}

impl Ctx {
    /// An error attributed to the statement currently being lowered.
    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.cur_line, msg)
    }

    fn stream(&self, name: &str) -> Result<(StreamSlot, StreamTy, Ty), LangError> {
        self.streams
            .get(name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown stream `{name}`")))
    }

    /// Current value of `var`, creating a loop-carried placeholder on
    /// first read-before-write.
    fn var(&mut self, name: &str) -> Result<(ValueId, Ty), LangError> {
        let ty = *self
            .var_ty
            .get(name)
            .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
        if let Some(&v) = self.var_val.get(name) {
            return Ok((v, ty));
        }
        let zero = self.b.constant(0);
        let ph = self.b.mov(zero);
        self.var_val.insert(name.to_string(), ph);
        self.carried.push((name.to_string(), ph));
        Ok((ph, ty))
    }

    fn expr(&mut self, e: &Expr) -> Result<(ValueId, Ty), LangError> {
        match e {
            Expr::Int(v) => {
                let w = i32::try_from(*v).map_err(|_| self.err("int literal out of range"))? as u32;
                Ok((self.b.constant(w), Ty::Int))
            }
            Expr::Float(v) => Ok((self.b.constant_f(*v), Ty::Float)),
            Expr::Var(n) => self.var(n),
            Expr::Cast(ty, inner) => {
                let (v, from) = self.expr(inner)?;
                let out = match (from, ty) {
                    (Ty::Int, Ty::Float) => self.b.itof(v),
                    (Ty::Float, Ty::Int) => self.b.ftoi(v),
                    _ => v,
                };
                Ok((out, *ty))
            }
            Expr::Unary(op, inner) => {
                let (v, ty) = self.expr(inner)?;
                match (op, ty) {
                    ('-', Ty::Int) => Ok((self.b.neg(v), Ty::Int)),
                    ('-', Ty::Float) => Ok((self.b.fneg(v), Ty::Float)),
                    ('~', Ty::Int) => Ok((self.b.not(v), Ty::Int)),
                    ('!', Ty::Int) => {
                        let z = self.b.constant(0);
                        Ok((self.b.eq(v, z), Ty::Int))
                    }
                    _ => Err(self.err(format!("unary `{op}` not defined for {ty:?}"))),
                }
            }
            Expr::Binary(op, l, r) => {
                let (a, ta) = self.expr(l)?;
                let (b2, tb) = self.expr(r)?;
                if ta != tb {
                    return Err(self.err(format!(
                        "type mismatch in `{op}`: {ta:?} vs {tb:?} (insert a cast)"
                    )));
                }
                let b = &mut self.b;
                let (v, ty) = match (*op, ta) {
                    ("+", Ty::Int) => (b.add(a, b2), Ty::Int),
                    ("-", Ty::Int) => (b.sub(a, b2), Ty::Int),
                    ("*", Ty::Int) => (b.mul(a, b2), Ty::Int),
                    ("/", Ty::Int) => (b.div(a, b2), Ty::Int),
                    ("%", Ty::Int) => (b.rem(a, b2), Ty::Int),
                    ("&", Ty::Int) => (b.and(a, b2), Ty::Int),
                    ("|", Ty::Int) => (b.or(a, b2), Ty::Int),
                    ("^", Ty::Int) => (b.xor(a, b2), Ty::Int),
                    ("<", Ty::Int) => (b.lt(a, b2), Ty::Int),
                    ("<=", Ty::Int) => (b.le(a, b2), Ty::Int),
                    (">", Ty::Int) => (b.lt(b2, a), Ty::Int),
                    (">=", Ty::Int) => (b.le(b2, a), Ty::Int),
                    ("==", Ty::Int) => (b.eq(a, b2), Ty::Int),
                    ("!=", Ty::Int) => (b.ne(a, b2), Ty::Int),
                    ("+", Ty::Float) => (b.fadd(a, b2), Ty::Float),
                    ("-", Ty::Float) => (b.fsub(a, b2), Ty::Float),
                    ("*", Ty::Float) => (b.fmul(a, b2), Ty::Float),
                    ("/", Ty::Float) => (b.fdiv(a, b2), Ty::Float),
                    ("<", Ty::Float) => (b.flt(a, b2), Ty::Int),
                    ("<=", Ty::Float) => (b.fle(a, b2), Ty::Int),
                    (">", Ty::Float) => (b.flt(b2, a), Ty::Int),
                    (">=", Ty::Float) => (b.fle(b2, a), Ty::Int),
                    ("==", Ty::Float) => (b.feq(a, b2), Ty::Int),
                    (op, ty) => return Err(self.err(format!("`{op}` not defined for {ty:?}"))),
                };
                Ok((v, ty))
            }
            Expr::Call(name, args) => self.call(name, args),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(ValueId, Ty), LangError> {
        let argc = args.len();
        match (name, argc) {
            ("lane", 0) => Ok((self.b.lane_id(), Ty::Int)),
            ("lanes", 0) => Ok((self.b.lane_count(), Ty::Int)),
            ("iter", 0) => Ok((self.b.iter_id(), Ty::Int)),
            ("select", 3) => {
                let (c, tc) = self.expr(&args[0])?;
                if tc != Ty::Int {
                    return Err(self.err("select condition must be int"));
                }
                let (a, ta) = self.expr(&args[1])?;
                let (b2, tb) = self.expr(&args[2])?;
                if ta != tb {
                    return Err(self.err("select arms must have the same type"));
                }
                Ok((self.b.select(c, a, b2), ta))
            }
            ("min", 2) | ("max", 2) => {
                let (a, ta) = self.expr(&args[0])?;
                let (b2, tb) = self.expr(&args[1])?;
                if ta != tb {
                    return Err(self.err(format!("{name} arguments must match")));
                }
                let v = match (name, ta) {
                    ("min", Ty::Int) => self.b.min(a, b2),
                    ("max", Ty::Int) => self.b.max(a, b2),
                    ("min", Ty::Float) => self.b.fmin(a, b2),
                    _ => self.b.fmax(a, b2),
                };
                Ok((v, ta))
            }
            _ => Err(self.err(format!("unknown intrinsic `{name}` with {argc} arguments"))),
        }
    }
}

fn stream_kind(t: StreamTy) -> StreamKind {
    match t {
        StreamTy::SeqIn => StreamKind::SeqIn,
        StreamTy::SeqOut => StreamKind::SeqOut,
        StreamTy::CondIn => StreamKind::CondIn,
        StreamTy::CondOut => StreamKind::CondOut,
        StreamTy::CondLaneIn => StreamKind::CondLaneIn,
        StreamTy::IdxInRead => StreamKind::IdxInRead,
        StreamTy::IdxInWrite => StreamKind::IdxInWrite,
        StreamTy::IdxCrossRead => StreamKind::IdxCrossRead,
    }
}

/// Lower a parsed kernel to IR.
pub(crate) fn lower(def: &KernelDef) -> Result<Kernel, LangError> {
    let mut ctx = Ctx {
        b: KernelBuilder::new(def.name.clone()),
        streams: HashMap::new(),
        var_ty: HashMap::new(),
        var_val: HashMap::new(),
        carried: Vec::new(),
        cur_line: 0,
    };
    for Param {
        stream_ty,
        elem,
        name,
    } in &def.params
    {
        let slot = ctx.b.stream(name.clone(), stream_kind(*stream_ty));
        if ctx
            .streams
            .insert(name.clone(), (slot, *stream_ty, *elem))
            .is_some()
        {
            return Err(err(format!("duplicate stream `{name}`")));
        }
    }
    for (name, ty) in &def.locals {
        if ctx.var_ty.insert(name.clone(), *ty).is_some() {
            return Err(err(format!("duplicate variable `{name}`")));
        }
    }
    let (_, lt, _) = ctx.stream(&def.loop_stream)?;
    if matches!(
        lt,
        StreamTy::SeqOut | StreamTy::CondOut | StreamTy::IdxInWrite
    ) {
        return Err(err("`eos` stream must be an input stream"));
    }

    for s in &def.body {
        ctx.cur_line = s.line();
        ctx.b.set_source_line(s.line());
        match s {
            Stmt::Assign { var, value: e, .. } => {
                let want = *ctx
                    .var_ty
                    .get(var)
                    .ok_or_else(|| ctx.err(format!("unknown variable `{var}`")))?;
                let (v, got) = ctx.expr(e)?;
                if want != got {
                    return Err(ctx.err(format!(
                        "assigning {got:?} to `{var}: {want:?}` (insert a cast)"
                    )));
                }
                ctx.var_val.insert(var.clone(), v);
            }
            Stmt::Read {
                stream,
                index,
                cond,
                var,
                ..
            } => {
                let (slot, st, elem) = ctx.stream(stream)?;
                let want = *ctx
                    .var_ty
                    .get(var)
                    .ok_or_else(|| ctx.err(format!("unknown variable `{var}`")))?;
                if want != elem {
                    return Err(ctx.err(format!("reading {elem:?} stream into `{var}: {want:?}`")));
                }
                let v = match (st, index, cond) {
                    (StreamTy::SeqIn, None, None) => ctx.b.seq_read(slot),
                    (StreamTy::CondIn, None, Some(c)) => {
                        let (cv, ct) = ctx.expr(c)?;
                        if ct != Ty::Int {
                            return Err(ctx.err("condition must be int"));
                        }
                        ctx.b.cond_read(slot, cv)
                    }
                    (StreamTy::CondLaneIn, None, Some(c)) => {
                        let (cv, ct) = ctx.expr(c)?;
                        if ct != Ty::Int {
                            return Err(ctx.err("condition must be int"));
                        }
                        ctx.b.cond_lane_read(slot, cv)
                    }
                    (StreamTy::IdxInRead | StreamTy::IdxCrossRead, Some(i), None) => {
                        let (iv, it) = ctx.expr(i)?;
                        if it != Ty::Int {
                            return Err(ctx.err("stream index must be int"));
                        }
                        ctx.b.idx_load(slot, iv)
                    }
                    _ => {
                        return Err(ctx.err(format!(
                            "access form does not match stream type of `{stream}`"
                        )))
                    }
                };
                ctx.var_val.insert(var.clone(), v);
            }
            Stmt::Write {
                stream,
                index,
                cond,
                value,
                ..
            } => {
                let (slot, st, elem) = ctx.stream(stream)?;
                let (v, got) = ctx.expr(value)?;
                if got != elem {
                    return Err(ctx.err(format!("writing {got:?} to {elem:?} stream `{stream}`")));
                }
                match (st, index, cond) {
                    (StreamTy::SeqOut, None, None) => {
                        ctx.b.seq_write(slot, v);
                    }
                    (StreamTy::CondOut, None, Some(c)) => {
                        let (cv, ct) = ctx.expr(c)?;
                        if ct != Ty::Int {
                            return Err(ctx.err("condition must be int"));
                        }
                        ctx.b.cond_write(slot, cv, v);
                    }
                    (StreamTy::IdxInWrite, Some(i), None) => {
                        let (iv, it) = ctx.expr(i)?;
                        if it != Ty::Int {
                            return Err(ctx.err("stream index must be int"));
                        }
                        ctx.b.idx_write(slot, iv, v);
                    }
                    _ => {
                        return Err(ctx.err(format!(
                            "access form does not match stream type of `{stream}`"
                        )))
                    }
                }
            }
        }
    }

    // Patch read-before-write placeholders into loop-carried references.
    for (name, ph) in std::mem::take(&mut ctx.carried) {
        let last = ctx.var_val[&name];
        // If the variable was never assigned, it stays 0 (self-carry of
        // the zero-initialized placeholder).
        ctx.b.set_operand(ph, 0, Operand::carried(last, 1, 0));
    }
    ctx.b
        .build()
        .map_err(|e| err(format!("lowered kernel failed validation: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kernel;
    use isrf_core::config::{ConfigName, MachineConfig};
    use isrf_kernel::ir::Opcode;
    use isrf_kernel::sched::{schedule, SchedParams};

    const FIG10: &str = r#"
kernel lookup(
    istream<int> in,
    idxl_istream<int> LUT,
    ostream<int> out) {
  int a, b, c;
  while (!eos(in)) {
    in >> a;
    LUT[a] >> b;
    c = a + b;
    out << c;
  }
}
"#;

    #[test]
    fn figure_10_lowers_and_schedules() {
        let k = parse_kernel(FIG10).unwrap();
        assert_eq!(k.streams.len(), 3);
        assert_eq!(k.streams[1].kind, StreamKind::IdxInRead);
        assert!(k.ops.iter().any(|o| matches!(o.opcode, Opcode::IdxAddr(_))));
        let p = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Isrf4));
        let s = schedule(&k, &p).unwrap();
        assert!(s.ii >= 1);
    }

    #[test]
    fn source_lines_propagate_to_ops() {
        let k = parse_kernel(FIG10).unwrap();
        // `LUT[a] >> b;` sits on line 9 of FIG10 (leading newline counts).
        let (i, _) = k
            .ops
            .iter()
            .enumerate()
            .find(|(_, o)| matches!(o.opcode, Opcode::IdxAddr(_)))
            .unwrap();
        assert_eq!(k.source_line(i), Some(9));
        // Every op of a lowered kernel carries some line.
        assert!((0..k.ops.len()).all(|i| k.source_line(i).is_some()));
    }

    #[test]
    fn accumulator_becomes_loop_carried() {
        let k = parse_kernel(
            "kernel acc(istream<int> in, ostream<int> out) { int x, s; \
             while (!eos(in)) { in >> x; s = s + x; out << s; } }",
        )
        .unwrap();
        // Some operand must be loop-carried at distance 1.
        assert!(k
            .ops
            .iter()
            .flat_map(|o| o.operands.iter())
            .any(|p| p.distance == 1));
    }

    #[test]
    fn float_ops_lower_to_fp_opcodes() {
        let k = parse_kernel(
            "kernel f(istream<float> in, ostream<float> out) { float x; \
             while (!eos(in)) { in >> x; out << x * 2.0 + 1.0; } }",
        )
        .unwrap();
        assert!(k.ops.iter().any(|o| o.opcode == Opcode::FMul));
        assert!(k.ops.iter().any(|o| o.opcode == Opcode::FAdd));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let e = parse_kernel(
            "kernel f(istream<float> in, ostream<int> out) { float x; \
             while (!eos(in)) { in >> x; out << x + 1; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("type mismatch"), "{e}");
    }

    #[test]
    fn intrinsics_and_selects() {
        let k = parse_kernel(
            "kernel f(ostream<int> out) { int v; \
             while (!eos(out)) { v = select(lane() == 0, iter(), lanes()); out << v; } }",
        );
        // `eos` on an output stream is rejected.
        assert!(k.is_err());
        let k = parse_kernel(
            "kernel f(istream<int> in, ostream<int> out) { int v, x; \
             while (!eos(in)) { in >> x; v = select(lane() == 0, iter(), x); \
             out << min(v, 100); } }",
        )
        .unwrap();
        assert!(k.ops.iter().any(|o| o.opcode == Opcode::Select));
        assert!(k.ops.iter().any(|o| o.opcode == Opcode::Min));
    }

    #[test]
    fn conditional_and_indexed_writes() {
        let k = parse_kernel(
            "kernel f(istream<int> in, costream<int> co, idxl_ostream<int> w) { int x; \
             while (!eos(in)) { in >> x; if (x > 0) co << x; w[x & 63] << x; } }",
        )
        .unwrap();
        assert!(k
            .ops
            .iter()
            .any(|o| matches!(o.opcode, Opcode::CondWrite(_))));
        assert!(k
            .ops
            .iter()
            .any(|o| matches!(o.opcode, Opcode::IdxWrite(_))));
    }
}
