//! A KernelC-subset front-end (Section 4.7).
//!
//! The paper extends the Imagine KernelC language with indexed-stream
//! types (Table 1) and array-style access syntax. This crate parses that
//! subset and lowers it to the [`isrf_kernel`] IR, so the Figure 10
//! example compiles and runs on the simulator:
//!
//! ```
//! let src = r#"
//! kernel lookup(
//!     istream<int> in,
//!     idxl_istream<int> LUT,
//!     ostream<int> out) {
//!   int a, b, c;
//!   while (!eos(in)) {
//!     in >> a;
//!     LUT[a] >> b;
//!     c = a + b;
//!     out << c;
//!   }
//! }
//! "#;
//! let kernel = isrf_lang::parse_kernel(src)?;
//! assert_eq!(kernel.name, "lookup");
//! assert_eq!(kernel.streams.len(), 3);
//! # Ok::<(), isrf_lang::LangError>(())
//! ```
//!
//! Supported subset: `kernel` definitions with stream parameters
//! (`istream`, `ostream`, `cistream`, `costream`, `clistream`,
//! `idxl_istream`, `idxl_ostream`, `idx_istream`, element types `int` /
//! `float`), local declarations, one `while (!eos(s))` loop containing
//! stream reads/writes (plain, indexed and conditional), assignments, and
//! integer/float expressions with the usual C operators, casts and the
//! intrinsics `lane()`, `lanes()`, `iter()`, `select`, `min`, `max`.
//!
//! Variables read before their first in-loop assignment are loop-carried
//! (distance 1, initialized to zero) — the KernelC idiom for accumulators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lex;
mod lower;
mod parse;

pub use lex::LangError;
pub use parse::ast;

use isrf_kernel::ir::Kernel;

/// Parse and lower one kernel definition.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first lexical, syntactic, type
/// or lowering problem, with a line number.
pub fn parse_kernel(src: &str) -> Result<Kernel, LangError> {
    let tokens = lex::lex(src)?;
    let ast = parse::parse(&tokens)?;
    lower::lower(&ast)
}
