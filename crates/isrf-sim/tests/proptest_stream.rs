//! Property tests for SRF stream layout: record-interleaved storage and
//! windowed bindings round-trip through the machine's stream views.

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_sim::{Machine, StreamBinding};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write_stream / read_stream round-trips for arbitrary record sizes.
    #[test]
    fn stream_roundtrip(
        record_words in 1u32..8,
        records in 1u32..200,
        seed in any::<u32>(),
    ) {
        let mut m = Machine::new(MachineConfig::preset(ConfigName::Base)).unwrap();
        let b = m.alloc_stream(record_words, records);
        let data: Vec<u32> = (0..b.words()).map(|i| i.wrapping_mul(seed | 1)).collect();
        m.write_stream(&b, &data);
        prop_assert_eq!(m.read_stream(&b), data);
    }

    /// A lane-aligned window selects exactly the run/stride subsequence of
    /// the underlying region.
    #[test]
    fn windowed_binding_selects_the_right_records(
        run_units in 1u32..5,     // run = 8 * run_units
        gap_units in 0u32..4,     // stride = run + 8 * gap_units
        runs in 1u32..6,
        start_units in 0u32..3,
    ) {
        let run = 8 * run_units;
        let stride = run + 8 * gap_units;
        let start = 8 * start_units;
        let total = start + stride * (runs - 1) + run;
        let mut m = Machine::new(MachineConfig::preset(ConfigName::Base)).unwrap();
        let whole = m.alloc_stream(1, total);
        let data: Vec<u32> = (0..total).collect();
        m.write_stream(&whole, &data);
        let window = StreamBinding::windowed(whole.range, 1, start, run, stride, runs);
        let got = m.read_stream(&window);
        let mut expect = Vec::new();
        for r in 0..runs {
            for k in 0..run {
                expect.push(start + r * stride + k);
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Periodic (stride-0) windows repeat the same records.
    #[test]
    fn periodic_window_repeats(
        run_units in 1u32..4,
        runs in 2u32..6,
    ) {
        let run = 8 * run_units;
        let mut m = Machine::new(MachineConfig::preset(ConfigName::Base)).unwrap();
        let region = m.alloc_stream(1, run);
        let data: Vec<u32> = (0..run).map(|i| 100 + i).collect();
        m.write_stream(&region, &data);
        let window = StreamBinding::windowed(region.range, 1, 0, run, 0, runs);
        let got = m.read_stream(&window);
        for r in 0..runs as usize {
            prop_assert_eq!(&got[r * run as usize..(r + 1) * run as usize], &data[..]);
        }
    }
}
