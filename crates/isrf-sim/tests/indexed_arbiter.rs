//! Property tests for the two-stage indexed-access arbiter.
//!
//! Random mixes of in-lane read, in-lane write, and cross-lane read
//! streams push random record addresses through [`service_indexed`]. The
//! arbiter may reorder *between* streams and lanes however contention
//! falls, but it must never drop or duplicate a request: every enqueued
//! record comes back as exactly `record_words` data words, per lane in
//! FIFO order with the right values, every write commits exactly once,
//! every lane drains in bounded time, and the traffic counters equal the
//! number of serviced words.

use std::collections::VecDeque;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::stats::SrfTraffic;
use isrf_core::Word;
use isrf_sim::indexed::{service_indexed, IdxKind, IdxParams, IdxState};
use isrf_sim::srf::Srf;
use isrf_sim::stream::StreamBinding;
use isrf_trace::Tracer;
use proptest::prelude::*;

const LANES: usize = 8;
/// Per-bank words of each of the two disjoint regions (reads vs writes),
/// half the 4096-word bank of the ISRF4 preset.
const REGION_WORDS: u32 = 2048;

#[derive(Debug, Clone)]
struct StreamPlan {
    kind: IdxKind,
    record_words: u32,
    /// `(lane, record)` in push order; records already reduced into range.
    reqs: Vec<(usize, u32)>,
}

/// Raw generated tuples -> a valid plan. At most one write stream is kept
/// (concurrent writers to one offset would make the final value depend on
/// arbitration order, which is exactly the freedom the arbiter has).
fn plans() -> impl Strategy<Value = Vec<StreamPlan>> {
    prop::collection::vec(
        (
            0u8..3,
            0u8..3,
            prop::collection::vec((0usize..LANES, any::<u32>()), 0..32),
        ),
        1..4,
    )
    .prop_map(|raw| {
        let mut seen_write = false;
        raw.into_iter()
            .map(|(kind_code, rw_code, reqs)| {
                let mut kind = match kind_code {
                    0 => IdxKind::InLaneRead,
                    1 => IdxKind::CrossLaneRead,
                    _ => IdxKind::InLaneWrite,
                };
                if kind == IdxKind::InLaneWrite {
                    if seen_write {
                        kind = IdxKind::InLaneRead;
                    }
                    seen_write = true;
                }
                let record_words = [1u32, 2, 4][rw_code as usize];
                let max_records = if kind == IdxKind::CrossLaneRead {
                    LANES as u32 * REGION_WORDS / record_words
                } else {
                    REGION_WORDS / record_words
                };
                StreamPlan {
                    kind,
                    record_words,
                    reqs: reqs
                        .into_iter()
                        .map(|(lane, r)| (lane, r % max_records))
                        .collect(),
                }
            })
            .collect()
    })
}

/// The value the pattern fill put at `(bank, offset)`.
fn pattern(bank: usize, offset: u32) -> Word {
    bank as u32 * 10_000 + offset
}

/// Marker value for write request number `seq`, word `w`.
fn write_word(seq: usize, w: u32) -> Word {
    0x4000_0000 + (seq as u32) * 8 + w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbiter_never_drops_or_duplicates(plan in plans()) {
        let m = MachineConfig::preset(ConfigName::Isrf4);
        let p = IdxParams::from_machine(&m);
        let mut srf = Srf::new(&m);
        let read_range = srf.alloc(REGION_WORDS);
        let write_range = srf.alloc(REGION_WORDS);
        for l in 0..LANES {
            for o in 0..srf.bank_words() {
                srf.write(l, o, pattern(l, o));
            }
        }

        let mut states: Vec<IdxState> = plan
            .iter()
            .map(|s| {
                let (range, records) = if s.kind == IdxKind::InLaneWrite {
                    (write_range, REGION_WORDS / s.record_words)
                } else if s.kind == IdxKind::CrossLaneRead {
                    (read_range, LANES as u32 * REGION_WORDS / s.record_words)
                } else {
                    (read_range, REGION_WORDS / s.record_words)
                };
                IdxState::new(
                    StreamBinding::whole(range, s.record_words, records),
                    s.kind,
                    LANES,
                    &m,
                )
            })
            .collect();

        // Pump: feed each stream's requests as FIFO space allows, cycle
        // the arbiter, and pop data eagerly (a full data buffer blocks
        // issue, so popping models the consuming cluster).
        let mut pending: Vec<VecDeque<(usize, u32)>> =
            plan.iter().map(|s| s.reqs.iter().copied().collect()).collect();
        let mut popped: Vec<Vec<Vec<Word>>> =
            plan.iter().map(|_| vec![Vec::new(); LANES]).collect();
        let mut traffic = SrfTraffic::default();
        let mut rr = 0usize;
        let mut write_seq = 0usize;
        let mut now = 0u64;
        loop {
            for (si, q) in pending.iter_mut().enumerate() {
                while let Some(&(lane, rec)) = q.front() {
                    if !states[si].can_push_addr(lane) {
                        break;
                    }
                    if plan[si].kind == IdxKind::InLaneWrite {
                        let rw = plan[si].record_words;
                        let data = (0..rw).map(|w| write_word(write_seq, w)).collect();
                        states[si].push_write(lane, rec, data);
                        write_seq += 1;
                    } else {
                        states[si].push_addr(lane, rec);
                    }
                    q.pop_front();
                }
            }
            for s in states.iter_mut() {
                s.tick_arrivals(now);
            }
            service_indexed(&mut states, &mut srf, now, &p, &mut rr, &mut traffic, &mut Tracer::Null);
            for (s, lanes) in states.iter_mut().zip(popped.iter_mut()) {
                for (lane, got) in lanes.iter_mut().enumerate() {
                    while s.can_pop_data(lane) {
                        got.push(s.pop_data(lane));
                    }
                }
            }
            now += 1;
            let idle = pending.iter().all(VecDeque::is_empty)
                && states.iter().all(IdxState::drained);
            if idle {
                break;
            }
            prop_assert!(now < 100_000, "arbiter failed to drain: cycle {}", now);
        }
        // Flush anything that arrived on the final cycle.
        for (s, lanes) in states.iter_mut().zip(popped.iter_mut()) {
            s.tick_arrivals(now + 1_000);
            for (lane, got) in lanes.iter_mut().enumerate() {
                while s.can_pop_data(lane) {
                    got.push(s.pop_data(lane));
                }
            }
        }

        // Reads: per lane, exactly record_words words per request, in FIFO
        // order, with the values the pattern fill established.
        let mut expect_inlane = 0u64;
        let mut expect_crosslane = 0u64;
        for (si, s) in plan.iter().enumerate() {
            let rw = s.record_words;
            match s.kind {
                IdxKind::InLaneRead => expect_inlane += rw as u64 * s.reqs.len() as u64,
                IdxKind::InLaneWrite => expect_inlane += rw as u64 * s.reqs.len() as u64,
                IdxKind::CrossLaneRead => {
                    expect_crosslane += rw as u64 * s.reqs.len() as u64;
                }
            }
            if s.kind == IdxKind::InLaneWrite {
                for (lane, got) in popped[si].iter().enumerate() {
                    prop_assert!(got.is_empty(), "write stream returned data on lane {}", lane);
                }
                continue;
            }
            for (lane, got) in popped[si].iter().enumerate() {
                let expect: Vec<Word> = s
                    .reqs
                    .iter()
                    .filter(|&&(l, _)| l == lane)
                    .flat_map(|&(_, rec)| {
                        (0..rw).map(move |w| {
                            if s.kind == IdxKind::CrossLaneRead {
                                let bank = rec as usize % LANES;
                                let off =
                                    read_range.base + (rec / LANES as u32) * rw + w;
                                pattern(bank, off)
                            } else {
                                pattern(lane, read_range.base + rec * rw + w)
                            }
                        })
                    })
                    .collect();
                prop_assert_eq!(
                    got,
                    &expect,
                    "stream {} lane {}: data dropped, duplicated or reordered",
                    si,
                    lane
                );
            }
        }

        // Writes: last write to each (lane, record) in push order wins;
        // untouched words keep the pattern fill.
        if let Some((si, s)) = plan
            .iter()
            .enumerate()
            .find(|(_, s)| s.kind == IdxKind::InLaneWrite)
        {
            // Sequence numbers count pushes across *all* write requests in
            // pump order, which is exactly per-stream push order here
            // (only one write stream exists).
            let base_seq: usize = 0;
            let rw = s.record_words;
            for lane in 0..LANES {
                let mut expect: Vec<Word> = (0..REGION_WORDS)
                    .map(|o| pattern(lane, write_range.base + o))
                    .collect();
                for (seq, &(l, rec)) in s.reqs.iter().enumerate() {
                    if l == lane {
                        for w in 0..rw {
                            expect[(rec * rw + w) as usize] =
                                write_word(base_seq + seq, w);
                        }
                    }
                }
                for (o, &want) in expect.iter().enumerate() {
                    let got = srf.read(lane, write_range.base + o as u32);
                    prop_assert_eq!(
                        got,
                        want,
                        "stream {} lane {} offset {}: write lost or duplicated",
                        si,
                        lane,
                        o
                    );
                }
            }
        }

        prop_assert_eq!(traffic.inlane_words, expect_inlane);
        prop_assert_eq!(traffic.crosslane_words, expect_crosslane);
        prop_assert_eq!(traffic.seq_words, 0);
    }
}
