//! Property test for the quiescence fast-forward: skipping the cycles
//! where every sequencer is stalled on memory must be *unobservable*.
//!
//! For random stream programs — serial and overlapped strips, with and
//! without kernels, cacheable and not — two fresh machines run the same
//! program with the fast-forward enabled and disabled. The runs must
//! produce identical `RunStats` (cycle counts and the full Figure-12
//! breakdown), byte-identical trace event streams, and in both runs the
//! trace audit's reconstruction must match the reported breakdown.

use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_mem::AddrPattern;
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;
use isrf_trace::{TraceEvent, Tracer};
use proptest::prelude::*;

fn scale_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("scale");
    let i = b.stream("in", StreamKind::SeqIn);
    let o = b.stream("out", StreamKind::SeqOut);
    let x = b.seq_read(i);
    let c = b.constant(3);
    let y = b.mul(x, c);
    b.seq_write(o, y);
    Arc::new(b.build().unwrap())
}

/// One strip of the generated program: stream length, whether a kernel
/// sits between the load and the store, whether the transfers go through
/// the cache path, and whether the strip depends on the previous strip
/// (serial) or runs overlapped with it.
#[derive(Debug, Clone)]
struct Strip {
    words: u32,
    kernel: bool,
    cacheable: bool,
    serial: bool,
}

fn strips() -> impl Strategy<Value = Vec<Strip>> {
    prop::collection::vec(
        (1u32..8, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(k, kernel, cacheable, serial)| Strip {
                words: k * 8,
                kernel,
                cacheable,
                serial,
            },
        ),
        1..5,
    )
}

/// Build the machine, run the strips, and return (stats, trace events).
fn run_strips(
    cfg: ConfigName,
    strips: &[Strip],
    skip: bool,
) -> (isrf_core::stats::RunStats, Vec<(u64, TraceEvent)>) {
    let mcfg = MachineConfig::preset(cfg);
    let kernel = scale_kernel();
    let sched = schedule(&kernel, &SchedParams::from_machine(&mcfg)).unwrap();
    let mut m = Machine::new(mcfg).unwrap();
    m.set_quiescence_skip(skip);
    m.set_tracer(Tracer::recording(1 << 16));
    let mut p = StreamProgram::new();
    let mut prev_tail = None;
    for (s, strip) in strips.iter().enumerate() {
        let base = (s as u32) * 0x1000;
        for i in 0..strip.words {
            m.mem_mut().memory_mut().write(base + i, base + i * 7 + 1);
        }
        let ib = m.alloc_stream(1, strip.words);
        let ob = m.alloc_stream(1, strip.words);
        let deps: Vec<_> = if strip.serial {
            prev_tail.iter().copied().collect()
        } else {
            Vec::new()
        };
        let l = p.load(
            AddrPattern::contiguous(base, strip.words),
            ib,
            strip.cacheable,
            &deps,
        );
        let tail = if strip.kernel {
            let k = p.kernel(
                Arc::clone(&kernel),
                sched.clone(),
                vec![ib, ob],
                u64::from(strip.words / 8),
                &[l],
            );
            p.store(
                ob,
                AddrPattern::contiguous(0x10_0000 + base, strip.words),
                strip.cacheable,
                &[k],
            )
        } else {
            // Pure memory strip: store the loaded stream straight back.
            p.store(
                ib,
                AddrPattern::contiguous(0x10_0000 + base, strip.words),
                strip.cacheable,
                &[l],
            )
        };
        prev_tail = Some(tail);
    }
    let stats = m.run(&p);
    let events = m
        .take_tracer()
        .into_recorder()
        .expect("recording")
        .ring()
        .iter()
        .cloned()
        .collect();
    (stats, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast-forwarding memory-stall quiescence is invisible: identical
    /// stats, identical trace, audit-clean either way.
    #[test]
    fn quiescence_skip_is_unobservable(ss in strips()) {
        for cfg in [ConfigName::Base, ConfigName::Isrf4, ConfigName::Cache] {
            let (stats_on, events_on) = run_strips(cfg, &ss, true);
            let (stats_off, events_off) = run_strips(cfg, &ss, false);
            prop_assert_eq!(stats_on, stats_off, "stats differ on {}", cfg);
            prop_assert_eq!(&events_on, &events_off, "trace differs on {}", cfg);
            // Both runs' audits reconstruct the reported breakdown.
            let mut audit = isrf_trace::AuditAccumulator::new();
            for (_, ev) in &events_on {
                audit.observe(ev);
            }
            let mismatches = audit.verify(&stats_on.breakdown);
            prop_assert!(mismatches.is_empty(), "audit mismatch on {}: {:?}", cfg, mismatches);
        }
    }
}
