//! Snapshot/resume property test: pausing a random verifier-clean program
//! at a random cycle, serializing the machine, restoring it into a fresh
//! machine, and resuming must be indistinguishable from an uninterrupted
//! run — identical `RunStats`, identical recorded trace streams, identical
//! output memory — under both execution engines.

use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::ir::{Kernel, KernelBuilder, Opcode, Operand, StreamKind};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_mem::AddrPattern;
use isrf_sim::{ExecEngine, Machine, StreamProgram};
use isrf_trace::{TraceEvent, Tracer};
use isrf_verify::Verifier;
use proptest::prelude::*;

/// The ALU surface the generated kernel bodies draw from (a subset of the
/// engine-differential test's table is enough here: the snapshot captures
/// machine state, not ALU semantics).
const ALU_OPS: &[Opcode] = &[
    Opcode::Mov,
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::And,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Lt,
    Opcode::Min,
    Opcode::Max,
    Opcode::FAdd,
    Opcode::FMul,
    Opcode::Select,
];

/// One generated kernel-body step (see `proptest_engines.rs`).
#[derive(Debug, Clone)]
struct Step {
    kind: u8,
    op: usize,
    a: usize,
    b: usize,
    c: usize,
    carry: Option<(u32, Word)>,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0u8..10,
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            (any::<bool>(), 1u32..3, any::<Word>()),
        )
            .prop_map(|(kind, op, a, b, c, (carried, d, init))| Step {
                kind,
                op,
                a,
                b,
                c,
                carry: carried.then_some((d, init)),
            }),
        1..8,
    )
}

fn build_kernel(steps: &[Step]) -> Option<Arc<Kernel>> {
    let mut b = KernelBuilder::new("fuzz");
    let si = b.stream("in", StreamKind::SeqIn);
    let so = b.stream("out", StreamKind::SeqOut);
    let mut vals = vec![b.seq_read(si)];
    vals.push(b.constant(0x2b));
    vals.push(b.lane_id());
    vals.push(b.iter_id());
    for st in steps {
        let a = vals[st.a % vals.len()];
        let bb = vals[st.b % vals.len()];
        let c = vals[st.c % vals.len()];
        let v = match st.kind {
            0 => b.comm_rotate((st.a % 8) as i32, bb),
            1 => b.comm_xor((st.b % 8) as u32, a),
            _ => {
                let op = ALU_OPS[st.op % ALU_OPS.len()];
                let mut operands: Vec<Operand> = [a, bb, c][..op.arity()]
                    .iter()
                    .map(|&v| Operand::from(v))
                    .collect();
                if let Some((d, init)) = st.carry {
                    operands[0] = Operand::carried(a, d, init);
                }
                b.push(op, operands)
            }
        };
        vals.push(v);
    }
    let last = *vals.last().unwrap();
    b.seq_write(so, last);
    b.build().ok().map(Arc::new)
}

const IN_BASE: u32 = 0;
const OUT_BASE: u32 = 0x8000;

/// Build a fresh machine + program for the generated kernel. Returns
/// `None` when the recipe does not schedule or verify clean.
fn prepare(
    cfg: ConfigName,
    kernel: &Arc<Kernel>,
    iters: u64,
    engine: ExecEngine,
) -> Option<(Machine, StreamProgram, u32)> {
    let mcfg = MachineConfig::preset(cfg);
    let sched = schedule(kernel, &SchedParams::from_machine(&mcfg)).ok()?;
    let mut m = Machine::new(mcfg).unwrap();
    m.set_engine(engine);
    m.set_verifier(Some(Arc::new(Verifier::new())));
    let lanes = m.config().lanes as u32;
    let words = iters as u32 * lanes;
    for i in 0..words {
        m.mem_mut()
            .memory_mut()
            .write(IN_BASE + i, (i ^ 0x3f00_0000).wrapping_mul(2654435761));
    }
    let ib = m.alloc_stream(1, words);
    let ob = m.alloc_stream(1, words);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(IN_BASE, words), ib, false, &[]);
    let k = p.kernel(kernel.clone(), sched, vec![ib, ob], iters, &[l]);
    p.store(ob, AddrPattern::contiguous(OUT_BASE, words), false, &[k]);
    m.verify_program(&p).ok()?;
    Some((m, p, words))
}

type Observed = (
    isrf_core::stats::RunStats,
    Vec<(u64, TraceEvent)>,
    Vec<Word>,
);

fn drain_events(m: &mut Machine) -> Vec<(u64, TraceEvent)> {
    m.take_tracer()
        .into_recorder()
        .expect("recording")
        .ring()
        .iter()
        .cloned()
        .collect()
}

fn run_straight(
    cfg: ConfigName,
    kernel: &Arc<Kernel>,
    iters: u64,
    engine: ExecEngine,
) -> Option<Observed> {
    let (mut m, p, words) = prepare(cfg, kernel, iters, engine)?;
    m.set_tracer(Tracer::recording(1 << 16));
    let stats = m.run(&p);
    let events = drain_events(&mut m);
    let out = m.mem().memory().read_block(OUT_BASE, words as usize);
    Some((stats, events, out))
}

/// Pause after `at` cycles, snapshot, restore into a *fresh* machine, and
/// resume to completion. `at` past the end degrades to a straight run.
fn run_paused(
    cfg: ConfigName,
    kernel: &Arc<Kernel>,
    iters: u64,
    engine: ExecEngine,
    at: u64,
) -> Option<Observed> {
    let (mut m, p, words) = prepare(cfg, kernel, iters, engine)?;
    m.set_tracer(Tracer::recording(1 << 16));
    let Some(stats) = m.run_for(&p, at) else {
        let snapshot = m.save_state(&p);
        let mut events = drain_events(&mut m);
        let (mut r, p2, _) = prepare(cfg, kernel, iters, engine).expect("same recipe");
        r.restore_state(&p2, &snapshot).expect("snapshot fits");
        r.set_tracer(Tracer::recording(1 << 16));
        let stats = r.run_for(&p2, u64::MAX).expect("resumed run completes");
        events.extend(drain_events(&mut r));
        let out = r.mem().memory().read_block(OUT_BASE, words as usize);
        return Some((stats, events, out));
    };
    let events = drain_events(&mut m);
    let out = m.mem().memory().read_block(OUT_BASE, words as usize);
    Some((stats, events, out))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot(c) → restore → resume == uninterrupted run, for random
    /// programs, random pause cycles, both engines, with and without
    /// indexed-SRF support in the configuration.
    #[test]
    fn snapshot_resume_is_invisible(ss in steps(), iters in 1u64..5, at in 1u64..2000) {
        let Some(kernel) = build_kernel(&ss) else { return Ok(()) };
        for cfg in [ConfigName::Base, ConfigName::Isrf4] {
            for engine in [ExecEngine::Tape, ExecEngine::Interp] {
                let Some((stats_s, events_s, out_s)) =
                    run_straight(cfg, &kernel, iters, engine) else { return Ok(()) };
                let (stats_p, events_p, out_p) =
                    run_paused(cfg, &kernel, iters, engine, at).expect("same recipe");
                prop_assert_eq!(stats_s, stats_p, "stats differ on {} {:?} at {}", cfg, engine, at);
                prop_assert_eq!(&events_s, &events_p, "trace differs on {} {:?} at {}", cfg, engine, at);
                prop_assert_eq!(&out_s, &out_p, "output memory differs on {} {:?} at {}", cfg, engine, at);
            }
        }
    }
}
