//! Differential property test: the compiled-tape engine and the
//! graph-walking interpreter must be indistinguishable.
//!
//! Random verifier-clean kernels — arbitrary ALU opcodes (including the
//! divider and `Select`), loop-carried operands, folded constant /
//! lane-id / iteration-id producers, and cross-lane `Comm` permutations —
//! are run through the same load → kernel → store program on two fresh
//! machines, one per [`ExecEngine`]. The runs must produce identical
//! `RunStats` (cycle counts and the full Figure-12 breakdown), identical
//! recorded trace streams, and identical output memory.

use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::Word;
use isrf_kernel::ir::{Kernel, KernelBuilder, Opcode, Operand, StreamKind};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_mem::AddrPattern;
use isrf_sim::{ExecEngine, Machine, StreamProgram};
use isrf_trace::{TraceEvent, Tracer};
use isrf_verify::Verifier;
use proptest::prelude::*;

/// Every pure ALU opcode the kernel IR defines (the tape engine's
/// specialized lane loops and its `eval_alu` fallback both sit behind
/// these).
const ALU_OPS: &[Opcode] = &[
    Opcode::Mov,
    Opcode::Not,
    Opcode::Neg,
    Opcode::FNeg,
    Opcode::IToF,
    Opcode::FToI,
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sra,
    Opcode::Lt,
    Opcode::Le,
    Opcode::Eq,
    Opcode::Ne,
    Opcode::ULt,
    Opcode::Min,
    Opcode::Max,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::FLt,
    Opcode::FLe,
    Opcode::FEq,
    Opcode::FMin,
    Opcode::FMax,
    Opcode::Select,
];

/// One generated kernel-body step. `kind` picks between an ALU op and the
/// two cross-lane communication permutations; operand selectors index
/// into the values produced so far (constants, lane/iter ids, the stream
/// element, and every prior step).
#[derive(Debug, Clone)]
struct Step {
    kind: u8,
    op: usize,
    a: usize,
    b: usize,
    c: usize,
    /// Loop-carry operand `a` by this distance with this initial word.
    carry: Option<(u32, Word)>,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0u8..10,
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            (any::<bool>(), 1u32..3, any::<Word>()),
        )
            .prop_map(|(kind, op, a, b, c, (carried, d, init))| Step {
                kind,
                op,
                a,
                b,
                c,
                carry: carried.then_some((d, init)),
            }),
        1..10,
    )
}

/// Assemble a kernel from the step recipe. Returns `None` when the recipe
/// happens to violate a structural kernel rule — proptest discards those.
fn build_kernel(steps: &[Step]) -> Option<Arc<Kernel>> {
    let mut b = KernelBuilder::new("fuzz");
    let si = b.stream("in", StreamKind::SeqIn);
    let so = b.stream("out", StreamKind::SeqOut);
    let mut vals = vec![b.seq_read(si)];
    vals.push(b.constant(0x2b));
    vals.push(b.constant_f(1.5));
    vals.push(b.lane_id());
    vals.push(b.iter_id());
    for st in steps {
        let a = vals[st.a % vals.len()];
        let bb = vals[st.b % vals.len()];
        let c = vals[st.c % vals.len()];
        let v = match st.kind {
            // A sprinkling of cross-lane permutations among the ALU ops.
            0 => b.comm_rotate((st.a % 8) as i32, bb),
            1 => b.comm_xor((st.b % 8) as u32, a),
            _ => {
                let op = ALU_OPS[st.op % ALU_OPS.len()];
                let mut operands: Vec<Operand> = [a, bb, c][..op.arity()]
                    .iter()
                    .map(|&v| Operand::from(v))
                    .collect();
                if let Some((d, init)) = st.carry {
                    operands[0] = Operand::carried(a, d, init);
                }
                b.push(op, operands)
            }
        };
        vals.push(v);
    }
    let last = *vals.last().unwrap();
    b.seq_write(so, last);
    b.build().ok().map(Arc::new)
}

/// Everything one engine run exposes: stats, trace, and the stored
/// output block.
type Observed = (
    isrf_core::stats::RunStats,
    Vec<(u64, TraceEvent)>,
    Vec<Word>,
);

/// Run the kernel under one engine.
fn run_engine(
    cfg: ConfigName,
    kernel: &Arc<Kernel>,
    iters: u64,
    engine: ExecEngine,
) -> Option<Observed> {
    const IN_BASE: u32 = 0;
    const OUT_BASE: u32 = 0x8000;
    let mcfg = MachineConfig::preset(cfg);
    let sched = schedule(kernel, &SchedParams::from_machine(&mcfg)).ok()?;
    let mut m = Machine::new(mcfg).unwrap();
    m.set_engine(engine);
    m.set_verifier(Some(Arc::new(Verifier::new())));
    m.set_tracer(Tracer::recording(1 << 16));
    let lanes = m.config().lanes as u32;
    let words = iters as u32 * lanes;
    // Deterministic mixed-pattern input: small ints, negatives, and
    // word patterns that decode to interesting floats.
    for i in 0..words {
        m.mem_mut()
            .memory_mut()
            .write(IN_BASE + i, (i ^ 0x3f00_0000).wrapping_mul(2654435761));
    }
    let ib = m.alloc_stream(1, words);
    let ob = m.alloc_stream(1, words);
    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(IN_BASE, words), ib, false, &[]);
    let k = p.kernel(kernel.clone(), sched, vec![ib, ob], iters, &[l]);
    p.store(ob, AddrPattern::contiguous(OUT_BASE, words), false, &[k]);
    // Only verifier-clean programs count for the property.
    m.verify_program(&p).ok()?;
    let stats = m.run(&p);
    let events = m
        .take_tracer()
        .into_recorder()
        .expect("recording")
        .ring()
        .iter()
        .cloned()
        .collect();
    let out = m.mem().memory().read_block(OUT_BASE, words as usize);
    Some((stats, events, out))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tape engine is unobservable next to the interpreter: identical
    /// stats, trace, and memory for random kernels on every configuration.
    #[test]
    fn tape_matches_interpreter(ss in steps(), iters in 1u64..5) {
        let Some(kernel) = build_kernel(&ss) else { return Ok(()) };
        for cfg in [ConfigName::Base, ConfigName::Isrf4] {
            let Some((stats_t, events_t, out_t)) =
                run_engine(cfg, &kernel, iters, ExecEngine::Tape) else { return Ok(()) };
            let (stats_i, events_i, out_i) =
                run_engine(cfg, &kernel, iters, ExecEngine::Interp).expect("same program");
            prop_assert_eq!(stats_t, stats_i, "stats differ on {}", cfg);
            prop_assert_eq!(&events_t, &events_i, "trace differs on {}", cfg);
            prop_assert_eq!(&out_t, &out_i, "output memory differs on {}", cfg);
        }
    }
}
